//! Node allocation over the free pool.
//!
//! The paper's scheduler is explicitly agnostic to resource mapping
//! (Section IV-B: "It is agnostic towards resource mappings and network
//! topology"), so we provide a small pluggable allocator: the default
//! lowest-id-first policy (which yields contiguous, locality-friendly
//! allocations like Flux's default) and a random policy for contrast
//! experiments.
//!
//! The pool also carries the fault-injection quarantine list: a node marked
//! down ([`NodePool::mark_down`]) is excluded from every allocation until
//! [`NodePool::mark_up`] readmits it, whether it was free or mid-job when
//! it failed.

use crate::topology::NodeId;
use rand::seq::SliceRandom;
use rand::RngCore;
use rush_simkit::snapshot::{SnapshotError, Val};
use serde::{Deserialize, Serialize};

/// How free nodes are chosen for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Lowest node ids first — contiguous, keeps jobs within few switches.
    #[default]
    LowestId,
    /// Uniformly random free nodes — maximal fragmentation, worst-case
    /// fabric crossing.
    Random,
    /// Topology-aware: fill whole edge switches first, preferring the
    /// emptiest switches, so the allocation spans as few switches as
    /// possible — the locality goal of Flux's graph-based matching. Falls
    /// back to [`PlacementPolicy::LowestId`] when the pool has no topology
    /// information.
    Compact,
}

/// Allocation state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Available for allocation.
    Free,
    /// Held by a job (or permanently reserved).
    Busy,
    /// Quarantined after a failure. `held` is true while a killed job's
    /// allocation still covers the node (its release is pending).
    Down { held: bool },
}

/// Tracks which nodes are free and hands out allocations.
#[derive(Debug, Clone)]
pub struct NodePool {
    slots: Vec<Slot>,
    free_count: usize,
    policy: PlacementPolicy,
    /// Edge-switch width for [`PlacementPolicy::Compact`]; `None` means
    /// topology-blind.
    nodes_per_edge: Option<u32>,
}

impl NodePool {
    /// A pool of `node_count` free nodes with no topology information.
    pub fn new(node_count: u32, policy: PlacementPolicy) -> Self {
        NodePool {
            slots: vec![Slot::Free; node_count as usize],
            free_count: node_count as usize,
            policy,
            nodes_per_edge: None,
        }
    }

    /// A pool aware of the edge-switch width (node ids are laid out
    /// switch-contiguously, as in [`crate::topology::FatTree`]).
    pub fn with_topology(node_count: u32, nodes_per_edge: u32, policy: PlacementPolicy) -> Self {
        assert!(nodes_per_edge > 0, "edge switch needs nodes");
        NodePool {
            nodes_per_edge: Some(nodes_per_edge),
            ..Self::new(node_count, policy)
        }
    }

    /// Total nodes managed.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nodes currently free.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Nodes currently allocated (quarantined nodes are not "busy").
    pub fn busy_count(&self) -> usize {
        self.slots.iter().filter(|s| **s == Slot::Busy).count()
    }

    /// Nodes currently quarantined.
    pub fn down_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Down { .. }))
            .count()
    }

    /// Whether `node` is quarantined.
    pub fn is_down(&self, node: NodeId) -> bool {
        matches!(self.slots[node.0 as usize], Slot::Down { .. })
    }

    /// The quarantine list, ascending.
    pub fn quarantined(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Down { .. }))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// True if an allocation of `n` nodes could be satisfied right now.
    pub fn can_allocate(&self, n: usize) -> bool {
        n <= self.free_count
    }

    fn is_free(&self, idx: usize) -> bool {
        self.slots[idx] == Slot::Free
    }

    /// Takes a known-free slot.
    fn take(&mut self, idx: usize, chosen: &mut Vec<NodeId>) {
        debug_assert_eq!(self.slots[idx], Slot::Free);
        self.slots[idx] = Slot::Busy;
        chosen.push(NodeId(idx as u32));
    }

    /// Permanently removes `nodes` from the pool (e.g. the noise job's
    /// 1/16th of the reservation, which the scheduler must never use).
    pub fn reserve_permanently(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            let idx = n.0 as usize;
            assert!(idx < self.slots.len(), "node {n:?} outside pool");
            if self.is_free(idx) {
                self.slots[idx] = Slot::Busy;
                self.free_count -= 1;
            }
        }
    }

    /// Quarantines a node after a failure. A free node leaves the free
    /// pool; a busy node is flagged so its eventual release does not re-free
    /// it. Idempotent.
    pub fn mark_down(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        assert!(idx < self.slots.len(), "node {node:?} outside pool");
        match self.slots[idx] {
            Slot::Free => {
                self.slots[idx] = Slot::Down { held: false };
                self.free_count -= 1;
            }
            Slot::Busy => self.slots[idx] = Slot::Down { held: true },
            Slot::Down { .. } => {}
        }
    }

    /// Readmits a quarantined node. If a (killed) job's allocation still
    /// holds it, the node returns to busy and its pending release will free
    /// it; otherwise it is free immediately. No-op for non-quarantined
    /// nodes.
    pub fn mark_up(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        assert!(idx < self.slots.len(), "node {node:?} outside pool");
        match self.slots[idx] {
            Slot::Down { held: false } => {
                self.slots[idx] = Slot::Free;
                self.free_count += 1;
            }
            Slot::Down { held: true } => self.slots[idx] = Slot::Busy,
            Slot::Free | Slot::Busy => {}
        }
    }

    /// Allocates `n` nodes according to the policy; `None` if not enough
    /// are free. `rng` is only consulted by [`PlacementPolicy::Random`].
    /// Quarantined nodes are never chosen.
    pub fn allocate<R: RngCore>(&mut self, n: usize, rng: &mut R) -> Option<Vec<NodeId>> {
        if !self.can_allocate(n) {
            return None;
        }
        let mut chosen = Vec::with_capacity(n);
        match self.policy {
            PlacementPolicy::Compact => match self.nodes_per_edge {
                Some(width) => {
                    chosen = self.allocate_compact(n, width);
                }
                None => self.allocate_lowest(n, &mut chosen),
            },
            PlacementPolicy::LowestId => self.allocate_lowest(n, &mut chosen),
            PlacementPolicy::Random => {
                let mut candidates: Vec<usize> =
                    (0..self.slots.len()).filter(|&i| self.is_free(i)).collect();
                candidates.shuffle(rng);
                candidates.truncate(n);
                for i in candidates {
                    self.take(i, &mut chosen);
                }
                chosen.sort_unstable();
            }
        }
        self.free_count -= n;
        Some(chosen)
    }

    fn allocate_lowest(&mut self, n: usize, chosen: &mut Vec<NodeId>) {
        for i in 0..self.slots.len() {
            if chosen.len() == n {
                break;
            }
            if self.is_free(i) {
                self.take(i, chosen);
            }
        }
    }

    /// Greedy fewest-switches allocation: take the fullest-free switches
    /// whole, then the tightest-fitting switch for the remainder.
    fn allocate_compact(&mut self, n: usize, width: u32) -> Vec<NodeId> {
        let width = width as usize;
        let switch_count = self.slots.len().div_ceil(width);
        // Free nodes per switch.
        let mut switches: Vec<(usize, usize)> = (0..switch_count)
            .map(|s| {
                let lo = s * width;
                let hi = ((s + 1) * width).min(self.slots.len());
                (s, (lo..hi).filter(|&i| self.is_free(i)).count())
            })
            .filter(|&(_, free)| free > 0)
            .collect();
        // Most-free switches first; ties to lower index for determinism.
        switches.sort_by_key(|&(s, free)| (std::cmp::Reverse(free), s));

        let mut chosen = Vec::with_capacity(n);
        let mut remaining = n;
        for &(s, free) in &switches {
            if remaining == 0 {
                break;
            }
            if free <= remaining {
                // Take the whole switch's free nodes.
                remaining -= self.take_from_switch(s, width, free, &mut chosen);
            }
        }
        if remaining > 0 {
            // The tightest switch that can host the remainder alone.
            let best = switches
                .iter()
                .filter(|&&(s, free)| {
                    free >= remaining
                        && !chosen
                            .iter()
                            .any(|nid: &NodeId| nid.0 as usize / width == s)
                })
                .min_by_key(|&&(_, free)| free);
            if let Some(&(s, _)) = best {
                remaining -= self.take_from_switch(s, width, remaining, &mut chosen);
            } else {
                // Scattered fallback: lowest free ids.
                for i in 0..self.slots.len() {
                    if remaining == 0 {
                        break;
                    }
                    if self.is_free(i) {
                        self.take(i, &mut chosen);
                        remaining -= 1;
                    }
                }
            }
        }
        debug_assert_eq!(remaining, 0, "caller checked capacity");
        chosen.sort_unstable();
        chosen
    }

    fn take_from_switch(
        &mut self,
        switch: usize,
        width: usize,
        count: usize,
        chosen: &mut Vec<NodeId>,
    ) -> usize {
        let lo = switch * width;
        let hi = ((switch + 1) * width).min(self.slots.len());
        let mut taken = 0;
        for i in lo..hi {
            if taken == count {
                break;
            }
            if self.is_free(i) {
                self.take(i, chosen);
                taken += 1;
            }
        }
        taken
    }

    /// Returns `nodes` to the pool. A quarantined node stays quarantined —
    /// its pending-release flag is cleared so [`NodePool::mark_up`] can
    /// free it later.
    ///
    /// # Panics
    /// Panics if a node is already free (double release) or out of range.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            let idx = n.0 as usize;
            assert!(idx < self.slots.len(), "node {n:?} outside pool");
            match self.slots[idx] {
                Slot::Busy => {
                    self.slots[idx] = Slot::Free;
                    self.free_count += 1;
                }
                Slot::Down { held: true } => self.slots[idx] = Slot::Down { held: false },
                Slot::Free | Slot::Down { held: false } => {
                    panic!("double release of node {n:?}")
                }
            }
        }
    }

    /// Captures per-slot allocation state for snapshots. Policy and
    /// topology are configuration; only the slot states are dynamic.
    pub fn snapshot_state(&self) -> Val {
        let codes: Vec<Val> = self
            .slots
            .iter()
            .map(|s| {
                Val::U64(match s {
                    Slot::Free => 0,
                    Slot::Busy => 1,
                    Slot::Down { held: false } => 2,
                    Slot::Down { held: true } => 3,
                })
            })
            .collect();
        Val::map().with("slots", Val::List(codes))
    }

    /// Restores the slot states captured by
    /// [`snapshot_state`](Self::snapshot_state); `free_count` is recomputed.
    pub fn restore_state(&mut self, v: &Val) -> Result<(), SnapshotError> {
        let codes = v.l("slots")?;
        if codes.len() != self.slots.len() {
            return Err(SnapshotError::ConfigMismatch);
        }
        for (slot, code) in self.slots.iter_mut().zip(codes) {
            *slot = match code.as_u64()? {
                0 => Slot::Free,
                1 => Slot::Busy,
                2 => Slot::Down { held: false },
                3 => Slot::Down { held: true },
                other => {
                    return Err(SnapshotError::Schema(format!("bad slot code {other}")));
                }
            };
        }
        self.free_count = self.slots.iter().filter(|s| **s == Slot::Free).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn lowest_id_is_contiguous() {
        let mut pool = NodePool::new(16, PlacementPolicy::LowestId);
        let a = pool.allocate(4, &mut rng()).unwrap();
        assert_eq!(a, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let b = pool.allocate(4, &mut rng()).unwrap();
        assert_eq!(b, vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(pool.free_count(), 8);
        assert_eq!(pool.busy_count(), 8);
    }

    #[test]
    fn release_reopens_lowest_slots() {
        let mut pool = NodePool::new(8, PlacementPolicy::LowestId);
        let a = pool.allocate(4, &mut rng()).unwrap();
        pool.release(&a);
        let b = pool.allocate(2, &mut rng()).unwrap();
        assert_eq!(b, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn refuses_oversized_allocations() {
        let mut pool = NodePool::new(4, PlacementPolicy::LowestId);
        assert!(pool.allocate(5, &mut rng()).is_none());
        let _ = pool.allocate(3, &mut rng()).unwrap();
        assert!(pool.allocate(2, &mut rng()).is_none());
        assert!(pool.can_allocate(1));
    }

    #[test]
    fn random_policy_allocates_valid_free_nodes() {
        let mut pool = NodePool::new(32, PlacementPolicy::Random);
        let mut r = rng();
        let a = pool.allocate(8, &mut r).unwrap();
        assert_eq!(a.len(), 8);
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 8, "no duplicates");
        // sorted output
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted);
        // allocating the rest works and never overlaps
        let b = pool.allocate(24, &mut r).unwrap();
        assert!(a.iter().all(|n| !b.contains(n)));
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = NodePool::new(4, PlacementPolicy::LowestId);
        let a = pool.allocate(2, &mut rng()).unwrap();
        pool.release(&a);
        pool.release(&a);
    }

    #[test]
    fn compact_fills_fewest_switches() {
        // 4 switches x 4 nodes; switch 0 half-busy.
        let mut pool = NodePool::with_topology(16, 4, PlacementPolicy::Compact);
        pool.reserve_permanently(&[NodeId(0), NodeId(1)]);
        // 6 nodes: one whole switch (4) + tightest remainder host (2 from
        // the half-free switch 0).
        let a = pool.allocate(6, &mut rng()).unwrap();
        let switches: std::collections::HashSet<u32> = a.iter().map(|n| n.0 / 4).collect();
        assert_eq!(switches.len(), 2, "6 nodes should span 2 switches: {a:?}");
        assert!(
            a.contains(&NodeId(2)) && a.contains(&NodeId(3)),
            "remainder should use the tight half-free switch: {a:?}"
        );
    }

    #[test]
    fn compact_prefers_whole_empty_switches() {
        let mut pool = NodePool::with_topology(16, 4, PlacementPolicy::Compact);
        let a = pool.allocate(8, &mut rng()).unwrap();
        let switches: std::collections::HashSet<u32> = a.iter().map(|n| n.0 / 4).collect();
        assert_eq!(switches.len(), 2, "8 nodes = exactly 2 switches");
        // Allocation is sorted and exact.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted);
        assert_eq!(pool.free_count(), 8);
    }

    #[test]
    fn compact_scattered_fallback_still_allocates() {
        // Free nodes: one per switch -> no switch can host the remainder.
        let mut pool = NodePool::with_topology(16, 4, PlacementPolicy::Compact);
        pool.reserve_permanently(&[
            NodeId(1),
            NodeId(2),
            NodeId(3),
            NodeId(5),
            NodeId(6),
            NodeId(7),
            NodeId(9),
            NodeId(10),
            NodeId(11),
            NodeId(13),
            NodeId(14),
            NodeId(15),
        ]);
        let a = pool.allocate(3, &mut rng()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn compact_without_topology_is_lowest_id() {
        let mut pool = NodePool::new(8, PlacementPolicy::Compact);
        let a = pool.allocate(3, &mut rng()).unwrap();
        assert_eq!(a, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn permanent_reservation_shrinks_pool() {
        let mut pool = NodePool::new(16, PlacementPolicy::LowestId);
        pool.reserve_permanently(&[NodeId(0), NodeId(1)]);
        assert_eq!(pool.free_count(), 14);
        let a = pool.allocate(2, &mut rng()).unwrap();
        assert_eq!(a, vec![NodeId(2), NodeId(3)]);
        // reserving twice is idempotent
        pool.reserve_permanently(&[NodeId(0)]);
        assert_eq!(pool.free_count(), 12);
    }

    #[test]
    fn down_free_node_leaves_pool_until_marked_up() {
        let mut pool = NodePool::new(8, PlacementPolicy::LowestId);
        pool.mark_down(NodeId(0));
        assert_eq!(pool.free_count(), 7);
        assert_eq!(pool.down_count(), 1);
        assert!(pool.is_down(NodeId(0)));
        assert_eq!(pool.quarantined(), vec![NodeId(0)]);
        // Allocation skips the quarantined node.
        let a = pool.allocate(3, &mut rng()).unwrap();
        assert_eq!(a, vec![NodeId(1), NodeId(2), NodeId(3)]);
        pool.mark_up(NodeId(0));
        assert_eq!(pool.free_count(), 5);
        let b = pool.allocate(1, &mut rng()).unwrap();
        assert_eq!(b, vec![NodeId(0)]);
    }

    #[test]
    fn down_busy_node_survives_release_in_quarantine() {
        let mut pool = NodePool::new(4, PlacementPolicy::LowestId);
        let a = pool.allocate(2, &mut rng()).unwrap();
        pool.mark_down(NodeId(0));
        assert_eq!(pool.down_count(), 1);
        // Releasing the killed job's allocation frees node 1 but keeps
        // node 0 quarantined.
        pool.release(&a);
        assert_eq!(pool.free_count(), 3);
        assert!(pool.is_down(NodeId(0)));
        let b = pool.allocate(3, &mut rng()).unwrap();
        assert_eq!(b, vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Recovery frees it.
        pool.mark_up(NodeId(0));
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.down_count(), 0);
    }

    #[test]
    fn mark_up_before_release_restores_busy() {
        let mut pool = NodePool::new(4, PlacementPolicy::LowestId);
        let a = pool.allocate(2, &mut rng()).unwrap();
        pool.mark_down(NodeId(1));
        pool.mark_up(NodeId(1));
        // The allocation still holds both nodes; releasing frees both.
        pool.release(&a);
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn mark_down_is_idempotent() {
        let mut pool = NodePool::new(4, PlacementPolicy::LowestId);
        pool.mark_down(NodeId(2));
        pool.mark_down(NodeId(2));
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.down_count(), 1);
        pool.mark_up(NodeId(2));
        pool.mark_up(NodeId(2));
        assert_eq!(pool.free_count(), 4);
    }
}
