//! Synthesis of LDMS-style monitoring counters from machine state.
//!
//! The paper's dataset (Table I) draws on three counter tables sampled on
//! every node: `sysclassib` (22 InfiniBand endpoint counters), `opa_info`
//! (34 Omni-Path switch counters) and `lustre_client` (34 Lustre client
//! metrics). We reproduce the same tables — same names-per-table counts —
//! and synthesize their values from the *hidden* simulator state plus
//! measurement noise.
//!
//! The synthesis is deliberately indirect: the ML models never see the
//! simulator's true congestion variable, only counters that correlate with
//! it (transmit rates, `xmit_wait`-style congestion signals, error counts,
//! I/O call volumes), each corrupted by multiplicative lognormal noise. This
//! keeps the learning problem honest.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// What one node can observe about the machine at a sampling instant.
///
/// Produced by [`crate::machine::Machine::observe`]; consumed by
/// [`synthesize_table`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// Traffic injected by this node onto its access link, GB/s.
    pub xmit_gbps: f64,
    /// Traffic received by this node, GB/s.
    pub recv_gbps: f64,
    /// Utilization of the edge-switch uplink above this node (0..).
    pub edge_uplink_util: f64,
    /// Utilization of this pod's core uplink (0..).
    pub pod_uplink_util: f64,
    /// Read bandwidth this node's workload is pulling from Lustre, GB/s.
    pub read_gbps: f64,
    /// Write bandwidth this node's workload is pushing to Lustre, GB/s.
    pub write_gbps: f64,
    /// Metadata operation rate from this node, kOps/s.
    pub meta_kops: f64,
    /// Global filesystem saturation (demand / capacity).
    pub fs_saturation: f64,
}

/// The three counter tables of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterTable {
    /// InfiniBand endpoint counters (22).
    SysClassIb,
    /// Omni-Path switch counters (34).
    OpaInfo,
    /// Lustre client metrics (34).
    LustreClient,
}

impl CounterTable {
    /// All tables, in Table-I order.
    pub const ALL: [CounterTable; 3] = [
        CounterTable::SysClassIb,
        CounterTable::OpaInfo,
        CounterTable::LustreClient,
    ];

    /// The table's name as it appears in LDMS.
    pub fn name(self) -> &'static str {
        match self {
            CounterTable::SysClassIb => "sysclassib",
            CounterTable::OpaInfo => "opa_info",
            CounterTable::LustreClient => "lustre_client",
        }
    }

    /// Counter names in this table.
    pub fn counters(self) -> &'static [CounterSpec] {
        match self {
            CounterTable::SysClassIb => &SYSCLASSIB,
            CounterTable::OpaInfo => &OPA_INFO,
            CounterTable::LustreClient => &LUSTRE_CLIENT,
        }
    }

    /// Number of counters in this table (22 / 34 / 34, per Table I).
    pub fn counter_count(self) -> usize {
        self.counters().len()
    }
}

/// The physical quantity a counter tracks, i.e. its synthesis rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Basis {
    /// Proportional to node transmit bandwidth.
    XmitBytes,
    /// Proportional to node receive bandwidth.
    RcvBytes,
    /// Packet counts: bandwidth / mean packet size.
    XmitPkts,
    /// Receive-side packet counts.
    RcvPkts,
    /// Congestion wait: grows quadratically once the uplink passes ~50%
    /// utilization — the `port_xmit_wait` signature that makes switch
    /// counters predictive.
    CongestionWait,
    /// Explicit congestion notifications: proportional to uplink overload.
    CongestionNotif,
    /// Rare error events; rate rises only under severe congestion.
    ErrorEvents,
    /// Read bytes from the filesystem.
    ReadBytes,
    /// Write bytes to the filesystem.
    WriteBytes,
    /// Metadata operations.
    MetaOps,
    /// Global filesystem pressure (saturation-driven latency proxies).
    FsPressure,
    /// A static configuration value (link rate etc.).
    Constant,
}

/// A named counter with its synthesis rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSpec {
    /// Counter name within its table.
    pub name: &'static str,
    /// What it measures.
    pub basis: Basis,
    /// Scale factor applied to the basis value.
    pub scale: f64,
    /// Log-std of the multiplicative measurement noise.
    pub noise: f64,
}

const fn c(name: &'static str, basis: Basis, scale: f64, noise: f64) -> CounterSpec {
    CounterSpec {
        name,
        basis,
        scale,
        noise,
    }
}

/// `sysclassib`: 22 InfiniBand endpoint counters.
pub static SYSCLASSIB: [CounterSpec; 22] = [
    c("port_xmit_data", Basis::XmitBytes, 1.0e9, 0.05),
    c("port_rcv_data", Basis::RcvBytes, 1.0e9, 0.05),
    c("port_xmit_pkts", Basis::XmitPkts, 1.0, 0.05),
    c("port_rcv_pkts", Basis::RcvPkts, 1.0, 0.05),
    c("unicast_xmit_pkts", Basis::XmitPkts, 0.9, 0.06),
    c("unicast_rcv_pkts", Basis::RcvPkts, 0.9, 0.06),
    c("multicast_xmit_pkts", Basis::XmitPkts, 0.02, 0.25),
    c("multicast_rcv_pkts", Basis::RcvPkts, 0.02, 0.25),
    c("port_xmit_wait", Basis::CongestionWait, 5.0e5, 0.15),
    c("port_xmit_discards", Basis::ErrorEvents, 4.0, 0.4),
    c("port_rcv_errors", Basis::ErrorEvents, 2.0, 0.4),
    c("symbol_error", Basis::ErrorEvents, 0.5, 0.5),
    c("link_error_recovery", Basis::ErrorEvents, 0.1, 0.5),
    c("link_downed", Basis::ErrorEvents, 0.01, 0.5),
    c(
        "port_rcv_remote_physical_errors",
        Basis::ErrorEvents,
        0.2,
        0.5,
    ),
    c("port_rcv_switch_relay_errors", Basis::ErrorEvents, 0.3, 0.5),
    c("port_rcv_constraint_errors", Basis::ErrorEvents, 0.05, 0.5),
    c("port_xmit_constraint_errors", Basis::ErrorEvents, 0.05, 0.5),
    c("local_link_integrity_errors", Basis::ErrorEvents, 0.02, 0.5),
    c(
        "excessive_buffer_overrun_errors",
        Basis::ErrorEvents,
        0.8,
        0.45,
    ),
    c("vl15_dropped", Basis::ErrorEvents, 0.3, 0.5),
    c("link_rate", Basis::Constant, 100.0, 0.0),
];

/// `opa_info`: 34 Omni-Path switch counters.
pub static OPA_INFO: [CounterSpec; 34] = [
    c("opa_xmit_data", Basis::XmitBytes, 1.1e9, 0.06),
    c("opa_rcv_data", Basis::RcvBytes, 1.1e9, 0.06),
    c("opa_xmit_pkts", Basis::XmitPkts, 1.05, 0.06),
    c("opa_rcv_pkts", Basis::RcvPkts, 1.05, 0.06),
    c("opa_mcast_xmit_pkts", Basis::XmitPkts, 0.015, 0.3),
    c("opa_mcast_rcv_pkts", Basis::RcvPkts, 0.015, 0.3),
    c("opa_xmit_wait", Basis::CongestionWait, 8.0e5, 0.12),
    c(
        "opa_congestion_discards",
        Basis::CongestionNotif,
        2.0e3,
        0.2,
    ),
    c("opa_rcv_fecn", Basis::CongestionNotif, 5.0e3, 0.2),
    c("opa_rcv_becn", Basis::CongestionNotif, 3.0e3, 0.2),
    c("opa_mark_fecn", Basis::CongestionNotif, 2.5e3, 0.2),
    c("opa_xmit_time_cong", Basis::CongestionWait, 6.0e5, 0.15),
    c("opa_xmit_wasted_bw", Basis::CongestionWait, 2.0e5, 0.2),
    c("opa_xmit_wait_data", Basis::CongestionWait, 4.0e5, 0.15),
    c("opa_rcv_bubble", Basis::CongestionWait, 1.5e5, 0.25),
    c("opa_link_qual_indicator", Basis::Constant, 5.0, 0.0),
    c("opa_link_width_downgrade", Basis::ErrorEvents, 0.01, 0.5),
    c("opa_link_error_recovery", Basis::ErrorEvents, 0.1, 0.5),
    c("opa_link_downed", Basis::ErrorEvents, 0.01, 0.5),
    c("opa_rcv_errors", Basis::ErrorEvents, 1.5, 0.4),
    c("opa_rcv_constraint_errors", Basis::ErrorEvents, 0.05, 0.5),
    c("opa_rcv_switch_relay_errors", Basis::ErrorEvents, 0.2, 0.5),
    c("opa_xmit_discards", Basis::ErrorEvents, 3.0, 0.4),
    c("opa_xmit_constraint_errors", Basis::ErrorEvents, 0.05, 0.5),
    c("opa_local_link_integrity", Basis::ErrorEvents, 0.02, 0.5),
    c(
        "opa_excessive_buffer_overrun",
        Basis::ErrorEvents,
        0.6,
        0.45,
    ),
    c("opa_fm_config_errors", Basis::ErrorEvents, 0.01, 0.5),
    c("opa_uncorrectable_errors", Basis::ErrorEvents, 0.005, 0.5),
    c("opa_sw_portion_bw", Basis::XmitBytes, 0.5e9, 0.1),
    c("opa_buffer_occupancy", Basis::CongestionWait, 3.0e4, 0.2),
    c("opa_vl_xmit_wait", Basis::CongestionWait, 2.0e5, 0.18),
    c("opa_vl_congestion", Basis::CongestionNotif, 1.0e3, 0.25),
    c("opa_pkey_violations", Basis::ErrorEvents, 0.01, 0.5),
    c("opa_sma_pkts", Basis::Constant, 12.0, 0.1),
];

/// `lustre_client`: 34 Lustre client metrics.
pub static LUSTRE_CLIENT: [CounterSpec; 34] = [
    c("read_bytes", Basis::ReadBytes, 1.0e9, 0.06),
    c("write_bytes", Basis::WriteBytes, 1.0e9, 0.06),
    c("read_calls", Basis::ReadBytes, 2.5e5, 0.08),
    c("write_calls", Basis::WriteBytes, 2.5e5, 0.08),
    c("brw_read", Basis::ReadBytes, 1.0e6, 0.1),
    c("brw_write", Basis::WriteBytes, 1.0e6, 0.1),
    c("open", Basis::MetaOps, 300.0, 0.15),
    c("close", Basis::MetaOps, 300.0, 0.15),
    c("seek", Basis::MetaOps, 150.0, 0.2),
    c("fsync", Basis::WriteBytes, 5.0e3, 0.25),
    c("getattr", Basis::MetaOps, 500.0, 0.15),
    c("setattr", Basis::MetaOps, 80.0, 0.2),
    c("create", Basis::MetaOps, 40.0, 0.25),
    c("link", Basis::MetaOps, 2.0, 0.4),
    c("unlink", Basis::MetaOps, 30.0, 0.3),
    c("symlink", Basis::MetaOps, 1.0, 0.4),
    c("mkdir", Basis::MetaOps, 10.0, 0.3),
    c("rmdir", Basis::MetaOps, 8.0, 0.3),
    c("mknod", Basis::MetaOps, 0.5, 0.5),
    c("rename", Basis::MetaOps, 12.0, 0.3),
    c("statfs", Basis::MetaOps, 20.0, 0.25),
    c("alloc_inode", Basis::MetaOps, 35.0, 0.25),
    c("getxattr", Basis::MetaOps, 90.0, 0.2),
    c("setxattr", Basis::MetaOps, 5.0, 0.4),
    c("listxattr", Basis::MetaOps, 15.0, 0.3),
    c("removexattr", Basis::MetaOps, 1.0, 0.5),
    c("inode_permission", Basis::MetaOps, 900.0, 0.12),
    c("readdir", Basis::MetaOps, 60.0, 0.25),
    c("truncate", Basis::WriteBytes, 2.0e3, 0.3),
    c("flock", Basis::MetaOps, 4.0, 0.4),
    c("dirty_pages_hits", Basis::WriteBytes, 8.0e5, 0.12),
    c("dirty_pages_misses", Basis::FsPressure, 3.0e5, 0.15),
    c("osc_read_latency", Basis::FsPressure, 2.0e4, 0.12),
    c("osc_write_latency", Basis::FsPressure, 2.5e4, 0.12),
];

/// Mean packet size used to turn bandwidth into packet counts (bytes).
const MEAN_PACKET_BYTES: f64 = 4096.0;

/// Evaluates a counter's noiseless basis value for one node observation.
pub fn basis_value(basis: Basis, obs: &NodeObservation) -> f64 {
    match basis {
        Basis::XmitBytes => obs.xmit_gbps,
        Basis::RcvBytes => obs.recv_gbps,
        Basis::XmitPkts => obs.xmit_gbps * 1.0e9 / MEAN_PACKET_BYTES,
        Basis::RcvPkts => obs.recv_gbps * 1.0e9 / MEAN_PACKET_BYTES,
        Basis::CongestionWait => {
            // Queueing wait builds well before saturation; the quadratic
            // knee starts at 30% utilization so the counters carry signal
            // across the whole congestion range, not just at saturation.
            let u = obs.edge_uplink_util.max(obs.pod_uplink_util);
            let excess = (u - 0.3).max(0.0);
            excess * excess
        }
        Basis::CongestionNotif => {
            let u = obs.edge_uplink_util.max(obs.pod_uplink_util);
            (u - 0.55).max(0.0)
        }
        Basis::ErrorEvents => {
            let u = obs.edge_uplink_util.max(obs.pod_uplink_util);
            0.01 + (u - 0.75).max(0.0) * 2.0
        }
        Basis::ReadBytes => obs.read_gbps,
        Basis::WriteBytes => obs.write_gbps,
        Basis::MetaOps => obs.meta_kops,
        Basis::FsPressure => {
            let s = obs.fs_saturation;
            s * s
        }
        Basis::Constant => 1.0,
    }
}

/// Synthesizes one counter value: `scale * basis * lognormal_noise`.
pub fn synthesize_counter<R: RngCore>(
    spec: &CounterSpec,
    obs: &NodeObservation,
    rng: &mut R,
) -> f64 {
    let base = basis_value(spec.basis, obs) * spec.scale;
    if spec.noise == 0.0 {
        return base;
    }
    // Box–Muller-free lognormal: exp(sigma * approx-normal) via sum of
    // uniforms (Irwin–Hall with n=12 has unit variance).
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += rng.gen::<f64>();
    }
    let z = acc - 6.0;
    base * (spec.noise * z).exp()
}

/// Synthesizes all counters of `table` for one node observation, in schema
/// order.
pub fn synthesize_table<R: RngCore>(
    table: CounterTable,
    obs: &NodeObservation,
    rng: &mut R,
) -> Vec<f64> {
    table
        .counters()
        .iter()
        .map(|spec| synthesize_counter(spec, obs, rng))
        .collect()
}

/// Appends all counters of `table` to `out` instead of allocating a fresh
/// vector — same schema order, same RNG draw sequence as
/// [`synthesize_table`], for callers that reuse one buffer across a whole
/// sampling sweep.
pub fn synthesize_table_into<R: RngCore>(
    table: CounterTable,
    obs: &NodeObservation,
    rng: &mut R,
    out: &mut Vec<f64>,
) {
    for spec in table.counters() {
        out.push(synthesize_counter(spec, obs, rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn table_sizes_match_table_one() {
        assert_eq!(CounterTable::SysClassIb.counter_count(), 22);
        assert_eq!(CounterTable::OpaInfo.counter_count(), 34);
        assert_eq!(CounterTable::LustreClient.counter_count(), 34);
    }

    #[test]
    fn counter_names_are_unique_within_tables() {
        for table in CounterTable::ALL {
            let mut names: Vec<_> = table.counters().iter().map(|c| c.name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate counter in {table:?}");
        }
    }

    #[test]
    fn idle_node_produces_near_zero_traffic_counters() {
        let obs = NodeObservation::default();
        let mut r = rng();
        let vals = synthesize_table(CounterTable::SysClassIb, &obs, &mut r);
        // port_xmit_data is index 0
        assert_eq!(vals[0], 0.0);
        // link_rate constant is last
        assert_eq!(vals[21], 100.0);
    }

    #[test]
    fn traffic_moves_traffic_counters() {
        let obs = NodeObservation {
            xmit_gbps: 5.0,
            recv_gbps: 4.0,
            ..Default::default()
        };
        let mut r = rng();
        let vals = synthesize_table(CounterTable::SysClassIb, &obs, &mut r);
        assert!(vals[0] > 1.0e9, "xmit_data should scale with bandwidth");
        assert!(vals[1] > 1.0e9);
        assert!(vals[2] > 1.0e5, "packet counters scale too");
    }

    #[test]
    fn congestion_wait_kicks_in_past_half_utilization() {
        let calm = NodeObservation {
            edge_uplink_util: 0.3,
            ..Default::default()
        };
        let hot = NodeObservation {
            edge_uplink_util: 0.95,
            ..Default::default()
        };
        assert_eq!(basis_value(Basis::CongestionWait, &calm), 0.0);
        assert!(basis_value(Basis::CongestionWait, &hot) > 0.1);
        // monotone in utilization
        let mid = NodeObservation {
            edge_uplink_util: 0.7,
            ..Default::default()
        };
        assert!(
            basis_value(Basis::CongestionWait, &mid) < basis_value(Basis::CongestionWait, &hot)
        );
    }

    #[test]
    fn pod_uplink_also_drives_congestion_signals() {
        let obs = NodeObservation {
            pod_uplink_util: 0.9,
            ..Default::default()
        };
        assert!(basis_value(Basis::CongestionWait, &obs) > 0.0);
        assert!(basis_value(Basis::CongestionNotif, &obs) > 0.0);
    }

    #[test]
    fn io_counters_track_io_demand() {
        let obs = NodeObservation {
            read_gbps: 2.0,
            write_gbps: 1.0,
            meta_kops: 3.0,
            fs_saturation: 1.5,
            ..Default::default()
        };
        assert_eq!(basis_value(Basis::ReadBytes, &obs), 2.0);
        assert_eq!(basis_value(Basis::WriteBytes, &obs), 1.0);
        assert_eq!(basis_value(Basis::MetaOps, &obs), 3.0);
        assert!(basis_value(Basis::FsPressure, &obs) > 2.0);
    }

    #[test]
    fn noise_is_multiplicative_and_centered() {
        let spec = c("test", Basis::XmitBytes, 1.0, 0.1);
        let obs = NodeObservation {
            xmit_gbps: 10.0,
            ..Default::default()
        };
        let mut r = rng();
        let vals: Vec<f64> = (0..2000)
            .map(|_| synthesize_counter(&spec, &obs, &mut r))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "noisy mean {mean} should be ~10");
        assert!(
            vals.iter().any(|&v| (v - 10.0).abs() > 0.1),
            "noise should vary"
        );
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let spec = c("det", Basis::Constant, 42.0, 0.0);
        let obs = NodeObservation::default();
        let mut r = rng();
        assert_eq!(synthesize_counter(&spec, &obs, &mut r), 42.0);
        assert_eq!(synthesize_counter(&spec, &obs, &mut r), 42.0);
    }

    #[test]
    fn total_feature_budget_matches_paper() {
        // 22 + 34 + 34 counters, each expanded to min/max/mean = 270
        // features, plus 9 MPI benchmark features and 3 one-hots = 282.
        let counters: usize = CounterTable::ALL.iter().map(|t| t.counter_count()).sum();
        assert_eq!(counters, 90);
        assert_eq!(counters * 3 + 9 + 3, 282);
    }
}
