//! # rush-cluster
//!
//! A discrete-event fat-tree HPC cluster model — the substrate that stands in
//! for LLNL's Quartz system in this reproduction.
//!
//! The paper's variability comes from contention on shared resources: the
//! Omni-Path fat-tree fabric and the Lustre parallel filesystem. This crate
//! models exactly those mechanisms:
//!
//! * [`topology`] — a three-level fat tree (node → edge switch → aggregation
//!   → core) with configurable arity; the experiments use one 512-node pod,
//!   as in Section VI-A of the paper.
//! * [`network`] — traffic sources (per-job communication plus an all-to-all
//!   noise job) are folded into per-link loads; congestion for a node set is
//!   derived from the utilization of the links its traffic traverses.
//! * [`lustre`] — a shared-bandwidth filesystem model; I/O-intensive jobs and
//!   background load drive its saturation.
//! * [`noise`] — the processes that make the machine *vary*: a
//!   regime-switching background-congestion Markov chain (calm/busy/storm), a
//!   bounded-random-walk noise-job level, and per-job OS-noise jitter.
//! * [`counters`] — synthesis of LDMS-style monitoring counters
//!   (`sysclassib`, `opa_info`, `lustre_client`) from the hidden machine
//!   state plus measurement noise, so the ML models face a realistic,
//!   partially observed inference problem.
//! * [`machine`] — the facade tying it all together; schedulers register and
//!   remove traffic/I-O sources and query slowdowns, probes and counters.
//! * [`placement`] — node allocation policies over the free pool.

pub mod counters;
pub mod lustre;
pub mod machine;
pub mod network;
pub mod noise;
pub mod placement;
pub mod topology;

pub use machine::{Machine, MachineConfig, NodeHealth, SourceId, WorkloadIntensity};
pub use network::{NetworkState, TrafficPattern, TrafficSource};
pub use placement::{NodePool, PlacementPolicy};
pub use topology::{FatTree, FatTreeConfig, LinkId, NodeId, SwitchId};
