//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use rush_simkit::event::EventKey;
use rush_simkit::histogram::Histogram;
use rush_simkit::stats::{percentile, OnlineStats, Summary};
use rush_simkit::time::{SimDuration, SimTime};
use rush_simkit::EventQueue;

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..128)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, times[e.event]));
        }
        // times are non-decreasing, and each event fires at its own time
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
        for (at, orig) in &popped {
            prop_assert_eq!(*at, SimTime::from_secs(*orig));
        }
        prop_assert_eq!(popped.len(), times.len());
    }

    /// Cancellation + compaction must be invisible to delivery: whatever
    /// interleaving of schedules, cancels, explicit compactions and pops is
    /// played against the queue, the popped sequence equals a plain sorted
    /// reference model of the live (never-cancelled) events.
    #[test]
    fn event_queue_compaction_preserves_pop_order(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(0u64..500, 0..24),   // schedule delays
                proptest::collection::vec(0usize..1000, 0..10), // cancel picks
                any::<bool>(),                                  // explicit compact?
                0usize..12,                                     // pops
            ),
            1..10,
        ),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        // Live events the queue must still deliver, in insertion order:
        // (time, insertion index, key). Pop order is (time, insertion).
        let mut model: Vec<(SimTime, usize, EventKey)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next_id = 0usize;
        for (delays, cancels, do_compact, pops) in rounds {
            for d in delays {
                let at = now + SimDuration::from_micros(d);
                let key = q.schedule(at, next_id);
                model.push((at, next_id, key));
                next_id += 1;
            }
            for pick in cancels {
                if model.is_empty() {
                    continue;
                }
                let at = pick % model.len();
                let (_, _, key) = model.remove(at);
                prop_assert!(q.cancel(key), "first cancel of a pending event");
                prop_assert!(!q.cancel(key), "double cancel must report false");
            }
            if do_compact {
                q.compact();
                prop_assert_eq!(q.physical_len(), q.len(), "compaction purges all dead");
            }
            prop_assert_eq!(q.len(), model.len());
            for _ in 0..pops {
                let best = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, id, _))| (t, id))
                    .map(|(i, _)| i);
                match best {
                    None => {
                        prop_assert!(q.pop().is_none());
                        break;
                    }
                    Some(i) => {
                        let (t, id, _) = model.remove(i);
                        let entry = q.pop().expect("model says an event is pending");
                        prop_assert_eq!(entry.time, t);
                        prop_assert_eq!(entry.event, id);
                        now = entry.time;
                    }
                }
            }
        }
        // Drain: the tail must come out in model order too.
        model.sort_by_key(|&(t, id, _)| (t, id));
        for (t, id, _) in model {
            let entry = q.pop().expect("drain");
            prop_assert_eq!(entry.time, t);
            prop_assert_eq!(entry.event, id);
        }
        prop_assert!(q.pop().is_none());
        prop_assert_eq!(q.len(), 0);
    }

    /// The pooled allocator must be invisible in the queue's accounting:
    /// across any interleaving of schedules, cancels, explicit compactions
    /// and pops, `scheduled = delivered + cancelled + live-pending` holds
    /// at every step, the physical heap never exceeds the recorded peak,
    /// and a snapshot taken at the end restores to a queue that drains
    /// identically with identical final stats.
    #[test]
    fn event_queue_stats_and_pool_stay_consistent(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(0u64..300, 0..16),   // schedule delays
                proptest::collection::vec(0usize..1000, 0..8), // cancel picks
                any::<bool>(),                                 // explicit compact?
                0usize..8,                                     // pops
            ),
            1..12,
        ),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut keys: Vec<EventKey> = Vec::new(); // still-pending keys
        let mut next_id = 0usize;
        for (delays, cancels, do_compact, pops) in rounds {
            for d in delays {
                keys.push(q.schedule(q.now() + SimDuration::from_micros(d), next_id));
                next_id += 1;
            }
            for pick in cancels {
                if keys.is_empty() {
                    continue;
                }
                let key = keys.remove(pick % keys.len());
                prop_assert!(q.cancel(key));
            }
            if do_compact {
                q.compact();
            }
            for _ in 0..pops {
                if let Some(e) = q.pop() {
                    keys.retain(|k| k.raw() != e.seq);
                } else {
                    break;
                }
            }
            // Conservation: every event ever scheduled is delivered,
            // cancelled, or still pending — at every step, not just at
            // quiescence.
            let s = q.stats();
            prop_assert_eq!(
                s.scheduled,
                s.delivered + s.cancelled + q.len() as u64,
                "scheduled = delivered + cancelled + pending"
            );
            prop_assert!(q.physical_len() >= q.len());
            prop_assert!(q.physical_len() <= s.peak_heap);
        }

        // Snapshot round-trip at an arbitrary interleaving point.
        let stats = q.stats();
        let entries: Vec<_> = q.entries().cloned().collect();
        let dead = q.dead_seqs();
        prop_assert_eq!(entries.len(), q.physical_len());
        prop_assert_eq!(dead.len(), q.physical_len() - q.len());
        let mut restored: EventQueue<usize> = EventQueue::restore(
            entries,
            dead,
            stats.scheduled,
            q.now(),
            stats.delivered,
            stats.cancelled,
            stats.peak_heap,
            stats.compactions,
        );
        let a: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        let b: Vec<usize> = std::iter::from_fn(|| restored.pop().map(|e| e.event)).collect();
        prop_assert_eq!(a, b, "restored queue must drain identically");
        prop_assert_eq!(q.stats(), restored.stats());
    }

    #[test]
    fn online_stats_matches_batch(values in proptest::collection::vec(-1e6f64..1e6, 1..256)) {
        let mut o = OnlineStats::new();
        for &v in &values {
            o.push(v);
        }
        let s = Summary::of(&values).unwrap();
        prop_assert!((o.mean() - s.mean).abs() < 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!((o.std_dev() - s.std_dev).abs() < 1e-6 * (1.0 + s.std_dev));
        prop_assert_eq!(o.min(), s.min);
        prop_assert_eq!(o.max(), s.max);
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_in_range(
        values in proptest::collection::vec(0.01f64..1e3, 8..256),
        p_lo in 1.0f64..50.0,
        p_hi in 50.0f64..99.0,
    ) {
        let mut h = Histogram::for_seconds();
        for &v in &values {
            h.record(v);
        }
        let lo = h.percentile(p_lo);
        let hi = h.percentile(p_hi);
        prop_assert!(lo <= hi + 1e-9, "monotone: p{p_lo}={lo} vs p{p_hi}={hi}");
        // Bucket midpoints stay within a bucket's width of the data range.
        prop_assert!(lo >= h.min() / 1.06 - 1e-9);
        prop_assert!(hi <= h.max() * 1.06 + 1e-9);
        // The exact-rank estimate agrees within a generous factor on the
        // median of large-enough samples (nearest-rank vs interpolated
        // definitions differ on small ones).
        if values.len() >= 64 {
            let exact = percentile(&values, 50.0);
            let approx = h.percentile(50.0);
            prop_assert!(approx <= exact * 1.2 && approx >= exact / 1.2,
                "median: {approx} vs {exact}");
        }
    }

    #[test]
    fn histogram_merge_equals_combined_recording(
        a in proptest::collection::vec(0.01f64..1e3, 1..64),
        b in proptest::collection::vec(0.01f64..1e3, 1..64),
    ) {
        let mut ha = Histogram::for_seconds();
        let mut hb = Histogram::for_seconds();
        let mut hall = Histogram::for_seconds();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hall);
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((da + db).as_micros(), a + b);
        prop_assert_eq!((da - db).as_micros(), a.saturating_sub(b));
        let t = SimTime::from_micros(a) + db;
        prop_assert_eq!(t.as_micros(), a + b);
        prop_assert_eq!(t.since(SimTime::from_micros(a)), db);
    }
}
