//! Statistics helpers shared across the workspace.
//!
//! * [`OnlineStats`] — Welford's streaming mean/variance, used wherever we
//!   need running statistics without storing samples (e.g. per-application
//!   run-time history behind the z-score labels of Section IV-A).
//! * [`Summary`] — batch summary (min/max/mean/std/percentiles) used by the
//!   evaluation harness to report run-time distributions (Figs. 6–8).
//! * Free functions for means, standard deviations, z-scores and percentiles
//!   on slices.

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The z-score of `x` under the accumulated distribution; 0 when the
    /// standard deviation is zero or there are fewer than two observations.
    pub fn z_score(&self, x: f64) -> f64 {
        let sd = self.std_dev();
        if sd <= f64::EPSILON || self.n < 2 {
            0.0
        } else {
            (x - self.mean()) / sd
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation.
    pub std_dev: f64,
    /// 25th percentile (linear interpolation).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarizes `values`; returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        Some(Summary {
            count: values.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: mean(values),
            std_dev: std_dev(values),
            p25: percentile_sorted(&sorted, 25.0),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }

    /// The interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Full range (max - min), the spread metric Figs. 6–8 discuss.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample standard deviation; 0 with fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    (ss / (values.len() - 1) as f64).sqrt()
}

/// Z-scores of each value against the slice's own mean and standard
/// deviation. All zeros when the standard deviation is zero.
pub fn z_scores(values: &[f64]) -> Vec<f64> {
    let m = mean(values);
    let sd = std_dev(values);
    if sd <= f64::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - m) / sd).collect()
}

/// Percentile with linear interpolation on an already-sorted slice.
///
/// `p` is in `[0, 100]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted slice (copies and sorts).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn online_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!(close(o.mean(), mean(&xs)));
        assert!(close(o.std_dev(), std_dev(&xs)));
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
        assert_eq!(o.count(), 8);
    }

    #[test]
    fn online_empty_is_safe() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
        assert!(o.min().is_nan());
        assert_eq!(o.z_score(10.0), 0.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!(close(left.mean(), whole.mean()));
        assert!(close(left.variance(), whole.variance()));
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn z_score_basics() {
        let mut o = OnlineStats::new();
        for x in [10.0, 12.0, 8.0, 10.0] {
            o.push(x);
        }
        assert!(o.z_score(10.0).abs() < 1e-9);
        assert!(o.z_score(20.0) > 3.0);
        // constant sample: sd = 0 -> z = 0
        let mut c = OnlineStats::new();
        c.push(5.0);
        c.push(5.0);
        assert_eq!(c.z_score(100.0), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(close(percentile(&xs, 0.0), 1.0));
        assert!(close(percentile(&xs, 100.0), 4.0));
        assert!(close(percentile(&xs, 50.0), 2.5));
        assert!(close(percentile(&xs, 25.0), 1.75));
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn summary_of_sample() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(close(s.mean, 3.0));
        assert!(close(s.p50, 3.0));
        assert!(close(s.range(), 4.0));
        assert!(s.iqr() > 0.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn z_scores_slice() {
        let z = z_scores(&[1.0, 2.0, 3.0]);
        assert!(close(z[1], 0.0));
        assert!(close(z[0], -z[2]));
        // constant slice
        assert_eq!(z_scores(&[4.0, 4.0]), vec![0.0, 0.0]);
    }
}
