//! The simulation run loop.
//!
//! [`Engine`] owns an [`EventQueue`] and repeatedly delivers events to an
//! [`EventHandler`]. Handlers schedule follow-up events through the
//! [`Scheduler`] handle they receive with each event. The engine knows
//! nothing about the domain: clusters, jobs and telemetry are all expressed
//! as event payloads by higher layers.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Scheduling interface handed to handlers while an event is being processed.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules a follow-up event at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Number of events still pending (not counting the one being handled).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// What the handler wants the engine to do after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep running.
    Continue,
    /// Stop immediately; remaining events stay in the queue.
    Halt,
}

/// A consumer of simulation events.
pub trait EventHandler<E> {
    /// Handles one event at time `now`, optionally scheduling more through
    /// `sched`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E>) -> StepOutcome;
}

// Allow plain closures as handlers in tests and small drivers.
impl<E, F> EventHandler<E> for F
where
    F: FnMut(SimTime, E, &mut Scheduler<'_, E>) -> StepOutcome,
{
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E>) -> StepOutcome {
        self(now, event, sched)
    }
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The event queue drained.
    Drained,
    /// The handler returned [`StepOutcome::Halt`].
    Halted,
    /// The next event lies at or beyond the horizon passed to
    /// [`Engine::run_until`].
    Horizon,
}

/// Per-step instrumentation callback: invoked after each delivered event
/// with the event's simulation timestamp and the wall nanoseconds the
/// handler took. `simkit` cannot depend on the observability crate (the
/// dependency points the other way), so profilers hook in through this
/// generic observer instead.
pub type StepObserver = Box<dyn FnMut(SimTime, u64) + Send>;

/// A discrete-event simulation engine.
pub struct Engine<E> {
    queue: EventQueue<E>,
    steps: u64,
    observer: Option<StepObserver>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue at `t = 0`.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            steps: 0,
            observer: None,
        }
    }

    /// Installs (or clears) the per-step observer. While an observer is
    /// set, each handler invocation is timed with the wall clock; with no
    /// observer the run loop does no timing at all.
    pub fn set_step_observer(&mut self, observer: Option<StepObserver>) {
        self.observer = observer;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Schedules an initial event before (or between) runs.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or the handler halts.
    pub fn run<H: EventHandler<E>>(&mut self, handler: &mut H) -> RunEnd {
        self.run_until(SimTime::MAX, handler)
    }

    /// Runs until the queue drains, the handler halts, or the next event
    /// would fire at or after `horizon`. Events at exactly `horizon` are not
    /// delivered, so consecutive `run_until` calls partition time into
    /// half-open intervals `[start, horizon)`.
    pub fn run_until<H: EventHandler<E>>(&mut self, horizon: SimTime, handler: &mut H) -> RunEnd {
        loop {
            match self.queue.peek_time() {
                None => return RunEnd::Drained,
                Some(t) if t >= horizon => return RunEnd::Horizon,
                Some(_) => {}
            }
            let entry = self.queue.pop().expect("peeked event must pop");
            self.steps += 1;
            let mut sched = Scheduler {
                queue: &mut self.queue,
            };
            let started = self.observer.as_ref().map(|_| std::time::Instant::now());
            let outcome = handler.handle(entry.time, entry.event, &mut sched);
            if let (Some(observer), Some(started)) = (self.observer.as_mut(), started) {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observer(entry.time, nanos);
            }
            if outcome == StepOutcome::Halt {
                return RunEnd::Halted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn drains_queue_in_order() {
        let mut engine = Engine::new();
        for i in (0..10).rev() {
            engine.schedule(SimTime::from_secs(i), i);
        }
        let mut seen = Vec::new();
        let end = engine.run(&mut |_now, ev: u64, _s: &mut Scheduler<'_, u64>| {
            seen.push(ev);
            StepOutcome::Continue
        });
        assert_eq!(end, RunEnd::Drained);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(engine.steps(), 10);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        engine.run(&mut |now, ev: u32, s: &mut Scheduler<'_, u32>| {
            count += 1;
            if ev < 5 {
                s.schedule(now + SimDuration::from_secs(1), ev + 1);
            }
            StepOutcome::Continue
        });
        assert_eq!(count, 6);
        assert_eq!(engine.now(), SimTime::from_secs(5));
    }

    #[test]
    fn halt_stops_early_and_preserves_queue() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule(SimTime::from_secs(i), i);
        }
        let end = engine.run(&mut |_n, ev: u64, _s: &mut Scheduler<'_, u64>| {
            if ev == 3 {
                StepOutcome::Halt
            } else {
                StepOutcome::Continue
            }
        });
        assert_eq!(end, RunEnd::Halted);
        assert_eq!(engine.pending(), 6);
    }

    #[test]
    fn step_observer_sees_every_delivered_event() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let calls = Arc::new(AtomicU64::new(0));
        let last_t = Arc::new(AtomicU64::new(u64::MAX));
        let mut engine = Engine::new();
        for i in 0..4 {
            engine.schedule(SimTime::from_secs(i), i);
        }
        let (c, t) = (Arc::clone(&calls), Arc::clone(&last_t));
        engine.set_step_observer(Some(Box::new(move |now, _nanos| {
            c.fetch_add(1, Ordering::Relaxed);
            t.store(now.as_micros(), Ordering::Relaxed);
        })));
        engine.run(&mut |_n, _ev: u64, _s: &mut Scheduler<'_, u64>| StepOutcome::Continue);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(
            last_t.load(Ordering::Relaxed),
            SimTime::from_secs(3).as_micros()
        );

        // Clearing the observer stops the callbacks.
        engine.set_step_observer(None);
        engine.schedule(SimTime::from_secs(9), 9);
        engine.run(&mut |_n, _ev: u64, _s: &mut Scheduler<'_, u64>| StepOutcome::Continue);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(1), ());
        engine.schedule(SimTime::from_secs(2), ());
        let mut n = 0;
        let end = engine.run_until(
            SimTime::from_secs(2),
            &mut |_t, (), _s: &mut Scheduler<'_, ()>| {
                n += 1;
                StepOutcome::Continue
            },
        );
        assert_eq!(end, RunEnd::Horizon);
        assert_eq!(n, 1);
        // Resuming picks up the event exactly at the previous horizon.
        let end = engine.run(&mut |_t, (), _s: &mut Scheduler<'_, ()>| {
            n += 1;
            StepOutcome::Continue
        });
        assert_eq!(end, RunEnd::Drained);
        assert_eq!(n, 2);
    }
}
