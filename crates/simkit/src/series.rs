//! Timestamped scalar series with window queries.
//!
//! [`TimeSeries`] is the storage primitive behind the telemetry store: a
//! monotonically appended list of `(time, value)` points with binary-searched
//! window extraction and min/max/mean reduction over a window — exactly the
//! reduction the paper applies to each LDMS counter over the five minutes
//! before a job runs (Section III-A).

use crate::snapshot::{Restorable, Snapshot, SnapshotError, Val};
use crate::stats::OnlineStats;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The `(min, max, mean)` reduction of a counter over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowAggregate {
    /// Number of points in the window.
    pub count: usize,
    /// Minimum value; 0 when the window is empty.
    pub min: f64,
    /// Maximum value; 0 when the window is empty.
    pub max: f64,
    /// Mean value; 0 when the window is empty.
    pub mean: f64,
}

impl WindowAggregate {
    /// The aggregate of an empty window: all zeros.
    ///
    /// Telemetry pipelines treat "no samples" as zero activity rather than
    /// poisoning downstream feature vectors with NaNs.
    pub const EMPTY: WindowAggregate = WindowAggregate {
        count: 0,
        min: 0.0,
        max: 0.0,
        mean: 0.0,
    };
}

/// An append-only series of timestamped values.
///
/// ```
/// use rush_simkit::{SimTime, TimeSeries};
///
/// let mut series = TimeSeries::new();
/// for s in 0..10 {
///     series.push(SimTime::from_secs(s), s as f64);
/// }
/// let agg = series.aggregate(SimTime::from_secs(2), SimTime::from_secs(5));
/// assert_eq!(agg.min, 2.0);
/// assert_eq!(agg.max, 4.0);
/// assert_eq!(agg.mean, 3.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// An empty series with room for `cap` points.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Appends a point. Points must be appended in non-decreasing time
    /// order; out-of-order appends panic in debug builds and are clamped to
    /// the last timestamp otherwise.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            debug_assert!(at >= last, "out-of-order append at {at}, last {last}");
            let at = at.max(last);
            self.times.push(at);
        } else {
            self.times.push(at);
        }
        self.values.push(value);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Iterates over all points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Values with timestamps in the half-open window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        &self.values[lo..hi]
    }

    /// Min/max/mean over `[from, to)`; [`WindowAggregate::EMPTY`] when no
    /// points fall inside.
    pub fn aggregate(&self, from: SimTime, to: SimTime) -> WindowAggregate {
        let vals = self.window(from, to);
        if vals.is_empty() {
            return WindowAggregate::EMPTY;
        }
        let mut st = OnlineStats::new();
        for &v in vals {
            st.push(v);
        }
        WindowAggregate {
            count: vals.len(),
            min: st.min(),
            max: st.max(),
            mean: st.mean(),
        }
    }

    /// Drops all points with timestamps strictly before `cutoff`.
    ///
    /// The telemetry store calls this periodically so months-long campaigns
    /// do not grow memory without bound.
    pub fn retain_from(&mut self, cutoff: SimTime) {
        let lo = self.times.partition_point(|&t| t < cutoff);
        if lo > 0 {
            self.times.drain(..lo);
            self.values.drain(..lo);
        }
    }
}

impl Snapshot for TimeSeries {
    fn to_val(&self) -> Val {
        Val::map()
            .with(
                "t",
                Val::List(self.times.iter().map(|t| Val::U64(t.as_micros())).collect()),
            )
            .with(
                "v",
                Val::List(self.values.iter().map(|&v| Val::from_f64(v)).collect()),
            )
    }
}

impl Restorable for TimeSeries {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let times: Vec<SimTime> = v
            .l("t")?
            .iter()
            .map(|t| t.as_u64().map(SimTime::from_micros))
            .collect::<Result<_, _>>()?;
        let values: Vec<f64> = v
            .l("v")?
            .iter()
            .map(Val::as_f64)
            .collect::<Result<_, _>>()?;
        if times.len() != values.len() {
            return Err(SnapshotError::Schema("series length mismatch".to_string()));
        }
        Ok(TimeSeries { times, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_series() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..10u64 {
            ts.push(t(i), i as f64);
        }
        ts
    }

    #[test]
    fn window_is_half_open() {
        let ts = sample_series();
        assert_eq!(ts.window(t(2), t(5)), &[2.0, 3.0, 4.0]);
        assert_eq!(ts.window(t(0), t(1)), &[0.0]);
        assert_eq!(ts.window(t(9), t(100)), &[9.0]);
        assert!(ts.window(t(20), t(30)).is_empty());
        assert!(ts.window(t(5), t(5)).is_empty());
    }

    #[test]
    fn aggregate_computes_min_max_mean() {
        let ts = sample_series();
        let agg = ts.aggregate(t(2), t(5));
        assert_eq!(agg.count, 3);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 4.0);
        assert!((agg.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_aggregates_to_zero() {
        let ts = sample_series();
        assert_eq!(ts.aggregate(t(50), t(60)), WindowAggregate::EMPTY);
        assert_eq!(
            TimeSeries::new().aggregate(t(0), t(10)),
            WindowAggregate::EMPTY
        );
    }

    #[test]
    fn last_and_len() {
        let ts = sample_series();
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.last(), Some((t(9), 9.0)));
        assert!(TimeSeries::new().last().is_none());
    }

    #[test]
    fn retain_from_drops_prefix() {
        let mut ts = sample_series();
        ts.retain_from(t(7));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.window(t(0), t(100)), &[7.0, 8.0, 9.0]);
        // retaining from before the first point is a no-op
        ts.retain_from(t(0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let mut ts = TimeSeries::new();
        ts.push(t(1), 1.0);
        ts.push(t(1), 2.0);
        assert_eq!(ts.window(t(1), t(2)), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    #[cfg(debug_assertions)]
    fn out_of_order_append_panics_in_debug() {
        let mut ts = TimeSeries::new();
        ts.push(t(5), 1.0);
        ts.push(t(1), 2.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn window_matches_linear_scan(
            points in proptest::collection::vec(0u64..1000, 0..64),
            from in 0u64..1000,
            width in 0u64..500,
        ) {
            let mut sorted = points.clone();
            sorted.sort_unstable();
            let mut ts = TimeSeries::new();
            for (i, &p) in sorted.iter().enumerate() {
                ts.push(SimTime::from_secs(p), i as f64);
            }
            let to = from + width;
            let expected: Vec<f64> = sorted
                .iter()
                .enumerate()
                .filter(|(_, &p)| p >= from && p < to)
                .map(|(i, _)| i as f64)
                .collect();
            prop_assert_eq!(
                ts.window(SimTime::from_secs(from), SimTime::from_secs(to)),
                expected.as_slice()
            );
        }

        #[test]
        fn aggregate_bounds_hold(points in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let mut ts = TimeSeries::new();
            for (i, &v) in points.iter().enumerate() {
                ts.push(SimTime::from_secs(i as u64), v);
            }
            let agg = ts.aggregate(SimTime::ZERO, SimTime::from_secs(points.len() as u64));
            prop_assert_eq!(agg.count, points.len());
            prop_assert!(agg.min <= agg.mean + 1e-9);
            prop_assert!(agg.mean <= agg.max + 1e-9);
        }
    }
}
