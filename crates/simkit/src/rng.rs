//! Named, independently seeded RNG streams.
//!
//! A simulation draws randomness from many places: workload noise, OS jitter,
//! traffic regimes, job arrival times. If they all shared one generator,
//! adding a single draw anywhere would shift every downstream value and make
//! results impossible to compare across code versions. Instead, every
//! consumer asks [`RngStreams`] for a stream by name; the stream's seed is a
//! hash of `(master_seed, name)`, so streams are mutually independent and a
//! stream's draws depend only on the master seed and its own usage.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Derives independent [`SmallRng`] streams from a master seed.
#[derive(Debug, Clone)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Creates a factory for streams derived from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        RngStreams {
            master: master_seed,
        }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the RNG stream for `name`. Calling twice with the same name
    /// returns an identical generator (same state, independent copies).
    pub fn stream(&self, name: &str) -> SmallRng {
        SmallRng::seed_from_u64(derive_seed(self.master, name))
    }

    /// Returns a stream for `name` further split by an index — e.g. one
    /// stream per node or per trial.
    pub fn indexed_stream(&self, name: &str, index: u64) -> SmallRng {
        let base = derive_seed(self.master, name);
        SmallRng::seed_from_u64(splitmix64(
            base ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// The derived seed for `name` — the value [`stream`](Self::stream)
    /// seeds its generator with. Exposed so checkpointing can record a
    /// stream as `(seed, draw_count)` and later reconstruct it with
    /// [`CountedRng::restore`].
    pub fn stream_seed(&self, name: &str) -> u64 {
        derive_seed(self.master, name)
    }

    /// Returns the draw-counting stream for `name`: identical draws to
    /// [`stream`](Self::stream), but snapshot-restorable.
    pub fn counted_stream(&self, name: &str) -> CountedRng {
        CountedRng::seeded(derive_seed(self.master, name))
    }
}

/// A [`SmallRng`] that counts its draws, making it snapshot-restorable.
///
/// Every derived `rand` method (`gen`, `gen_range`, `fill_bytes`,
/// distribution sampling, shuffling) funnels through `next_u64`, so counting
/// there captures the generator's exact position in its stream. A stream is
/// then fully described by `(seed, draws)`: [`CountedRng::restore`] reseeds
/// and burns `draws` values to land on the identical state, which is what
/// makes a resumed run's remaining random draws byte-for-byte identical to
/// the uninterrupted run's.
#[derive(Debug, Clone)]
pub struct CountedRng {
    seed: u64,
    draws: u64,
    inner: SmallRng,
}

impl CountedRng {
    /// A fresh stream at position zero.
    pub fn seeded(seed: u64) -> Self {
        CountedRng {
            seed,
            draws: 0,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reconstructs the stream at position `draws`.
    pub fn restore(seed: u64, draws: u64) -> Self {
        let mut rng = CountedRng::seeded(seed);
        for _ in 0..draws {
            rng.inner.next_u64();
        }
        rng.draws = draws;
        rng
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of `u64` values drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl RngCore for CountedRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// FNV-1a hash of the name mixed with the master seed through splitmix64.
fn derive_seed(master: u64, name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h ^ master)
}

/// The splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let streams = RngStreams::new(42);
        let a: Vec<u64> = streams
            .stream("noise")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = streams
            .stream("noise")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let streams = RngStreams::new(42);
        let a: u64 = streams.stream("noise").gen();
        let b: u64 = streams.stream("traffic").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngStreams::new(1).stream("x").gen();
        let b: u64 = RngStreams::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let streams = RngStreams::new(7);
        let a: u64 = streams.indexed_stream("node", 0).gen();
        let b: u64 = streams.indexed_stream("node", 1).gen();
        let a2: u64 = streams.indexed_stream("node", 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn counted_stream_matches_plain_stream() {
        let streams = RngStreams::new(0xA5);
        let mut plain = streams.stream("sched/place");
        let mut counted = streams.counted_stream("sched/place");
        for _ in 0..64 {
            assert_eq!(plain.gen::<u64>(), counted.gen::<u64>());
        }
        // Derived methods count too: gen::<f64> and gen_range draw u64s.
        let _: f64 = counted.gen();
        let _ = counted.gen_range(0.25..0.75);
        assert!(counted.draws() >= 66);
    }

    #[test]
    fn restore_lands_on_the_identical_state() {
        let mut a = CountedRng::seeded(17);
        for _ in 0..100 {
            let _: u64 = a.gen();
        }
        let mut b = CountedRng::restore(a.seed(), a.draws());
        assert_eq!(b.draws(), a.draws());
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn stream_seed_matches_counted_stream() {
        let streams = RngStreams::new(3);
        let seed = streams.stream_seed("x");
        let mut via_seed = CountedRng::seeded(seed);
        let mut via_name = streams.counted_stream("x");
        assert_eq!(via_seed.gen::<u64>(), via_name.gen::<u64>());
    }

    #[test]
    fn stream_isolation_adding_a_stream_does_not_perturb_others() {
        let streams = RngStreams::new(99);
        let before: u64 = streams.stream("jobs").gen();
        // "create" another stream in between
        let _ = streams.stream("brand-new-consumer");
        let after: u64 = streams.stream("jobs").gen();
        assert_eq!(before, after);
    }
}
