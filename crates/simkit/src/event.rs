//! A deterministic timestamped event queue.
//!
//! The queue is a binary min-heap ordered by `(time, sequence)`. The sequence
//! number is assigned at insertion, so events scheduled for the same instant
//! pop in insertion order. This stability is what makes a whole simulation
//! replayable: given the same seed and the same schedule calls, the event
//! trace is identical on every run and platform.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its scheduled firing time and tie-break sequence number.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence; earlier insertions fire first at equal times.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable priority queue of future events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// clamps such events to the current clock so time never runs backwards,
    /// and debug builds panic to surface the bug early.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, event });
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some(entry)
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(10), 10);
        assert_eq!(q.pop().unwrap().event, 1);
        // schedule relative to the new now
        q.schedule(q.now() + SimDuration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 10);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
