//! A deterministic timestamped event queue with indexed cancellation and
//! pooled payload storage.
//!
//! The queue is a binary min-heap of lightweight *keys* ordered by
//! `(time, sequence)`; payloads live in a slab whose freed slots are reused
//! (pooled allocation), so a long simulation stops allocating per event
//! once the slab has grown to the peak concurrent size. The sequence number
//! is assigned at insertion, so events scheduled for the same instant pop
//! in insertion order. This stability is what makes a whole simulation
//! replayable: given the same seed and the same schedule calls, the event
//! trace is identical on every run and platform.
//!
//! # Cancellation and compaction
//!
//! [`EventQueue::schedule`] returns an [`EventKey`] that can later be passed
//! to [`EventQueue::cancel`]. Cancellation is *lazy*: the key stays in the
//! heap and the payload in its slot, and [`EventQueue::pop`] silently
//! discards the entry (returning its slot to the pool) when its turn comes.
//! Once cancelled entries outnumber live ones the heap is *compacted* —
//! rebuilt without the dead wood, freeing their slots in bulk — so a
//! workload that cancels heavily (the scheduler engine superseding finish
//! events every progress update) keeps the heap at O(live) instead of
//! O(all ever scheduled). Compaction never changes the pop order: keys are
//! totally ordered by `(time, seq)`, so rebuilding the heap from any
//! permutation of the survivors yields the same pop sequence.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// An event with its scheduled firing time and tie-break sequence number.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence; earlier insertions fire first at equal times.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A heap key: the `(time, seq)` total order plus the slab slot holding the
/// payload. The slot is *not* part of the order — it is the indirection
/// that lets payloads live in pooled storage while the heap sifts dense
/// 24-byte keys instead of whole entries. A slot is freed (and can be
/// reused) only once its key leaves the heap, so a key's slot reference is
/// always valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle to one scheduled event, returned by [`EventQueue::schedule`].
///
/// Pass it to [`EventQueue::cancel`] to retract the event before it fires.
/// A key is only meaningful for a *pending* event: cancelling a key whose
/// event already fired (or was already cancelled) is detected and returns
/// `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

impl EventKey {
    /// The raw sequence number, for snapshot serialization.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its raw sequence number. Only meaningful for a
    /// sequence captured by [`EventKey::raw`] on the same (restored) queue.
    pub fn from_raw(seq: u64) -> EventKey {
        EventKey(seq)
    }
}

/// Lifetime counters of one [`EventQueue`], for benchmarks and capacity
/// planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events scheduled over the queue's lifetime.
    pub scheduled: u64,
    /// Events actually delivered by [`EventQueue::pop`] (cancelled entries
    /// are discarded, not delivered).
    pub delivered: u64,
    /// Events retracted via [`EventQueue::cancel`].
    pub cancelled: u64,
    /// Largest *physical* heap size ever reached (live + not-yet-collected
    /// cancelled entries).
    pub peak_heap: usize,
    /// Times the heap was compacted.
    pub compactions: u64,
}

/// Minimum physical heap size before compaction is considered; below this
/// the dead entries are cheaper to carry than to collect.
const COMPACT_MIN_LEN: usize = 64;

/// A stable priority queue of future events with pooled payload slots.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap of `(time, seq, slot)` keys; cancelled keys are collected
    /// lazily.
    heap: BinaryHeap<HeapKey>,
    /// Payload slab indexed by slot. `None` marks a free slot (its index is
    /// on the `free` list) — freed slots are reused before the slab grows.
    slab: Vec<Option<EventEntry<E>>>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// *Live* pending `seq → slot` (cancelled entries are removed here
    /// first), for cancellation, liveness checks and snapshot capture.
    index: HashMap<u64, u32>,
    /// Heap keys whose event was cancelled; purged lazily by pop/peek and
    /// in bulk by compaction.
    stale: usize,
    next_seq: u64,
    now: SimTime,
    delivered: u64,
    cancelled_total: u64,
    peak_heap: usize,
    compactions: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            stale: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
            cancelled_total: 0,
            peak_heap: 0,
            compactions: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending *live* events (cancelled-but-uncollected entries
    /// are excluded).
    pub fn len(&self) -> usize {
        self.heap.len() - self.stale
    }

    /// Physical heap size, counting cancelled entries not yet collected.
    pub fn physical_len(&self) -> usize {
        self.heap.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frees the slot behind a heap key whose entry will never deliver.
    fn release_slot(&mut self, slot: u32) {
        debug_assert!(self.slab[slot as usize].is_some());
        self.slab[slot as usize] = None;
        self.free.push(slot);
    }

    /// Takes a slot from the pool, growing the slab only when none is free.
    fn alloc_slot(&mut self, entry: EventEntry<E>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slab[slot as usize].is_none());
                self.slab[slot as usize] = Some(entry);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(Some(entry));
                slot
            }
        }
    }

    /// Schedules `event` to fire at absolute time `at`, returning a key
    /// that can later [`cancel`](Self::cancel) it.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// clamps such events to the current clock so time never runs backwards,
    /// and debug builds panic to surface the bug early.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(EventEntry { time, seq, event });
        self.index.insert(seq, slot);
        self.heap.push(HeapKey { time, seq, slot });
        self.peak_heap = self.peak_heap.max(self.heap.len());
        EventKey(seq)
    }

    /// Retracts the pending event behind `key` so it will never be
    /// delivered. The entry is removed lazily; when cancelled entries
    /// outnumber live ones the heap is compacted.
    ///
    /// Returns `false` — and changes nothing — if `key` does not refer to a
    /// pending event (already cancelled, or already fired).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        debug_assert!(key.0 < self.next_seq, "cancelling a key never issued");
        if self.index.remove(&key.0).is_none() {
            return false; // already cancelled or already delivered
        }
        self.stale += 1;
        self.cancelled_total += 1;
        if self.heap.len() >= COMPACT_MIN_LEN && self.stale * 2 > self.heap.len() {
            self.compact();
        }
        true
    }

    /// Physically removes every cancelled entry — freeing their payload
    /// slots — and rebuilds the heap from the survivors. Pop order is
    /// unaffected: `(time, seq)` is a total order, so heapifying any
    /// permutation of the survivors pops identically.
    pub fn compact(&mut self) {
        if self.stale == 0 {
            return;
        }
        let mut keys = std::mem::take(&mut self.heap).into_vec();
        keys.retain(|k| {
            if self.index.contains_key(&k.seq) {
                return true;
            }
            debug_assert!(self.slab[k.slot as usize].is_some());
            self.slab[k.slot as usize] = None;
            self.free.push(k.slot);
            false
        });
        self.stale = 0;
        self.heap = BinaryHeap::from(keys);
        self.compactions += 1;
    }

    /// Time of the next pending live event, if any. Cancelled entries at
    /// the head are collected on the way.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(head) = self.heap.peek() {
            if self.index.contains_key(&head.seq) {
                return Some(head.time);
            }
            let slot = head.slot;
            self.heap.pop();
            self.release_slot(slot);
            self.stale -= 1;
        }
        None
    }

    /// Pops the next live event, advancing the clock to its firing time.
    /// Cancelled entries are discarded silently; every collected slot —
    /// delivered or cancelled — returns to the pool.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        while let Some(key) = self.heap.pop() {
            let entry = self.slab[key.slot as usize]
                .take()
                .expect("heap key must have a payload");
            self.free.push(key.slot);
            if self.index.remove(&key.seq).is_none() {
                self.stale -= 1;
                continue; // cancelled
            }
            self.now = entry.time;
            self.delivered += 1;
            return Some(entry);
        }
        None
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
        self.index.clear();
        self.stale = 0;
    }

    /// Lifetime counters (see [`QueueStats`]).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.next_seq,
            delivered: self.delivered,
            cancelled: self.cancelled_total,
            peak_heap: self.peak_heap,
            compactions: self.compactions,
        }
    }

    /// All physical entries — live *and* cancelled-but-uncollected — in an
    /// unspecified order, for snapshot capture. Pair with
    /// [`dead_seqs`](Self::dead_seqs) to reconstruct the exact queue:
    /// restoring the cancelled entries too (not just the live frontier)
    /// keeps post-resume compaction behaviour and queue-stats gauges
    /// byte-identical to the uninterrupted run.
    pub fn entries(&self) -> impl Iterator<Item = &EventEntry<E>> {
        self.slab.iter().flatten()
    }

    /// Sequence numbers of cancelled-but-uncollected entries, sorted, for
    /// snapshot capture.
    pub fn dead_seqs(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = self
            .entries()
            .filter(|e| !self.index.contains_key(&e.seq))
            .map(|e| e.seq)
            .collect();
        seqs.sort_unstable();
        seqs
    }

    /// Rebuilds a queue from snapshot parts.
    ///
    /// `entries` must be the physical entries captured by
    /// [`entries`](Self::entries) (any order — `(time, seq)` is a total
    /// order so pop order is independent of heap layout), `dead` the
    /// cancelled-but-uncollected sequence set, and the counters the values
    /// reported by [`stats`](Self::stats) at capture time.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        entries: Vec<EventEntry<E>>,
        dead: Vec<u64>,
        next_seq: u64,
        now: SimTime,
        delivered: u64,
        cancelled_total: u64,
        peak_heap: usize,
        compactions: u64,
    ) -> Self {
        let mut q = EventQueue {
            heap: BinaryHeap::with_capacity(entries.len()),
            slab: Vec::with_capacity(entries.len()),
            free: Vec::new(),
            index: HashMap::with_capacity(entries.len()),
            stale: 0,
            next_seq,
            now,
            delivered,
            cancelled_total,
            peak_heap,
            compactions,
        };
        let dead: std::collections::HashSet<u64> = dead.into_iter().collect();
        for entry in entries {
            let key = HeapKey {
                time: entry.time,
                seq: entry.seq,
                slot: u32::try_from(q.slab.len()).expect("event slab exceeds u32 slots"),
            };
            if dead.contains(&entry.seq) {
                q.stale += 1;
            } else {
                q.index.insert(entry.seq, key.slot);
            }
            q.slab.push(Some(entry));
            q.heap.push(key);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(10), 10);
        assert_eq!(q.pop().unwrap().event, 1);
        // schedule relative to the new now
        q.schedule(q.now() + SimDuration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 10);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancelled_event_never_pops() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(2), "live");
        assert!(q.cancel(k));
        assert!(!q.cancel(k), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "live");
        assert!(q.pop().is_none());
        assert_eq!(q.stats().delivered, 1);
        assert_eq!(q.stats().cancelled, 1);
    }

    #[test]
    fn cancel_after_delivery_is_detected() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(k), "cancelling a fired key must be a no-op");
        assert_eq!(q.stats().cancelled, 0);
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(5), ());
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        // The clock must not have advanced past the discarded entry.
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn freed_slots_are_reused_before_the_slab_grows() {
        let mut q = EventQueue::new();
        // Steady state: one pending event at a time, many generations.
        q.schedule(SimTime::from_secs(0), 0u64);
        for i in 1..1000u64 {
            assert!(q.pop().is_some());
            q.schedule(SimTime::from_secs(i), i);
        }
        assert_eq!(q.slab.len(), 1, "pool must recycle the single hot slot");
    }

    #[test]
    fn compaction_keeps_pop_order_and_shrinks_heap() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..200u64 {
            keys.push(q.schedule(SimTime::from_secs(i), i));
        }
        // Cancel three quarters; past the 50% dead threshold the heap
        // compacts automatically.
        for (i, &k) in keys.iter().enumerate() {
            if i % 4 != 0 {
                q.cancel(k);
            }
        }
        assert!(q.stats().compactions >= 1, "compaction must have fired");
        assert!(q.physical_len() <= 100, "dead entries must be collected");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        let expected: Vec<u64> = (0..200).filter(|i| i % 4 == 0).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn compaction_frees_cancelled_slots_for_reuse() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..100u64)
            .map(|i| q.schedule(SimTime::from_secs(i), i))
            .collect();
        for &k in &keys[..60] {
            q.cancel(k); // crosses the 50% threshold -> compaction
        }
        assert!(q.stats().compactions >= 1);
        let slab_before = q.slab.len();
        for i in 100..150u64 {
            q.schedule(SimTime::from_secs(i), i);
        }
        assert_eq!(q.slab.len(), slab_before, "freed slots must be reused");
    }

    #[test]
    fn restore_reproduces_pop_order_and_stats() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..40u64 {
            keys.push(q.schedule(SimTime::from_secs(i), i));
        }
        for _ in 0..5 {
            q.pop();
        }
        for &k in &keys[10..20] {
            q.cancel(k);
        }
        let stats = q.stats();
        let entries: Vec<EventEntry<u64>> = q.entries().cloned().collect();
        let dead = q.dead_seqs();
        assert_eq!(dead.len(), 10, "cancelled entries stay capturable");
        let mut restored = EventQueue::restore(
            entries,
            dead,
            stats.scheduled,
            q.now(),
            stats.delivered,
            stats.cancelled,
            stats.peak_heap,
            stats.compactions,
        );
        assert_eq!(restored.stats(), stats);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.physical_len(), q.physical_len());
        let a: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        let b: Vec<u64> = std::iter::from_fn(|| restored.pop().map(|e| e.event)).collect();
        assert_eq!(a, b);
        assert_eq!(restored.stats(), q.stats());
    }

    #[test]
    fn event_key_raw_round_trip() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1), ());
        assert_eq!(EventKey::from_raw(k.raw()), k);
    }

    #[test]
    fn peak_heap_tracks_physical_size() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..10)
            .map(|i| q.schedule(SimTime::from_secs(i), ()))
            .collect();
        for k in keys {
            q.cancel(k);
        }
        let stats = q.stats();
        assert_eq!(stats.peak_heap, 10);
        assert_eq!(stats.scheduled, 10);
        assert_eq!(stats.cancelled, 10);
        assert!(q.pop().is_none());
        assert_eq!(q.stats().delivered, 0);
    }
}
