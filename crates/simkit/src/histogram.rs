//! Log-bucketed histograms for latency-style quantities.
//!
//! [`Summary`](crate::stats::Summary) needs all samples in memory; a
//! [`Histogram`] records in O(1) space with bounded relative error, which
//! is what long simulations want for wait-time and run-time distributions.
//! Buckets are logarithmic: each spans a fixed ratio, so relative error is
//! uniform across the range (HDR-histogram style, simplified).

use serde::{Deserialize, Serialize};

/// A histogram over `(0, ∞)` with logarithmic buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of bucket 0.
    min_value: f64,
    /// log of the per-bucket growth ratio.
    log_ratio: f64,
    /// Bucket counts; index = floor(log(v / min_value) / log_ratio).
    counts: Vec<u64>,
    /// Values below `min_value`.
    underflow: u64,
    /// Total recorded values.
    total: u64,
    /// Exact running extrema.
    min_seen: f64,
    max_seen: f64,
}

impl Histogram {
    /// A histogram covering `[min_value, min_value * ratio^buckets)` with
    /// `buckets` buckets each spanning a factor of `ratio`.
    ///
    /// # Panics
    /// Panics unless `min_value > 0`, `ratio > 1` and `buckets > 0`.
    pub fn new(min_value: f64, ratio: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(ratio > 1.0, "ratio must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            min_value,
            log_ratio: ratio.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A default for second-scale durations: 1 ms to ~2.8 hours at 5%
    /// relative resolution.
    pub fn for_seconds() -> Self {
        // 1e-3 * 1.05^330 ≈ 1e4 seconds
        Histogram::new(1e-3, 1.05, 330)
    }

    /// Records one value; non-finite or non-positive values count as
    /// underflow.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value.is_finite() {
            self.min_seen = self.min_seen.min(value);
            self.max_seen = self.max_seen.max(value);
        }
        if !value.is_finite() || value < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.min_value).ln() / self.log_ratio) as usize;
        let idx = idx.min(self.counts.len() - 1); // clamp overflow to last bucket
        self.counts[idx] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.min_seen
        }
    }

    /// Exact maximum recorded; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.max_seen
        }
    }

    /// Approximate percentile (`p` in `[0, 100]`): the geometric midpoint
    /// of the bucket containing the rank. `NaN` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0 * self.total as f64).ceil().max(1.0) as u64;
        if rank >= self.total {
            return self.max_seen; // the top rank is tracked exactly
        }
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min_seen.min(self.min_value);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let lo = self.min_value * (self.log_ratio * i as f64).exp();
                let hi = lo * self.log_ratio.exp();
                return (lo * hi).sqrt();
            }
        }
        self.max_seen
    }

    /// Merges another histogram with identical bucketing.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_value, other.min_value, "bucket layout mismatch");
        assert_eq!(self.log_ratio, other.log_ratio, "bucket layout mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::for_seconds();
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut h = Histogram::for_seconds();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.1).collect();
        for &v in &values {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = crate::stats::percentile(&values, p);
            let approx = h.percentile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.06,
                "p{p}: approx {approx}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::for_seconds();
        assert!(h.percentile(50.0).is_nan());
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn underflow_and_overflow_are_absorbed() {
        let mut h = Histogram::new(1.0, 2.0, 4); // covers [1, 16)
        h.record(0.01); // underflow
        h.record(1e9); // clamps to last bucket
        h.record(f64::NAN); // counts as underflow
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e9);
        // p100 returns the exact max
        assert_eq!(h.percentile(100.0), 1e9);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::for_seconds();
        let mut b = Histogram::for_seconds();
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [4.0, 8.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 8.0);
        assert_eq!(a.min(), 1.0);
        let median = a.percentile(50.0);
        assert!((1.8..=4.3).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = Histogram::new(1.0, 2.0, 4);
        let b = Histogram::new(1.0, 2.0, 8);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_min_rejected() {
        Histogram::new(0.0, 2.0, 4);
    }
}
