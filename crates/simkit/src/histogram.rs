//! Log-bucketed histograms for latency-style quantities.
//!
//! [`Summary`](crate::stats::Summary) needs all samples in memory; a
//! [`Histogram`] records in O(1) space with bounded relative error, which
//! is what long simulations want for wait-time and run-time distributions.
//! Buckets are logarithmic: each spans a fixed ratio, so relative error is
//! uniform across the range (HDR-histogram style, simplified).

use crate::snapshot::{Restorable, Snapshot, SnapshotError, Val};
use serde::{Deserialize, Serialize};

/// A histogram over `(0, ∞)` with logarithmic buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of bucket 0.
    min_value: f64,
    /// log of the per-bucket growth ratio.
    log_ratio: f64,
    /// Bucket counts; index = floor(log(v / min_value) / log_ratio).
    counts: Vec<u64>,
    /// Values below `min_value`.
    underflow: u64,
    /// Total recorded values.
    total: u64,
    /// Exact running extrema.
    min_seen: f64,
    max_seen: f64,
}

impl Histogram {
    /// A histogram covering `[min_value, min_value * ratio^buckets)` with
    /// `buckets` buckets each spanning a factor of `ratio`.
    ///
    /// # Panics
    /// Panics unless `min_value > 0`, `ratio > 1` and `buckets > 0`.
    pub fn new(min_value: f64, ratio: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(ratio > 1.0, "ratio must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            min_value,
            log_ratio: ratio.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A default for second-scale durations: 1 ms to ~2.8 hours at 5%
    /// relative resolution.
    pub fn for_seconds() -> Self {
        // 1e-3 * 1.05^330 ≈ 1e4 seconds
        Histogram::new(1e-3, 1.05, 330)
    }

    /// Records one value; non-finite or non-positive values count as
    /// underflow.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value.is_finite() {
            self.min_seen = self.min_seen.min(value);
            self.max_seen = self.max_seen.max(value);
        }
        if !value.is_finite() || value < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((value / self.min_value).ln() / self.log_ratio) as usize;
        let idx = idx.min(self.counts.len() - 1); // clamp overflow to last bucket
        self.counts[idx] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.min_seen
        }
    }

    /// Exact maximum recorded; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.max_seen
        }
    }

    /// Approximate percentile (`p` in `[0, 100]`): the geometric midpoint
    /// of the bucket containing the rank. `NaN` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0 * self.total as f64).ceil().max(1.0) as u64;
        if rank >= self.total {
            return self.max_seen; // the top rank is tracked exactly
        }
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min_seen.min(self.min_value);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let lo = self.min_value * (self.log_ratio * i as f64).exp();
                let hi = lo * self.log_ratio.exp();
                return (lo * hi).sqrt();
            }
        }
        self.max_seen
    }

    /// Merges another histogram with identical bucketing.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_value, other.min_value, "bucket layout mismatch");
        assert_eq!(self.log_ratio, other.log_ratio, "bucket layout mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

impl Snapshot for Histogram {
    fn to_val(&self) -> Val {
        // Counts are stored sparsely as (index, count) pairs: long-run
        // histograms are wide but mostly empty.
        let mut buckets = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                buckets.push(Val::List(vec![Val::U64(i as u64), Val::U64(c)]));
            }
        }
        Val::map()
            .with("min_value", Val::from_f64(self.min_value))
            .with("log_ratio", Val::from_f64(self.log_ratio))
            .with("len", Val::U64(self.counts.len() as u64))
            .with("buckets", Val::List(buckets))
            .with("underflow", Val::U64(self.underflow))
            .with("total", Val::U64(self.total))
            .with("min_seen", Val::from_f64(self.min_seen))
            .with("max_seen", Val::from_f64(self.max_seen))
    }
}

impl Restorable for Histogram {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let len = v.u("len")? as usize;
        let mut counts = vec![0u64; len];
        for pair in v.l("buckets")? {
            let pair = pair.as_list()?;
            if pair.len() != 2 {
                return Err(SnapshotError::Schema("bucket pair".to_string()));
            }
            let idx = pair[0].as_u64()? as usize;
            if idx >= len {
                return Err(SnapshotError::Schema(format!(
                    "bucket index {idx} out of range {len}"
                )));
            }
            counts[idx] = pair[1].as_u64()?;
        }
        Ok(Histogram {
            min_value: v.f("min_value")?,
            log_ratio: v.f("log_ratio")?,
            counts,
            underflow: v.u("underflow")?,
            total: v.u("total")?,
            min_seen: v.f("min_seen")?,
            max_seen: v.f("max_seen")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::for_seconds();
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut h = Histogram::for_seconds();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.1).collect();
        for &v in &values {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = crate::stats::percentile(&values, p);
            let approx = h.percentile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel < 0.06,
                "p{p}: approx {approx}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::for_seconds();
        assert!(h.percentile(50.0).is_nan());
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn underflow_and_overflow_are_absorbed() {
        let mut h = Histogram::new(1.0, 2.0, 4); // covers [1, 16)
        h.record(0.01); // underflow
        h.record(1e9); // clamps to last bucket
        h.record(f64::NAN); // counts as underflow
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e9);
        // p100 returns the exact max
        assert_eq!(h.percentile(100.0), 1e9);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::for_seconds();
        let mut b = Histogram::for_seconds();
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [4.0, 8.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 8.0);
        assert_eq!(a.min(), 1.0);
        let median = a.percentile(50.0);
        assert!((1.8..=4.3).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = Histogram::new(1.0, 2.0, 4);
        let b = Histogram::new(1.0, 2.0, 8);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_min_rejected() {
        Histogram::new(0.0, 2.0, 4);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut h = Histogram::for_seconds();
        for v in [0.0001, 0.5, 1.0, 2.0, 100.0, 1e9, f64::NAN] {
            h.record(v);
        }
        let val = h.to_val();
        let back = Histogram::from_val(&val).unwrap();
        assert_eq!(back, h);
        // An empty histogram (infinite extrema) round-trips too.
        let empty = Histogram::for_seconds();
        assert_eq!(Histogram::from_val(&empty.to_val()).unwrap(), empty);
    }
}
