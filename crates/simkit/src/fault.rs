//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a reproducible timeline of infrastructure faults
//! — node crashes and recoveries, telemetry blackout windows, counter
//! corruption windows, and *performance* faults (straggler nodes,
//! fabric-contention storms, crash/repair flap bursts) — generated up front
//! from a [`FaultConfig`] and a seed. Schedules are pure functions of
//! `(config, node_count)`: two schedules built from the same inputs are
//! identical event for event, which is what lets a faulty simulation stay a
//! deterministic function of its seed (the crate's core contract).
//!
//! Fail-stop faults remove capacity outright; performance faults leave the
//! capacity in place but degrade it, which is the regime the RUSH policy is
//! actually designed for. The generator knows nothing about schedulers or
//! telemetry: it emits a sorted event list and the consumer (the scheduler
//! engine) decides what a crash, blackout, or storm *means*. Node
//! identities are plain `u32` indices so this module does not depend on any
//! topology type.
//!
//! Hand-built timelines (tests, chaos scenarios) go through
//! [`FaultSchedule::from_events`], which rejects malformed schedules —
//! out-of-range nodes, recoveries without failures, overlapping windows —
//! with a typed [`FaultScheduleError`] instead of leaving the consumer to
//! hit a silent no-op or panic at sim time.

use crate::rng::RngStreams;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;

/// What kind of fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node crashes: running work on it dies, placement must avoid it.
    NodeDown(u32),
    /// The node finishes repair and may re-enter service (possibly via a
    /// probation period — the consumer's choice).
    NodeUp(u32),
    /// Telemetry collection goes dark machine-wide.
    BlackoutStart,
    /// Telemetry collection resumes.
    BlackoutEnd,
    /// Counter samples start being corrupted with the configured
    /// probability.
    CorruptionStart,
    /// Counter corruption subsides.
    CorruptionEnd,
    /// The node becomes a straggler: it stays in service but everything on
    /// it runs at `factor_milli / 1000` of nominal speed until the matching
    /// [`FaultKind::NodeRestore`]. Factors are integer milli-units so the
    /// kind stays `Copy + Eq` and round-trips snapshots exactly.
    NodeDegrade {
        /// The straggler node.
        node: u32,
        /// Speed factor in milli-units, in `(0, 1000]`.
        factor_milli: u32,
    },
    /// The straggler recovers its nominal speed.
    NodeRestore(u32),
    /// Injected fabric contention: `intensity_milli / 1000` extra
    /// utilization on one region's (pod's) fabric links until the matching
    /// [`FaultKind::StormEnd`].
    CongestionStorm {
        /// Region (pod) index the storm hits.
        region: u32,
        /// Added link utilization in milli-units.
        intensity_milli: u32,
    },
    /// The contention storm subsides.
    StormEnd {
        /// Region (pod) index the storm leaves.
        region: u32,
    },
    /// The node starts a crash/repair flap burst: down now, back up half a
    /// `period` later, the whole cycle repeated `count` times `period`
    /// apart. Flaps stress requeue/backoff and reservation bookkeeping in a
    /// way isolated crashes do not.
    NodeFlap {
        /// The flapping node.
        node: u32,
        /// Length of one down/up cycle.
        period: SimDuration,
        /// Remaining cycles, at least 1.
        count: u32,
    },
}

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters of the fault processes. All processes are optional; the
/// default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault timeline (independent of every other stream).
    pub seed: u64,
    /// Faults are generated on `[0, horizon)`; recoveries/window ends may
    /// land past the horizon so every Down has its Up and every Start its
    /// End.
    pub horizon: SimDuration,
    /// Mean time between failures of one node (exponential inter-arrival).
    /// `None` disables node crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Repair time of a crashed node (fixed).
    pub node_mttr: SimDuration,
    /// Probation after repair during which a node is `Suspect`: monitored
    /// again but still quarantined from placement.
    pub suspect_probation: SimDuration,
    /// Mean time between telemetry blackouts (exponential inter-arrival).
    /// `None` disables blackouts.
    pub blackout_mtbf: Option<SimDuration>,
    /// Length of one blackout window (fixed).
    pub blackout_duration: SimDuration,
    /// Mean time between counter-corruption windows. `None` disables
    /// corruption.
    pub corruption_mtbf: Option<SimDuration>,
    /// Length of one corruption window (fixed).
    pub corruption_duration: SimDuration,
    /// Per-node-sample corruption probability inside a corruption window.
    pub corruption_prob: f64,
    /// Mean time between straggler episodes of one node. `None` disables
    /// degradation.
    pub degrade_mtbf: Option<SimDuration>,
    /// Length of one straggler episode (fixed).
    pub degrade_duration: SimDuration,
    /// Straggler speed factor in milli-units, in `(0, 1000]`.
    pub degrade_factor_milli: u32,
    /// Mean time between congestion storms. `None` disables storms.
    pub storm_mtbf: Option<SimDuration>,
    /// Length of one storm (fixed).
    pub storm_duration: SimDuration,
    /// Storm intensity: added fabric-link utilization in milli-units.
    pub storm_intensity_milli: u32,
    /// Number of regions (pods) a storm may pick from; the hit region is
    /// sampled uniformly per storm.
    pub storm_regions: u32,
    /// Mean time between flap bursts of one node. `None` disables flaps.
    pub flap_mtbf: Option<SimDuration>,
    /// Length of one down/up cycle inside a flap burst.
    pub flap_period: SimDuration,
    /// Cycles per flap burst.
    pub flap_count: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            horizon: SimDuration::from_hours(2),
            node_mtbf: None,
            node_mttr: SimDuration::from_mins(5),
            suspect_probation: SimDuration::from_mins(2),
            blackout_mtbf: None,
            blackout_duration: SimDuration::from_mins(3),
            corruption_mtbf: None,
            corruption_duration: SimDuration::from_mins(2),
            corruption_prob: 0.5,
            degrade_mtbf: None,
            degrade_duration: SimDuration::from_mins(5),
            degrade_factor_milli: 500,
            storm_mtbf: None,
            storm_duration: SimDuration::from_mins(4),
            storm_intensity_milli: 600,
            storm_regions: 1,
            flap_mtbf: None,
            flap_period: SimDuration::from_mins(2),
            flap_count: 3,
        }
    }
}

impl FaultConfig {
    /// A config that injects nothing (the default).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// True if no fault process is enabled.
    pub fn is_inert(&self) -> bool {
        self.node_mtbf.is_none()
            && self.blackout_mtbf.is_none()
            && self.corruption_mtbf.is_none()
            && self.degrade_mtbf.is_none()
            && self.storm_mtbf.is_none()
            && self.flap_mtbf.is_none()
    }
}

/// Draws an exponential inter-arrival time with the given mean.
fn exp_interval(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen::<f64>();
    // 1 - u is in (0, 1]; ln of it is finite and <= 0.
    SimDuration::from_secs_f64(-(1.0 - u).ln() * mean.as_secs_f64())
}

/// Why a fault timeline was rejected by [`FaultSchedule::from_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// An event names a node outside `0..node_count`.
    NodeOutOfRange {
        /// When the offending event fires.
        at: SimTime,
        /// The out-of-range node id.
        node: u32,
        /// The machine's node count.
        node_count: u32,
    },
    /// `NodeUp` for a node that was never taken down (or already repaired).
    UpWithoutDown {
        /// When the offending event fires.
        at: SimTime,
        /// The node the spurious recovery names.
        node: u32,
    },
    /// `NodeRestore` for a node that is not degraded at that point.
    RestoreWithoutDegrade {
        /// When the offending event fires.
        at: SimTime,
        /// The node the spurious restore names.
        node: u32,
    },
    /// A window starts while the previous one of the same kind (and, for
    /// per-node/per-region windows, the same target) is still open.
    OverlappingWindow {
        /// Which window process overlaps ("blackout", "corruption",
        /// "storm", "crash", "degrade").
        window: &'static str,
        /// When the overlapping start fires.
        at: SimTime,
    },
    /// A window end with no matching start.
    UnmatchedWindowEnd {
        /// Which window process is unbalanced.
        window: &'static str,
        /// When the unmatched end fires.
        at: SimTime,
    },
    /// A degrade factor or storm intensity outside its valid range (degrade
    /// factors must be in `(0, 1000]` milli; storm intensities non-zero).
    BadIntensity {
        /// When the offending event fires.
        at: SimTime,
        /// The rejected milli-unit value.
        milli: u32,
    },
    /// A flap with a zero period or zero cycle count.
    BadFlap {
        /// When the offending event fires.
        at: SimTime,
        /// The flapping node.
        node: u32,
    },
    /// Events are not sorted by time.
    Unsorted {
        /// Timestamp of the first event that goes backwards.
        at: SimTime,
    },
}

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultScheduleError::NodeOutOfRange {
                at,
                node,
                node_count,
            } => write!(
                f,
                "fault at t={}us names node {node} outside 0..{node_count}",
                at.as_micros()
            ),
            FaultScheduleError::UpWithoutDown { at, node } => write!(
                f,
                "NodeUp({node}) at t={}us without a preceding NodeDown",
                at.as_micros()
            ),
            FaultScheduleError::RestoreWithoutDegrade { at, node } => write!(
                f,
                "NodeRestore({node}) at t={}us without a preceding NodeDegrade",
                at.as_micros()
            ),
            FaultScheduleError::OverlappingWindow { window, at } => write!(
                f,
                "{window} window starting at t={}us overlaps the previous one",
                at.as_micros()
            ),
            FaultScheduleError::UnmatchedWindowEnd { window, at } => write!(
                f,
                "{window} window end at t={}us has no matching start",
                at.as_micros()
            ),
            FaultScheduleError::BadIntensity { at, milli } => write!(
                f,
                "fault at t={}us has out-of-range intensity {milli} milli",
                at.as_micros()
            ),
            FaultScheduleError::BadFlap { at, node } => write!(
                f,
                "NodeFlap({node}) at t={}us needs a positive period and count",
                at.as_micros()
            ),
            FaultScheduleError::Unsorted { at } => {
                write!(f, "fault timeline goes backwards at t={}us", at.as_micros())
            }
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// A reproducible, time-sorted fault timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    config: FaultConfig,
}

impl FaultSchedule {
    /// Generates the timeline for a machine of `node_count` nodes.
    ///
    /// Each fault process draws from its own named RNG stream derived from
    /// `config.seed` (per-node crash/degrade/flap processes use indexed
    /// streams), so enabling one process never perturbs another.
    pub fn generate(config: &FaultConfig, node_count: u32) -> Self {
        let streams = RngStreams::new(config.seed);
        let mut events = Vec::new();

        if let Some(mtbf) = config.node_mtbf {
            assert!(!mtbf.is_zero(), "node MTBF must be positive");
            for node in 0..node_count {
                let mut rng = streams.indexed_stream("fault/node", u64::from(node));
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_interval(&mut rng, mtbf);
                    if t.since(SimTime::ZERO) >= config.horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeDown(node),
                    });
                    t += config.node_mttr;
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeUp(node),
                    });
                }
            }
        }

        if let Some(mtbf) = config.degrade_mtbf {
            assert!(!mtbf.is_zero(), "degrade MTBF must be positive");
            assert!(
                config.degrade_factor_milli > 0 && config.degrade_factor_milli <= 1000,
                "degrade factor must be in (0, 1000] milli"
            );
            for node in 0..node_count {
                let mut rng = streams.indexed_stream("fault/degrade", u64::from(node));
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_interval(&mut rng, mtbf);
                    if t.since(SimTime::ZERO) >= config.horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeDegrade {
                            node,
                            factor_milli: config.degrade_factor_milli,
                        },
                    });
                    t += config.degrade_duration;
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeRestore(node),
                    });
                }
            }
        }

        if let Some(mtbf) = config.storm_mtbf {
            assert!(!mtbf.is_zero(), "storm MTBF must be positive");
            assert!(config.storm_intensity_milli > 0, "storm needs intensity");
            let regions = config.storm_regions.max(1);
            let mut rng = streams.stream("fault/storm");
            let mut t = SimTime::ZERO;
            // Storms are sequential windows on one stream, so two storms
            // never overlap — not even in the same region — and each
            // StormEnd unambiguously clears the injected contention.
            loop {
                t += exp_interval(&mut rng, mtbf);
                if t.since(SimTime::ZERO) >= config.horizon {
                    break;
                }
                let region = rng.gen_range(0..regions);
                events.push(FaultEvent {
                    at: t,
                    kind: FaultKind::CongestionStorm {
                        region,
                        intensity_milli: config.storm_intensity_milli,
                    },
                });
                t += config.storm_duration;
                events.push(FaultEvent {
                    at: t,
                    kind: FaultKind::StormEnd { region },
                });
            }
        }

        if let Some(mtbf) = config.flap_mtbf {
            assert!(!mtbf.is_zero(), "flap MTBF must be positive");
            assert!(
                !config.flap_period.is_zero(),
                "flap period must be positive"
            );
            assert!(config.flap_count > 0, "flap burst needs cycles");
            for node in 0..node_count {
                let mut rng = streams.indexed_stream("fault/flap", u64::from(node));
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_interval(&mut rng, mtbf);
                    if t.since(SimTime::ZERO) >= config.horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeFlap {
                            node,
                            period: config.flap_period,
                            count: config.flap_count,
                        },
                    });
                    // Skip the burst's own span so one node's bursts never
                    // interleave with themselves.
                    t += SimDuration::from_micros(
                        config.flap_period.as_micros() * u64::from(config.flap_count),
                    );
                }
            }
        }

        let windows = |mtbf: SimDuration,
                       duration: SimDuration,
                       stream: &str,
                       start: fn() -> FaultKind,
                       end: fn() -> FaultKind,
                       events: &mut Vec<FaultEvent>| {
            assert!(!mtbf.is_zero(), "window MTBF must be positive");
            let mut rng = streams.stream(stream);
            let mut t = SimTime::ZERO;
            loop {
                t += exp_interval(&mut rng, mtbf);
                if t.since(SimTime::ZERO) >= config.horizon {
                    break;
                }
                events.push(FaultEvent {
                    at: t,
                    kind: start(),
                });
                t += duration;
                events.push(FaultEvent { at: t, kind: end() });
            }
        };
        if let Some(mtbf) = config.blackout_mtbf {
            windows(
                mtbf,
                config.blackout_duration,
                "fault/blackout",
                || FaultKind::BlackoutStart,
                || FaultKind::BlackoutEnd,
                &mut events,
            );
        }
        if let Some(mtbf) = config.corruption_mtbf {
            windows(
                mtbf,
                config.corruption_duration,
                "fault/corruption",
                || FaultKind::CorruptionStart,
                || FaultKind::CorruptionEnd,
                &mut events,
            );
        }

        // Stable order: by time, ties broken by a deterministic kind/node
        // key so the schedule is identical across runs and platforms.
        events.sort_by_key(|e| (e.at, sort_key(e.kind)));
        let schedule = FaultSchedule {
            events,
            config: *config,
        };
        debug_assert_eq!(schedule.validate(node_count), Ok(()));
        schedule
    }

    /// Wraps a hand-built timeline after validating it against a machine of
    /// `node_count` nodes. This is the constructor for chaos scenarios and
    /// tests; [`FaultSchedule::generate`] always produces valid timelines.
    pub fn from_events(
        events: Vec<FaultEvent>,
        config: FaultConfig,
        node_count: u32,
    ) -> Result<Self, FaultScheduleError> {
        let schedule = FaultSchedule { events, config };
        schedule.validate(node_count)?;
        Ok(schedule)
    }

    /// Checks the timeline is sorted and internally consistent: nodes in
    /// range, every recovery/restore preceded by its failure/degrade, no
    /// overlapping windows of the same kind. Flap bursts are self-contained
    /// (the consumer expands them through its idempotent fault handler), so
    /// only their parameters are checked.
    pub fn validate(&self, node_count: u32) -> Result<(), FaultScheduleError> {
        let in_range = |at: SimTime, node: u32| {
            if node >= node_count {
                Err(FaultScheduleError::NodeOutOfRange {
                    at,
                    node,
                    node_count,
                })
            } else {
                Ok(())
            }
        };
        let mut last = SimTime::ZERO;
        let mut down = vec![false; node_count as usize];
        let mut degraded = vec![false; node_count as usize];
        let mut stormy: Vec<u32> = Vec::new();
        let mut blackout = false;
        let mut corruption = false;
        for e in &self.events {
            if e.at < last {
                return Err(FaultScheduleError::Unsorted { at: e.at });
            }
            last = e.at;
            match e.kind {
                FaultKind::NodeDown(n) => {
                    in_range(e.at, n)?;
                    if down[n as usize] {
                        return Err(FaultScheduleError::OverlappingWindow {
                            window: "crash",
                            at: e.at,
                        });
                    }
                    down[n as usize] = true;
                }
                FaultKind::NodeUp(n) => {
                    in_range(e.at, n)?;
                    if !down[n as usize] {
                        return Err(FaultScheduleError::UpWithoutDown { at: e.at, node: n });
                    }
                    down[n as usize] = false;
                }
                FaultKind::NodeDegrade { node, factor_milli } => {
                    in_range(e.at, node)?;
                    if factor_milli == 0 || factor_milli > 1000 {
                        return Err(FaultScheduleError::BadIntensity {
                            at: e.at,
                            milli: factor_milli,
                        });
                    }
                    if degraded[node as usize] {
                        return Err(FaultScheduleError::OverlappingWindow {
                            window: "degrade",
                            at: e.at,
                        });
                    }
                    degraded[node as usize] = true;
                }
                FaultKind::NodeRestore(n) => {
                    in_range(e.at, n)?;
                    if !degraded[n as usize] {
                        return Err(FaultScheduleError::RestoreWithoutDegrade {
                            at: e.at,
                            node: n,
                        });
                    }
                    degraded[n as usize] = false;
                }
                FaultKind::CongestionStorm {
                    region,
                    intensity_milli,
                } => {
                    if intensity_milli == 0 {
                        return Err(FaultScheduleError::BadIntensity {
                            at: e.at,
                            milli: intensity_milli,
                        });
                    }
                    if stormy.contains(&region) {
                        return Err(FaultScheduleError::OverlappingWindow {
                            window: "storm",
                            at: e.at,
                        });
                    }
                    stormy.push(region);
                }
                FaultKind::StormEnd { region } => match stormy.iter().position(|&r| r == region) {
                    Some(i) => {
                        stormy.remove(i);
                    }
                    None => {
                        return Err(FaultScheduleError::UnmatchedWindowEnd {
                            window: "storm",
                            at: e.at,
                        })
                    }
                },
                FaultKind::NodeFlap {
                    node,
                    period,
                    count,
                } => {
                    in_range(e.at, node)?;
                    if period.is_zero() || count == 0 {
                        return Err(FaultScheduleError::BadFlap { at: e.at, node });
                    }
                }
                FaultKind::BlackoutStart => {
                    if blackout {
                        return Err(FaultScheduleError::OverlappingWindow {
                            window: "blackout",
                            at: e.at,
                        });
                    }
                    blackout = true;
                }
                FaultKind::BlackoutEnd => {
                    if !blackout {
                        return Err(FaultScheduleError::UnmatchedWindowEnd {
                            window: "blackout",
                            at: e.at,
                        });
                    }
                    blackout = false;
                }
                FaultKind::CorruptionStart => {
                    if corruption {
                        return Err(FaultScheduleError::OverlappingWindow {
                            window: "corruption",
                            at: e.at,
                        });
                    }
                    corruption = true;
                }
                FaultKind::CorruptionEnd => {
                    if !corruption {
                        return Err(FaultScheduleError::UnmatchedWindowEnd {
                            window: "corruption",
                            at: e.at,
                        });
                    }
                    corruption = false;
                }
            }
        }
        Ok(())
    }

    /// The sorted fault timeline.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The config this schedule was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of node crashes in the timeline.
    pub fn node_failure_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeDown(_)))
            .count()
    }

    /// Number of blackout windows in the timeline.
    pub fn blackout_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::BlackoutStart))
            .count()
    }

    /// Number of straggler episodes in the timeline.
    pub fn degrade_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeDegrade { .. }))
            .count()
    }

    /// Number of congestion storms in the timeline.
    pub fn storm_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CongestionStorm { .. }))
            .count()
    }

    /// Number of flap bursts in the timeline (each expands to `count`
    /// down/up cycles at sim time).
    pub fn flap_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeFlap { .. }))
            .count()
    }
}

/// Deterministic tie-break ordering: ends/recoveries before starts at equal
/// times so a zero-length window never leaves a consumer stuck "inside" it,
/// then by node/region id.
fn sort_key(kind: FaultKind) -> (u8, u32) {
    match kind {
        FaultKind::NodeUp(n) => (0, n),
        FaultKind::NodeRestore(n) => (1, n),
        FaultKind::StormEnd { region } => (2, region),
        FaultKind::BlackoutEnd => (3, 0),
        FaultKind::CorruptionEnd => (4, 0),
        FaultKind::NodeDown(n) => (5, n),
        FaultKind::NodeDegrade { node, .. } => (6, node),
        FaultKind::NodeFlap { node, .. } => (7, node),
        FaultKind::CongestionStorm { region, .. } => (8, region),
        FaultKind::BlackoutStart => (9, 0),
        FaultKind::CorruptionStart => (10, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            horizon: SimDuration::from_hours(1),
            node_mtbf: Some(SimDuration::from_mins(20)),
            node_mttr: SimDuration::from_mins(4),
            blackout_mtbf: Some(SimDuration::from_mins(15)),
            blackout_duration: SimDuration::from_mins(3),
            corruption_mtbf: Some(SimDuration::from_mins(25)),
            corruption_duration: SimDuration::from_mins(2),
            ..FaultConfig::default()
        }
    }

    fn perf_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            horizon: SimDuration::from_hours(1),
            degrade_mtbf: Some(SimDuration::from_mins(25)),
            degrade_duration: SimDuration::from_mins(6),
            degrade_factor_milli: 400,
            storm_mtbf: Some(SimDuration::from_mins(10)),
            storm_duration: SimDuration::from_mins(4),
            storm_intensity_milli: 700,
            storm_regions: 2,
            flap_mtbf: Some(SimDuration::from_mins(30)),
            flap_period: SimDuration::from_mins(2),
            flap_count: 3,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_inert() {
        let schedule = FaultSchedule::generate(&FaultConfig::none(), 64);
        assert!(FaultConfig::none().is_inert());
        assert!(schedule.events().is_empty());
    }

    #[test]
    fn perf_processes_break_inertness() {
        let mutations: [fn(&mut FaultConfig); 3] = [
            |c| c.storm_mtbf = Some(SimDuration::from_mins(10)),
            |c| c.degrade_mtbf = Some(SimDuration::from_mins(10)),
            |c| c.flap_mtbf = Some(SimDuration::from_mins(10)),
        ];
        for mutate in mutations {
            let mut c = FaultConfig::none();
            mutate(&mut c);
            assert!(!c.is_inert());
        }
    }

    #[test]
    fn same_seed_same_timeline() {
        let a = FaultSchedule::generate(&faulty_config(9), 32);
        let b = FaultSchedule::generate(&faulty_config(9), 32);
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "an hour at these rates must fault");
    }

    #[test]
    fn perf_timeline_is_deterministic_and_validates() {
        let a = FaultSchedule::generate(&perf_config(13), 16);
        let b = FaultSchedule::generate(&perf_config(13), 16);
        assert_eq!(a.events(), b.events());
        assert!(a.degrade_count() > 0, "an hour at these rates must degrade");
        assert!(a.storm_count() > 0);
        assert!(a.flap_count() > 0);
        assert_eq!(a.validate(16), Ok(()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(&faulty_config(1), 32);
        let b = FaultSchedule::generate(&faulty_config(2), 32);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn every_down_has_its_up() {
        let schedule = FaultSchedule::generate(&faulty_config(7), 16);
        let mut down: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        for e in schedule.events() {
            match e.kind {
                FaultKind::NodeDown(n) => *down.entry(n).or_insert(0) += 1,
                FaultKind::NodeUp(n) => *down.entry(n).or_insert(0) -= 1,
                _ => {}
            }
        }
        assert!(down.values().all(|&v| v == 0), "unbalanced: {down:?}");
        assert_eq!(
            schedule.blackout_count() * 2,
            schedule
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::BlackoutStart | FaultKind::BlackoutEnd))
                .count()
        );
    }

    #[test]
    fn every_degrade_has_its_restore_and_storms_balance() {
        let schedule = FaultSchedule::generate(&perf_config(21), 16);
        let mut deg: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        let mut storms: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        for e in schedule.events() {
            match e.kind {
                FaultKind::NodeDegrade { node, .. } => *deg.entry(node).or_insert(0) += 1,
                FaultKind::NodeRestore(n) => *deg.entry(n).or_insert(0) -= 1,
                FaultKind::CongestionStorm { region, .. } => {
                    *storms.entry(region).or_insert(0) += 1
                }
                FaultKind::StormEnd { region } => *storms.entry(region).or_insert(0) -= 1,
                _ => {}
            }
        }
        assert!(deg.values().all(|&v| v == 0), "unbalanced: {deg:?}");
        assert!(storms.values().all(|&v| v == 0), "unbalanced: {storms:?}");
    }

    #[test]
    fn events_are_time_sorted() {
        let schedule = FaultSchedule::generate(&faulty_config(3), 48);
        let times: Vec<SimTime> = schedule.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn crashes_start_inside_horizon() {
        let schedule = FaultSchedule::generate(&faulty_config(5), 16);
        let horizon = SimTime::ZERO + faulty_config(5).horizon;
        for e in schedule.events() {
            if matches!(
                e.kind,
                FaultKind::NodeDown(_) | FaultKind::BlackoutStart | FaultKind::CorruptionStart
            ) {
                assert!(e.at < horizon, "fault {e:?} starts past the horizon");
            }
        }
    }

    #[test]
    fn node_processes_are_independent() {
        // Adding nodes must not change existing nodes' crash times.
        let small = FaultSchedule::generate(&faulty_config(11), 4);
        let large = FaultSchedule::generate(&faulty_config(11), 8);
        let crashes = |s: &FaultSchedule, node: u32| -> Vec<SimTime> {
            s.events()
                .iter()
                .filter(|e| e.kind == FaultKind::NodeDown(node))
                .map(|e| e.at)
                .collect()
        };
        for node in 0..4 {
            assert_eq!(crashes(&small, node), crashes(&large, node));
        }
    }

    #[test]
    fn from_events_accepts_valid_timelines() {
        let events = vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::NodeDown(2),
            },
            FaultEvent {
                at: SimTime::from_secs(20),
                kind: FaultKind::CongestionStorm {
                    region: 0,
                    intensity_milli: 500,
                },
            },
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::NodeUp(2),
            },
            FaultEvent {
                at: SimTime::from_secs(40),
                kind: FaultKind::StormEnd { region: 0 },
            },
        ];
        let s = FaultSchedule::from_events(events, FaultConfig::none(), 8).unwrap();
        assert_eq!(s.node_failure_count(), 1);
        assert_eq!(s.storm_count(), 1);
    }

    #[test]
    fn from_events_rejects_up_without_down() {
        let events = vec![FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::NodeUp(1),
        }];
        assert_eq!(
            FaultSchedule::from_events(events, FaultConfig::none(), 8),
            Err(FaultScheduleError::UpWithoutDown {
                at: SimTime::from_secs(5),
                node: 1
            })
        );
    }

    #[test]
    fn from_events_rejects_out_of_range_nodes() {
        let events = vec![FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::NodeDown(8),
        }];
        assert_eq!(
            FaultSchedule::from_events(events, FaultConfig::none(), 8),
            Err(FaultScheduleError::NodeOutOfRange {
                at: SimTime::from_secs(5),
                node: 8,
                node_count: 8
            })
        );
    }

    #[test]
    fn from_events_rejects_overlapping_windows() {
        let overlap = vec![
            FaultEvent {
                at: SimTime::from_secs(1),
                kind: FaultKind::BlackoutStart,
            },
            FaultEvent {
                at: SimTime::from_secs(2),
                kind: FaultKind::BlackoutStart,
            },
        ];
        assert_eq!(
            FaultSchedule::from_events(overlap, FaultConfig::none(), 8),
            Err(FaultScheduleError::OverlappingWindow {
                window: "blackout",
                at: SimTime::from_secs(2)
            })
        );
        let unmatched = vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::CorruptionEnd,
        }];
        assert_eq!(
            FaultSchedule::from_events(unmatched, FaultConfig::none(), 8),
            Err(FaultScheduleError::UnmatchedWindowEnd {
                window: "corruption",
                at: SimTime::from_secs(1)
            })
        );
    }

    #[test]
    fn from_events_rejects_unsorted_and_bad_params() {
        let unsorted = vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                kind: FaultKind::NodeDown(0),
            },
            FaultEvent {
                at: SimTime::from_secs(5),
                kind: FaultKind::NodeUp(0),
            },
        ];
        assert_eq!(
            FaultSchedule::from_events(unsorted, FaultConfig::none(), 8),
            Err(FaultScheduleError::Unsorted {
                at: SimTime::from_secs(5)
            })
        );
        let bad_factor = vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::NodeDegrade {
                node: 0,
                factor_milli: 1500,
            },
        }];
        assert_eq!(
            FaultSchedule::from_events(bad_factor, FaultConfig::none(), 8),
            Err(FaultScheduleError::BadIntensity {
                at: SimTime::from_secs(1),
                milli: 1500
            })
        );
        let bad_flap = vec![FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::NodeFlap {
                node: 0,
                period: SimDuration::ZERO,
                count: 3,
            },
        }];
        assert_eq!(
            FaultSchedule::from_events(bad_flap, FaultConfig::none(), 8),
            Err(FaultScheduleError::BadFlap {
                at: SimTime::from_secs(1),
                node: 0
            })
        );
    }
}
