//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a reproducible timeline of infrastructure faults
//! — node crashes and recoveries, telemetry blackout windows, and counter
//! corruption windows — generated up front from a [`FaultConfig`] and a
//! seed. Schedules are pure functions of `(config, node_count)`: two
//! schedules built from the same inputs are identical event for event,
//! which is what lets a faulty simulation stay a deterministic function of
//! its seed (the crate's core contract).
//!
//! The generator knows nothing about schedulers or telemetry: it emits a
//! sorted event list and the consumer (the scheduler engine) decides what a
//! crash or blackout *means*. Node identities are plain `u32` indices so
//! this module does not depend on any topology type.

use crate::rng::RngStreams;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// What kind of fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node crashes: running work on it dies, placement must avoid it.
    NodeDown(u32),
    /// The node finishes repair and may re-enter service (possibly via a
    /// probation period — the consumer's choice).
    NodeUp(u32),
    /// Telemetry collection goes dark machine-wide.
    BlackoutStart,
    /// Telemetry collection resumes.
    BlackoutEnd,
    /// Counter samples start being corrupted with the configured
    /// probability.
    CorruptionStart,
    /// Counter corruption subsides.
    CorruptionEnd,
}

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters of the fault processes. All processes are optional; the
/// default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault timeline (independent of every other stream).
    pub seed: u64,
    /// Faults are generated on `[0, horizon)`; recoveries/window ends may
    /// land past the horizon so every Down has its Up and every Start its
    /// End.
    pub horizon: SimDuration,
    /// Mean time between failures of one node (exponential inter-arrival).
    /// `None` disables node crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Repair time of a crashed node (fixed).
    pub node_mttr: SimDuration,
    /// Probation after repair during which a node is `Suspect`: monitored
    /// again but still quarantined from placement.
    pub suspect_probation: SimDuration,
    /// Mean time between telemetry blackouts (exponential inter-arrival).
    /// `None` disables blackouts.
    pub blackout_mtbf: Option<SimDuration>,
    /// Length of one blackout window (fixed).
    pub blackout_duration: SimDuration,
    /// Mean time between counter-corruption windows. `None` disables
    /// corruption.
    pub corruption_mtbf: Option<SimDuration>,
    /// Length of one corruption window (fixed).
    pub corruption_duration: SimDuration,
    /// Per-node-sample corruption probability inside a corruption window.
    pub corruption_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            horizon: SimDuration::from_hours(2),
            node_mtbf: None,
            node_mttr: SimDuration::from_mins(5),
            suspect_probation: SimDuration::from_mins(2),
            blackout_mtbf: None,
            blackout_duration: SimDuration::from_mins(3),
            corruption_mtbf: None,
            corruption_duration: SimDuration::from_mins(2),
            corruption_prob: 0.5,
        }
    }
}

impl FaultConfig {
    /// A config that injects nothing (the default).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// True if no fault process is enabled.
    pub fn is_inert(&self) -> bool {
        self.node_mtbf.is_none() && self.blackout_mtbf.is_none() && self.corruption_mtbf.is_none()
    }
}

/// Draws an exponential inter-arrival time with the given mean.
fn exp_interval(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen::<f64>();
    // 1 - u is in (0, 1]; ln of it is finite and <= 0.
    SimDuration::from_secs_f64(-(1.0 - u).ln() * mean.as_secs_f64())
}

/// A reproducible, time-sorted fault timeline.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    config: FaultConfig,
}

impl FaultSchedule {
    /// Generates the timeline for a machine of `node_count` nodes.
    ///
    /// Each fault process draws from its own named RNG stream derived from
    /// `config.seed` (per-node crash processes use indexed streams), so
    /// enabling one process never perturbs another.
    pub fn generate(config: &FaultConfig, node_count: u32) -> Self {
        let streams = RngStreams::new(config.seed);
        let mut events = Vec::new();

        if let Some(mtbf) = config.node_mtbf {
            assert!(!mtbf.is_zero(), "node MTBF must be positive");
            for node in 0..node_count {
                let mut rng = streams.indexed_stream("fault/node", u64::from(node));
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_interval(&mut rng, mtbf);
                    if t.since(SimTime::ZERO) >= config.horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeDown(node),
                    });
                    t += config.node_mttr;
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::NodeUp(node),
                    });
                }
            }
        }

        let windows = |mtbf: SimDuration,
                       duration: SimDuration,
                       stream: &str,
                       start: fn() -> FaultKind,
                       end: fn() -> FaultKind,
                       events: &mut Vec<FaultEvent>| {
            assert!(!mtbf.is_zero(), "window MTBF must be positive");
            let mut rng = streams.stream(stream);
            let mut t = SimTime::ZERO;
            loop {
                t += exp_interval(&mut rng, mtbf);
                if t.since(SimTime::ZERO) >= config.horizon {
                    break;
                }
                events.push(FaultEvent {
                    at: t,
                    kind: start(),
                });
                t += duration;
                events.push(FaultEvent { at: t, kind: end() });
            }
        };
        if let Some(mtbf) = config.blackout_mtbf {
            windows(
                mtbf,
                config.blackout_duration,
                "fault/blackout",
                || FaultKind::BlackoutStart,
                || FaultKind::BlackoutEnd,
                &mut events,
            );
        }
        if let Some(mtbf) = config.corruption_mtbf {
            windows(
                mtbf,
                config.corruption_duration,
                "fault/corruption",
                || FaultKind::CorruptionStart,
                || FaultKind::CorruptionEnd,
                &mut events,
            );
        }

        // Stable order: by time, ties broken by a deterministic kind/node
        // key so the schedule is identical across runs and platforms.
        events.sort_by_key(|e| (e.at, sort_key(e.kind)));
        FaultSchedule {
            events,
            config: *config,
        }
    }

    /// The sorted fault timeline.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The config this schedule was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of node crashes in the timeline.
    pub fn node_failure_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeDown(_)))
            .count()
    }

    /// Number of blackout windows in the timeline.
    pub fn blackout_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::BlackoutStart))
            .count()
    }
}

/// Deterministic tie-break ordering: ends before starts at equal times so a
/// zero-length window never leaves a consumer stuck "inside" it, then by
/// node id.
fn sort_key(kind: FaultKind) -> (u8, u32) {
    match kind {
        FaultKind::NodeUp(n) => (0, n),
        FaultKind::BlackoutEnd => (1, 0),
        FaultKind::CorruptionEnd => (2, 0),
        FaultKind::NodeDown(n) => (3, n),
        FaultKind::BlackoutStart => (4, 0),
        FaultKind::CorruptionStart => (5, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            horizon: SimDuration::from_hours(1),
            node_mtbf: Some(SimDuration::from_mins(20)),
            node_mttr: SimDuration::from_mins(4),
            blackout_mtbf: Some(SimDuration::from_mins(15)),
            blackout_duration: SimDuration::from_mins(3),
            corruption_mtbf: Some(SimDuration::from_mins(25)),
            corruption_duration: SimDuration::from_mins(2),
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_inert() {
        let schedule = FaultSchedule::generate(&FaultConfig::none(), 64);
        assert!(FaultConfig::none().is_inert());
        assert!(schedule.events().is_empty());
    }

    #[test]
    fn same_seed_same_timeline() {
        let a = FaultSchedule::generate(&faulty_config(9), 32);
        let b = FaultSchedule::generate(&faulty_config(9), 32);
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "an hour at these rates must fault");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultSchedule::generate(&faulty_config(1), 32);
        let b = FaultSchedule::generate(&faulty_config(2), 32);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn every_down_has_its_up() {
        let schedule = FaultSchedule::generate(&faulty_config(7), 16);
        let mut down: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        for e in schedule.events() {
            match e.kind {
                FaultKind::NodeDown(n) => *down.entry(n).or_insert(0) += 1,
                FaultKind::NodeUp(n) => *down.entry(n).or_insert(0) -= 1,
                _ => {}
            }
        }
        assert!(down.values().all(|&v| v == 0), "unbalanced: {down:?}");
        assert_eq!(
            schedule.blackout_count() * 2,
            schedule
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::BlackoutStart | FaultKind::BlackoutEnd))
                .count()
        );
    }

    #[test]
    fn events_are_time_sorted() {
        let schedule = FaultSchedule::generate(&faulty_config(3), 48);
        let times: Vec<SimTime> = schedule.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn crashes_start_inside_horizon() {
        let schedule = FaultSchedule::generate(&faulty_config(5), 16);
        let horizon = SimTime::ZERO + faulty_config(5).horizon;
        for e in schedule.events() {
            if matches!(
                e.kind,
                FaultKind::NodeDown(_) | FaultKind::BlackoutStart | FaultKind::CorruptionStart
            ) {
                assert!(e.at < horizon, "fault {e:?} starts past the horizon");
            }
        }
    }

    #[test]
    fn node_processes_are_independent() {
        // Adding nodes must not change existing nodes' crash times.
        let small = FaultSchedule::generate(&faulty_config(11), 4);
        let large = FaultSchedule::generate(&faulty_config(11), 8);
        let crashes = |s: &FaultSchedule, node: u32| -> Vec<SimTime> {
            s.events()
                .iter()
                .filter(|e| e.kind == FaultKind::NodeDown(node))
                .map(|e| e.at)
                .collect()
        };
        for node in 0..4 {
            assert_eq!(crashes(&small, node), crashes(&large, node));
        }
    }
}
