//! Simulation time.
//!
//! Time is represented as an integer count of microseconds since the start of
//! the simulation. Integer time keeps event ordering exact: two events
//! scheduled `1/3 s` apart by different code paths can never reorder due to
//! floating-point rounding, and a simulation replayed from the same seed
//! produces a bit-identical event trace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant in simulation time (microseconds since simulation
/// start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulation time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event may be scheduled at or after this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates a time from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * MICROS_PER_SEC)
    }

    /// Creates a time from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * MICROS_PER_SEC)
    }

    /// Creates a time from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * 86_400 * MICROS_PER_SEC)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// microsecond. Negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_to_micros(self.as_secs_f64() * factor))
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    let us = s * MICROS_PER_SEC as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1).as_micros(), 3_600_000_000);
        assert_eq!(SimDuration::from_days(1).as_secs_f64(), 86_400.0);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
    }

    #[test]
    fn fractional_seconds_round() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.000_000_4).as_micros(), 0);
        assert_eq!(SimDuration::from_secs_f64(0.000_000_6).as_micros(), 1);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(SimTime::MAX + d, SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(5).since(SimTime::from_secs(1)),
            SimDuration::from_secs(4)
        );
        assert_eq!(d - SimDuration::from_secs(20), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(15));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "t=1.250s");
        assert_eq!(SimDuration::from_millis(40).to_string(), "0.040s");
    }
}
