//! # rush-simkit
//!
//! Discrete-event simulation kernel underpinning the RUSH reproduction.
//!
//! The crate provides the small set of primitives every other crate in the
//! workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulation time with
//!   saturating arithmetic, so event ordering is exact and platform
//!   independent (no floating-point time drift).
//! * [`event::EventQueue`] — a stable priority queue of timestamped events.
//!   Ties are broken by insertion sequence, which makes every simulation run
//!   a deterministic function of its seed.
//! * [`engine::Engine`] — a minimal run loop that pops events and hands them
//!   to a handler until the queue drains or a horizon is reached.
//! * [`rng`] — named, independently seeded RNG streams so that adding a new
//!   consumer of randomness does not perturb existing draws.
//! * [`stats`] — online mean/variance, percentiles, z-scores and summary
//!   statistics used by both the workload models and the evaluation harness.
//! * [`histogram`] — O(1)-space log-bucketed histograms for latency-style
//!   distributions over long runs.
//! * [`series`] — timestamped scalar series with window queries, the storage
//!   primitive behind the telemetry store.
//! * [`snapshot`] — the versioned, CRC-guarded snapshot codec behind
//!   crash-safe checkpoint/resume.
//!
//! Everything here is deliberately free of I/O and wall-clock dependencies:
//! a simulation is a pure function `(config, seed) -> results`.
//!
//! ```
//! use rush_simkit::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs(5), "finish");
//! queue.schedule(SimTime::from_secs(1), "start");
//! let first = queue.pop().unwrap();
//! assert_eq!(first.event, "start");
//! assert_eq!(queue.now(), SimTime::from_secs(1));
//! ```

pub mod engine;
pub mod event;
pub mod fault;
pub mod histogram;
pub mod rng;
pub mod series;
pub mod snapshot;
pub mod stats;
pub mod time;

pub use engine::{Engine, EventHandler, StepOutcome};
pub use event::{EventEntry, EventQueue};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultSchedule};
pub use histogram::Histogram;
pub use rng::{CountedRng, RngStreams};
pub use series::TimeSeries;
pub use snapshot::{Restorable, Snapshot, SnapshotError, Val};
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
