//! Versioned, integer-stable snapshot codec for crash-safe checkpoint /
//! resume.
//!
//! A snapshot is a small binary envelope around a canonical JSON-like body:
//!
//! ```text
//! +------------+---------+-------------+--------------+-------------+----------+------+-------+
//! | magic (8)  | ver (4) | seed (8)    | clock_us (8) | fprint (8)  | len (8)  | body | crc(4)|
//! +------------+---------+-------------+--------------+-------------+----------+------+-------+
//! ```
//!
//! All integers are little-endian. The body is a [`Val`] tree rendered as
//! canonical text: maps keep insertion order, floats are stored as the raw
//! IEEE-754 bit pattern of an unsigned integer (never as decimal text), so
//! encoding is *integer-stable* — the same state always renders to the same
//! bytes on every platform, and a decode/encode round trip is the identity.
//! The trailing CRC-32 (IEEE) covers everything before it, which is what
//! lets a resuming process reject truncated or bit-flipped checkpoints
//! instead of resuming from garbage.
//!
//! [`Snapshot`] / [`Restorable`] are the trait pair components implement to
//! participate: `to_val` captures the component's dynamic state, `from_val`
//! rebuilds it. Stateful components whose reconstruction needs external
//! context (a config, an RNG master seed) expose inherent
//! `snapshot`/`restore` methods with the same [`Val`] currency instead.

use std::fmt;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"RUSHSNAP";

/// Current snapshot format version. Bumped on any incompatible change to
/// the envelope or to a component's body schema; decoders reject other
/// versions outright (re-checkpointing is cheap, silent misdecoding is
/// not).
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot failed to decode or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The file is shorter than its header or declared body length.
    Truncated,
    /// The trailing CRC-32 does not match the payload.
    CrcMismatch,
    /// The snapshot was taken under a different configuration than the
    /// engine it is being restored into.
    ConfigMismatch,
    /// The body parsed, but a component's schema expectation failed.
    Schema(String),
    /// The body text is not valid canonical form.
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (want {FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::CrcMismatch => write!(f, "snapshot CRC mismatch (corrupted)"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken under a different configuration")
            }
            SnapshotError::Schema(m) => write!(f, "snapshot schema error: {m}"),
            SnapshotError::Parse(m) => write!(f, "snapshot parse error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A node of the snapshot body tree.
///
/// Deliberately minimal: unsigned/signed integers, strings, lists and
/// insertion-ordered maps. Floats travel as `U64` bit patterns via
/// [`Val::from_f64`]/[`Val::as_f64`] so no decimal formatting is ever
/// involved.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// An unsigned integer (also the carrier for f64 bit patterns).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string.
    Str(String),
    /// An ordered list.
    List(Vec<Val>),
    /// An insertion-ordered map.
    Map(Vec<(String, Val)>),
}

impl Val {
    /// An empty map.
    pub fn map() -> Val {
        Val::Map(Vec::new())
    }

    /// Adds `key: value` to a map (builder style).
    ///
    /// # Panics
    /// Panics if `self` is not a map.
    pub fn with(mut self, key: &str, value: Val) -> Val {
        match &mut self {
            Val::Map(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Val::with on non-map"),
        }
        self
    }

    /// Wraps an `f64` as its IEEE-754 bit pattern.
    pub fn from_f64(x: f64) -> Val {
        Val::U64(x.to_bits())
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Result<u64, SnapshotError> {
        match *self {
            Val::U64(v) => Ok(v),
            Val::I64(v) if v >= 0 => Ok(v as u64),
            _ => Err(SnapshotError::Schema(format!("expected u64, got {self:?}"))),
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Result<i64, SnapshotError> {
        match *self {
            Val::I64(v) => Ok(v),
            Val::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
            _ => Err(SnapshotError::Schema(format!("expected i64, got {self:?}"))),
        }
    }

    /// The value as an `f64` bit pattern.
    pub fn as_f64(&self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.as_u64()?))
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, SnapshotError> {
        match self {
            Val::Str(s) => Ok(s),
            _ => Err(SnapshotError::Schema(format!(
                "expected string, got {self:?}"
            ))),
        }
    }

    /// The value as a list slice.
    pub fn as_list(&self) -> Result<&[Val], SnapshotError> {
        match self {
            Val::List(items) => Ok(items),
            _ => Err(SnapshotError::Schema(format!(
                "expected list, got {self:?}"
            ))),
        }
    }

    /// Looks up `key` in a map.
    pub fn get(&self, key: &str) -> Result<&Val, SnapshotError> {
        match self {
            Val::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| SnapshotError::Schema(format!("missing key '{key}'"))),
            _ => Err(SnapshotError::Schema(format!("expected map, got {self:?}"))),
        }
    }

    /// Map field as `u64`.
    pub fn u(&self, key: &str) -> Result<u64, SnapshotError> {
        self.get(key)?.as_u64()
    }

    /// Map field as `i64`.
    pub fn i(&self, key: &str) -> Result<i64, SnapshotError> {
        self.get(key)?.as_i64()
    }

    /// Map field as `f64` (bit pattern).
    pub fn f(&self, key: &str) -> Result<f64, SnapshotError> {
        self.get(key)?.as_f64()
    }

    /// Map field as string.
    pub fn s<'a>(&'a self, key: &str) -> Result<&'a str, SnapshotError> {
        self.get(key)?.as_str()
    }

    /// Map field as list.
    pub fn l<'a>(&'a self, key: &str) -> Result<&'a [Val], SnapshotError> {
        self.get(key)?.as_list()
    }

    /// Renders the canonical text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Val::U64(v) => {
                out.push('u');
                out.push_str(&v.to_string());
            }
            Val::I64(v) => {
                out.push('i');
                out.push_str(&v.to_string());
            }
            Val::Str(s) => render_str(s, out),
            Val::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Val::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses the canonical text form.
    pub fn parse(text: &str) -> Result<Val, SnapshotError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let val = parse_val(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(SnapshotError::Parse(format!(
                "trailing bytes at offset {pos}"
            )));
        }
        Ok(val)
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_err(pos: usize, what: &str) -> SnapshotError {
    SnapshotError::Parse(format!("{what} at offset {pos}"))
}

fn parse_val(bytes: &[u8], pos: &mut usize) -> Result<Val, SnapshotError> {
    match bytes.get(*pos) {
        Some(b'u') => {
            *pos += 1;
            Ok(Val::U64(parse_digits(bytes, pos)?))
        }
        Some(b'i') => {
            *pos += 1;
            let neg = bytes.get(*pos) == Some(&b'-');
            if neg {
                *pos += 1;
            }
            let mag = parse_digits(bytes, pos)?;
            if neg {
                if mag > i64::MIN.unsigned_abs() {
                    return Err(parse_err(*pos, "i64 underflow"));
                }
                Ok(Val::I64((mag as i64).wrapping_neg()))
            } else {
                if mag > i64::MAX as u64 {
                    return Err(parse_err(*pos, "i64 overflow"));
                }
                Ok(Val::I64(mag as i64))
            }
        }
        Some(b'"') => Ok(Val::Str(parse_str(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Val::List(items));
            }
            loop {
                items.push(parse_val(bytes, pos)?);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Val::List(items));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Val::Map(entries));
            }
            loop {
                let key = parse_str(bytes, pos)?;
                if bytes.get(*pos) != Some(&b':') {
                    return Err(parse_err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_val(bytes, pos)?;
                entries.push((key, value));
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Val::Map(entries));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or '}'")),
                }
            }
        }
        _ => Err(parse_err(*pos, "unexpected byte")),
    }
}

fn parse_digits(bytes: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let start = *pos;
    let mut value: u64 = 0;
    while let Some(&b) = bytes.get(*pos) {
        if !b.is_ascii_digit() {
            break;
        }
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(b - b'0')))
            .ok_or_else(|| parse_err(*pos, "integer overflow"))?;
        *pos += 1;
    }
    if *pos == start {
        return Err(parse_err(*pos, "expected digits"));
    }
    Ok(value)
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, SnapshotError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(parse_err(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(parse_err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| parse_err(*pos, "invalid utf-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| parse_err(*pos, "bad \\u escape"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| parse_err(*pos, "bad \\u escape"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(code.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(parse_err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

/// State capture: render this component's dynamic state as a [`Val`] tree.
pub trait Snapshot {
    /// Captures the component's dynamic state.
    fn to_val(&self) -> Val;
}

/// State restoration: rebuild a component from a captured [`Val`] tree.
pub trait Restorable: Sized {
    /// Rebuilds the component; fails with [`SnapshotError::Schema`] when the
    /// tree does not match the expected shape.
    fn from_val(v: &Val) -> Result<Self, SnapshotError>;
}

/// A decoded snapshot envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEnvelope {
    /// Format version ([`FORMAT_VERSION`] after a successful decode).
    pub version: u32,
    /// The run's master seed.
    pub master_seed: u64,
    /// Simulation clock at capture time, microseconds.
    pub sim_clock_us: u64,
    /// Fingerprint of the configuration the run was started with.
    pub fingerprint: u64,
    /// The state body.
    pub body: Val,
}

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// Encodes a snapshot envelope to bytes.
pub fn encode(master_seed: u64, sim_clock_us: u64, fingerprint: u64, body: &Val) -> Vec<u8> {
    let text = body.render();
    let mut out = Vec::with_capacity(HEADER_LEN + text.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&master_seed.to_le_bytes());
    out.extend_from_slice(&sim_clock_us.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(text.len() as u64).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and validates a snapshot envelope (magic, version, length, CRC).
pub fn decode(bytes: &[u8]) -> Result<SnapshotEnvelope, SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + 4 {
        return Err(SnapshotError::Truncated);
    }
    let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let version = le32(8);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let master_seed = le64(12);
    let sim_clock_us = le64(20);
    let fingerprint = le64(28);
    let body_len = le64(36) as usize;
    let total = HEADER_LEN
        .checked_add(body_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(SnapshotError::Truncated)?;
    if bytes.len() < total {
        return Err(SnapshotError::Truncated);
    }
    let payload = &bytes[..HEADER_LEN + body_len];
    let stored_crc = le32(HEADER_LEN + body_len);
    if crc32(payload) != stored_crc {
        return Err(SnapshotError::CrcMismatch);
    }
    let text = std::str::from_utf8(&bytes[HEADER_LEN..HEADER_LEN + body_len])
        .map_err(|_| SnapshotError::Parse("body is not utf-8".to_string()))?;
    let body = Val::parse(text)?;
    Ok(SnapshotEnvelope {
        version,
        master_seed,
        sim_clock_us,
        fingerprint,
        body,
    })
}

/// Validates a snapshot's envelope without parsing the body. Used by
/// checkpoint retention scans to find the newest *intact* file cheaply.
pub fn validate(bytes: &[u8]) -> Result<(), SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + 4 {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let body_len = u64::from_le_bytes(bytes[36..44].try_into().expect("8 bytes")) as usize;
    let total = HEADER_LEN
        .checked_add(body_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(SnapshotError::Truncated)?;
    if bytes.len() < total {
        return Err(SnapshotError::Truncated);
    }
    let payload = &bytes[..HEADER_LEN + body_len];
    let stored_crc = u32::from_le_bytes(
        bytes[HEADER_LEN + body_len..HEADER_LEN + body_len + 4]
            .try_into()
            .expect("4 bytes"),
    );
    if crc32(payload) != stored_crc {
        return Err(SnapshotError::CrcMismatch);
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a hash of a string — the configuration fingerprint primitive.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Val {
        Val::map()
            .with("clock", Val::U64(12_345))
            .with("delta", Val::I64(-7))
            .with("name", Val::Str("sched/place \"x\"\n".to_string()))
            .with(
                "items",
                Val::List(vec![Val::U64(1), Val::from_f64(0.25), Val::List(vec![])]),
            )
            .with("nested", Val::map().with("k", Val::U64(0)))
    }

    #[test]
    fn render_parse_round_trip() {
        let v = sample();
        let text = v.render();
        let back = Val::parse(&text).unwrap();
        assert_eq!(v, back);
        // Canonical: re-rendering is the identity.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn f64_bits_survive_exactly() {
        for x in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -1.0e-300] {
            let v = Val::from_f64(x);
            let text = v.render();
            let back = Val::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn map_accessors() {
        let v = sample();
        assert_eq!(v.u("clock").unwrap(), 12_345);
        assert_eq!(v.i("delta").unwrap(), -7);
        assert_eq!(v.s("name").unwrap(), "sched/place \"x\"\n");
        assert_eq!(v.l("items").unwrap().len(), 3);
        assert!(v.u("missing").is_err());
        assert!(v.get("nested").unwrap().u("k").unwrap() == 0);
    }

    #[test]
    fn envelope_round_trip() {
        let body = sample();
        let bytes = encode(0xA5, 99_000_000, 0xDEAD_BEEF, &body);
        let env = decode(&bytes).unwrap();
        assert_eq!(env.version, FORMAT_VERSION);
        assert_eq!(env.master_seed, 0xA5);
        assert_eq!(env.sim_clock_us, 99_000_000);
        assert_eq!(env.fingerprint, 0xDEAD_BEEF);
        assert_eq!(env.body, body);
        validate(&bytes).unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(1, 2, 3, &Val::map());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(SnapshotError::BadMagic));
        assert_eq!(validate(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn bad_version_detected() {
        let mut bytes = encode(1, 2, 3, &Val::map());
        bytes[8] = 0xFF;
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadVersion(_))));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(1, 2, 3, &sample());
        for cut in [0, 4, HEADER_LEN, bytes.len() - 1] {
            let r = decode(&bytes[..cut]);
            assert!(
                matches!(
                    r,
                    Err(SnapshotError::Truncated) | Err(SnapshotError::BadMagic)
                ),
                "cut at {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(7, 8, 9, &sample());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    decode(&corrupted).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint_str("abc"), fingerprint_str("abc"));
        assert_ne!(fingerprint_str("abc"), fingerprint_str("abd"));
    }

    #[test]
    fn signed_extremes_round_trip() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let val = Val::I64(v);
            assert_eq!(Val::parse(&val.render()).unwrap().as_i64().unwrap(), v);
        }
        let val = Val::U64(u64::MAX);
        assert_eq!(
            Val::parse(&val.render()).unwrap().as_u64().unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Val::parse("u1 ").is_err());
        assert!(Val::parse("[u1,]").is_err());
        assert!(Val::parse("{\"a\":}").is_err());
        assert!(Val::parse("").is_err());
    }
}
