//! Paper-matching defaults for the campaign and pipeline.

use rush_cluster::machine::MachineConfig;
use rush_simkit::snapshot::{self, Val};
use rush_simkit::time::{SimDuration, SimTime};
use rush_workloads::apps::AppId;
use serde::{Deserialize, Serialize};

/// Parameters of the data-collection campaign (Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Campaign length in days (the paper collected August 2020 – February
    /// 2021, ~180 days; 60 gives the models plenty of samples at a
    /// fraction of the compute).
    pub days: u32,
    /// Control-job submissions per application per day (paper: 2–3; we
    /// draw 2 or 3 per day uniformly).
    pub min_runs_per_day: u32,
    /// Upper bound of the daily draw.
    pub max_runs_per_day: u32,
    /// Applications to run.
    pub apps: Vec<AppId>,
    /// Nodes per control job (paper: 16 nodes / 512 cores).
    pub job_nodes: u32,
    /// Counter-aggregation window before each run (paper: 5 minutes).
    pub window: SimDuration,
    /// Sampling cadence within the window.
    pub sample_interval: SimDuration,
    /// How many machine-wide "monitor" nodes stand in for the all-nodes
    /// aggregation (statistical sample of the full machine; see DESIGN.md).
    pub monitor_nodes: u32,
    /// Simulated machine seed.
    pub seed: u64,
    /// Optional scripted storm window reproducing the Fig.-1 mid-December
    /// spike, as `(start_day, end_day)`.
    pub storm_days: Option<(u32, u32)>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            days: 60,
            min_runs_per_day: 2,
            max_runs_per_day: 3,
            apps: AppId::ALL.to_vec(),
            job_nodes: 16,
            window: SimDuration::from_mins(5),
            sample_interval: SimDuration::from_secs(30),
            monitor_nodes: 48,
            seed: 0xC0FFEE,
            storm_days: Some((35, 42)),
        }
    }
}

impl CampaignConfig {
    /// A small campaign for tests: 4 days, 3 apps.
    pub fn test_sized() -> Self {
        CampaignConfig {
            days: 4,
            apps: vec![AppId::Amg, AppId::Laghos, AppId::Lbann],
            monitor_nodes: 16,
            storm_days: Some((1, 2)),
            ..Default::default()
        }
    }

    /// The machine the campaign runs on (a Quartz-like full system).
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::quartz_like(self.seed)
    }

    /// The scripted storm window as simulation times, if any.
    pub fn storm_window(&self) -> Option<(SimTime, SimTime)> {
        self.storm_days.map(|(a, b)| {
            (
                SimTime::from_days(u64::from(a)),
                SimTime::from_days(u64::from(b)),
            )
        })
    }

    /// Total simulated duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_days(u64::from(self.days))
    }

    /// Canonical snapshot-codec encoding of the config (fixed key order,
    /// durations in microseconds, apps by name). This — not the `Debug`
    /// rendering — is what cache keys and campaign fingerprints hash, so
    /// they only change when a field's *value* changes, never when a
    /// derive's formatting does.
    pub fn to_val(&self) -> Val {
        let apps = Val::List(
            self.apps
                .iter()
                .map(|a| Val::Str(a.name().to_string()))
                .collect(),
        );
        let storm = match self.storm_days {
            Some((a, b)) => Val::List(vec![Val::U64(u64::from(a)), Val::U64(u64::from(b))]),
            None => Val::List(vec![]),
        };
        Val::map()
            .with("days", Val::U64(u64::from(self.days)))
            .with(
                "min_runs_per_day",
                Val::U64(u64::from(self.min_runs_per_day)),
            )
            .with(
                "max_runs_per_day",
                Val::U64(u64::from(self.max_runs_per_day)),
            )
            .with("apps", apps)
            .with("job_nodes", Val::U64(u64::from(self.job_nodes)))
            .with("window_us", Val::U64(self.window.as_micros()))
            .with(
                "sample_interval_us",
                Val::U64(self.sample_interval.as_micros()),
            )
            .with("monitor_nodes", Val::U64(u64::from(self.monitor_nodes)))
            .with("seed", Val::U64(self.seed))
            .with("storm_days", storm)
    }

    /// FNV-1a fingerprint of [`CampaignConfig::to_val`]'s canonical text.
    pub fn fingerprint(&self) -> u64 {
        snapshot::fingerprint_str(&self.to_val().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = CampaignConfig::default();
        assert_eq!(c.apps.len(), 7);
        assert_eq!(c.job_nodes, 16);
        assert_eq!(c.window, SimDuration::from_mins(5));
        assert!(c.min_runs_per_day <= c.max_runs_per_day);
        assert_eq!(c.min_runs_per_day, 2);
        assert_eq!(c.max_runs_per_day, 3);
    }

    #[test]
    fn storm_window_converts_days() {
        let c = CampaignConfig::default();
        let (from, to) = c.storm_window().unwrap();
        assert_eq!(from, SimTime::from_days(35));
        assert_eq!(to, SimTime::from_days(42));
        let mut no_storm = c;
        no_storm.storm_days = None;
        assert!(no_storm.storm_window().is_none());
    }

    #[test]
    fn fingerprint_tracks_values_not_rendering() {
        let base = CampaignConfig::default();
        assert_eq!(base.fingerprint(), CampaignConfig::default().fingerprint());
        let mut tweaked = CampaignConfig::default();
        tweaked.days += 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let no_storm = CampaignConfig {
            storm_days: None,
            ..CampaignConfig::default()
        };
        assert_ne!(base.fingerprint(), no_storm.fingerprint());
        // The canonical text names every field, so reordering-sensitive
        // mistakes show up as test failures here.
        let text = base.to_val().render();
        for field in ["days", "apps", "window_us", "seed", "storm_days"] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn test_sized_is_small() {
        let c = CampaignConfig::test_sized();
        assert!(c.days <= 5);
        assert!(c.apps.len() <= 3);
        assert_eq!(c.duration(), SimDuration::from_days(4));
    }
}
