//! # rush-core
//!
//! The paper's end-to-end pipeline (Fig. 2), assembled from the workspace
//! substrates:
//!
//! 1. **Collect** ([`collect`]) — the longitudinal control-job campaign:
//!    proxy applications run 2–3×/day on the simulated cluster; around each
//!    run we record the 5-minute pre-job counter window (aggregated over
//!    all monitored nodes *and* over the job-exclusive nodes), the MPI
//!    probe timings, and the observed run time.
//! 2. **Label** ([`labels`]) — per-application z-scores of run time define
//!    the binary (1.5 σ) and three-class (1.2 σ / 1.5 σ) variability
//!    labels of Section IV-A.
//! 3. **Model** ([`pipeline`]) — build the Table-I dataset, compare the
//!    four classifier families by leave-one-application-out F1 (Fig. 3),
//!    optionally run recursive feature elimination, and export the final
//!    three-class model.
//! 4. **Schedule** ([`predictor`], [`experiments`]) — the exported model
//!    drives the RUSH `Start()` decision inside the scheduler; the
//!    Table-II experiments (ADAA, ADPA, PDPA, WS, SS) compare RUSH against
//!    FCFS+EASY over repeated trials.
//!
//! [`report`] renders the figures' data as text tables for the bench
//! harness; [`config`] holds the paper-matching defaults; [`checkpoint`]
//! manages the on-disk engine snapshots behind crash-safe long campaigns
//! (atomic writes, retention, corruption fallback); [`campaign`] is the
//! artifact orchestrator that regenerates every table/figure of the
//! evaluation as a parallel, resumable DAG run.

pub mod campaign;
pub mod campaign_io;
pub mod checkpoint;
pub mod collect;
pub mod config;
pub mod experiments;
pub mod labels;
pub mod pipeline;
pub mod predictor;
pub mod replay;
pub mod report;

pub use campaign::{ArtifactNode, Dag, Manifest, NodeStatus, RunOptions, RunReport};
pub use checkpoint::CheckpointManager;
pub use collect::{run_campaign, CampaignData, ControlRun};
pub use config::CampaignConfig;
pub use experiments::{Experiment, ExperimentComparison, PolicyKind};
pub use labels::LabelScheme;
pub use pipeline::{ModelCache, Pipeline, PipelineOutput};
pub use predictor::MlPredictor;
pub use replay::{EstimatesMode, ReplaySettings, ReplaySummary};
