//! Campaign (de)serialization — the on-disk form of [`CampaignData`].
//!
//! A line-based text format (like the model codec): human-inspectable,
//! dependency-free, and exact — floats round-trip bit-for-bit through
//! Rust's shortest `Display` representation. Used by the bench harness's
//! campaign cache and by the `rush` CLI.

use crate::collect::{CampaignData, ControlRun};
use crate::config::CampaignConfig;
use rush_simkit::time::SimTime;
use rush_workloads::apps::AppId;

/// Serializes campaign data to the cache format.
pub fn encode(data: &CampaignData) -> String {
    let mut out = String::from("RUSHCAMPAIGN v1\n");
    out.push_str(&format!("runs {}\n", data.runs.len()));
    for run in &data.runs {
        out.push_str(&format!(
            "run {} {} {}\n",
            run.app.name(),
            run.start.as_micros(),
            run.runtime_secs
        ));
        push_floats(&mut out, "fall", &run.features_all);
        push_floats(&mut out, "fjob", &run.features_job);
        push_floats(&mut out, "probe", &run.probe_features);
    }
    out.push_str("end\n");
    out
}

fn push_floats(out: &mut String, tag: &str, values: &[f64]) {
    out.push_str(tag);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{v}"));
    }
    out.push('\n');
}

/// Parses the cache format; the caller's `config` is attached to the
/// result (the cache key already guaranteed it matches).
pub fn decode(text: &str, config: &CampaignConfig) -> Result<CampaignData, String> {
    let mut lines = text.lines();
    if lines.next() != Some("RUSHCAMPAIGN v1") {
        return Err("bad header".into());
    }
    let runs_line = lines.next().ok_or("missing runs count")?;
    let count: usize = runs_line
        .strip_prefix("runs ")
        .ok_or("bad runs line")?
        .parse()
        .map_err(|_| "bad runs count")?;
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        let head = lines.next().ok_or("truncated: run line")?;
        let mut parts = head.split_whitespace();
        if parts.next() != Some("run") {
            return Err("expected run line".into());
        }
        let app_name = parts.next().ok_or("missing app")?;
        let app = AppId::ALL
            .into_iter()
            .find(|a| a.name() == app_name)
            .ok_or_else(|| format!("unknown app '{app_name}'"))?;
        let start: u64 = parts
            .next()
            .ok_or("missing start")?
            .parse()
            .map_err(|_| "bad start")?;
        let runtime_secs: f64 = parts
            .next()
            .ok_or("missing runtime")?
            .parse()
            .map_err(|_| "bad runtime")?;
        let features_all = parse_floats(lines.next().ok_or("truncated: fall")?, "fall", 270)?;
        let features_job = parse_floats(lines.next().ok_or("truncated: fjob")?, "fjob", 270)?;
        let probe_vec = parse_floats(lines.next().ok_or("truncated: probe")?, "probe", 9)?;
        let mut probe_features = [0.0; 9];
        probe_features.copy_from_slice(&probe_vec);
        runs.push(ControlRun {
            app,
            start: SimTime::from_micros(start),
            runtime_secs,
            features_all,
            features_job,
            probe_features,
        });
    }
    if lines.next() != Some("end") {
        return Err("missing end marker".into());
    }
    Ok(CampaignData {
        config: config.clone(),
        runs,
    })
}

fn parse_floats(line: &str, tag: &str, expected: usize) -> Result<Vec<f64>, String> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| format!("expected '{tag}' line"))?;
    let values: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
    let values = values.map_err(|_| format!("bad float in {tag}"))?;
    if values.len() != expected {
        return Err(format!(
            "{tag}: expected {expected} values, got {}",
            values.len()
        ));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::run_campaign;

    #[test]
    fn encode_decode_round_trips() {
        let config = CampaignConfig::test_sized();
        let data = run_campaign(&config);
        let text = encode(&data);
        let back = decode(&text, &config).expect("decodes");
        assert_eq!(back, data);
    }

    #[test]
    fn corrupt_input_rejected() {
        let config = CampaignConfig::test_sized();
        assert!(decode("garbage", &config).is_err());
        assert!(decode("RUSHCAMPAIGN v1\nruns 1\nend\n", &config).is_err());
        assert!(decode("RUSHCAMPAIGN v1\nruns zero\nend\n", &config).is_err());
    }
}
