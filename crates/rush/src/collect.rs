//! The longitudinal data-collection campaign (Section III).
//!
//! Control jobs for each proxy application are submitted 2–3 times a day at
//! random times over the campaign window, on randomly placed 16-node
//! allocations of the full machine. For each run we record:
//!
//! * the **counter features**: every counter of the three tables reduced
//!   with min/max/mean over the five minutes before the run, pooled over
//!   (a) a fixed machine-wide monitor-node sample (the "all nodes" scope)
//!   and (b) the job-exclusive nodes — both variants of Section III-A;
//! * the **probe features**: the ring/AllReduce wait-time triples run
//!   "right as each job is scheduled" (Section III-C);
//! * the **run time**, integrated piecewise against the machine's evolving
//!   congestion, exactly as the scheduler's execution engine does.
//!
//! Control jobs overlap like the paper's real submissions did; their mutual
//! contention is part of the signal.

use crate::config::CampaignConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use rush_cluster::machine::{Machine, SourceId};
use rush_cluster::noise::{Regime, RegimeOverride};
use rush_cluster::placement::{NodePool, PlacementPolicy};
use rush_cluster::topology::NodeId;
use rush_simkit::event::EventQueue;
use rush_simkit::rng::RngStreams;
use rush_simkit::stats::OnlineStats;
use rush_simkit::time::{SimDuration, SimTime};
use rush_workloads::apps::AppId;
use rush_workloads::probes::{run_probes, ProbeConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One control-job record — one row of the eventual dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlRun {
    /// The application.
    pub app: AppId,
    /// When the job started.
    pub start: SimTime,
    /// Observed run time, seconds.
    pub runtime_secs: f64,
    /// The 270 counter features aggregated over the machine-wide monitor
    /// sample.
    pub features_all: Vec<f64>,
    /// The 270 counter features aggregated over the job-exclusive nodes.
    pub features_job: Vec<f64>,
    /// The 9 MPI probe features.
    pub probe_features: [f64; 9],
}

/// Everything the campaign produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignData {
    /// The configuration that produced it.
    pub config: CampaignConfig,
    /// All completed control runs, in start order.
    pub runs: Vec<ControlRun>,
}

impl CampaignData {
    /// Runs of one application, in start order.
    pub fn runs_of(&self, app: AppId) -> Vec<&ControlRun> {
        self.runs.iter().filter(|r| r.app == app).collect()
    }

    /// Per-application run-time `(mean, std)` in seconds.
    pub fn runtime_stats(&self) -> HashMap<AppId, (f64, f64)> {
        let mut out = HashMap::new();
        for app in AppId::ALL {
            let times: Vec<f64> = self
                .runs
                .iter()
                .filter(|r| r.app == app)
                .map(|r| r.runtime_secs)
                .collect();
            if times.is_empty() {
                continue;
            }
            out.insert(
                app,
                (
                    rush_simkit::stats::mean(&times),
                    rush_simkit::stats::std_dev(&times),
                ),
            );
        }
        out
    }
}

/// Accumulates one scope's counter samples into min/max/mean features.
#[derive(Debug, Clone)]
struct WindowAccum {
    stats: Vec<OnlineStats>,
}

impl WindowAccum {
    fn new() -> Self {
        WindowAccum {
            stats: vec![OnlineStats::new(); 90],
        }
    }

    fn absorb(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), 90);
        for (s, &v) in self.stats.iter_mut().zip(values) {
            s.push(v);
        }
    }

    /// The 270 features, `[min, max, mean]` per counter. Empty windows
    /// yield zeros (consistent with the telemetry aggregation).
    fn features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(270);
        for s in &self.stats {
            if s.count() == 0 {
                out.extend_from_slice(&[0.0, 0.0, 0.0]);
            } else {
                out.extend_from_slice(&[s.min(), s.max(), s.mean()]);
            }
        }
        out
    }
}

/// A scheduled control run moving through its lifecycle.
#[derive(Debug)]
struct PlannedRun {
    app: AppId,
    start: SimTime,
    nodes: Vec<NodeId>,
    all_accum: WindowAccum,
    job_accum: WindowAccum,
    probe_features: [f64; 9],
    total_work: f64,
    remaining_work: f64,
    speed: f64,
    last_update: SimTime,
    generation: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Allocate nodes for run `i` and begin its counter window.
    WindowOpen(usize),
    /// Take one window sample for run `i`.
    Sample(usize),
    /// Start run `i` (probes + launch).
    Start(usize),
    /// Finish run `i` if its generation still matches.
    Finish(usize, u64),
    /// Re-evaluate active-run speeds.
    Tick,
}

/// Executes the campaign and returns the collected data.
pub fn run_campaign(config: &CampaignConfig) -> CampaignData {
    assert!(!config.apps.is_empty(), "campaign needs applications");
    assert!(config.days > 0, "campaign needs at least one day");

    let streams = RngStreams::new(config.seed);
    let mut rng_sched = streams.stream("campaign/schedule");
    let mut rng_probe = streams.stream("campaign/probes");
    let mut rng_run = streams.stream("campaign/runs");
    let mut rng_place = streams.stream("campaign/place");

    let mut machine = Machine::new(config.machine_config());
    if let Some((from, to)) = config.storm_window() {
        machine.add_regime_override(RegimeOverride {
            from,
            to,
            regime: Regime::Storm,
        });
    }

    // Fixed machine-wide monitor sample (the "all nodes" scope).
    let node_count = machine.tree().node_count();
    let monitor_nodes: Vec<NodeId> = sample_distinct(
        &mut rng_sched,
        node_count,
        config.monitor_nodes.min(node_count) as usize,
    );

    // Schedule: per day, per app, 2–3 runs at random daytimes — but never
    // earlier than one window after t=0, so the first window is complete.
    let mut planned: Vec<(SimTime, AppId)> = Vec::new();
    for day in 0..config.days {
        for &app in &config.apps {
            let n = rng_sched.gen_range(config.min_runs_per_day..=config.max_runs_per_day);
            for _ in 0..n {
                let offset = rng_sched.gen_range(config.window.as_secs_f64()..86_400.0);
                let at = SimTime::from_days(u64::from(day)) + SimDuration::from_secs_f64(offset);
                planned.push((at, app));
            }
        }
    }
    planned.sort_by_key(|&(t, app)| (t, app.index()));

    let mut pool = NodePool::new(node_count, PlacementPolicy::Random);
    let mut runs: Vec<Option<PlannedRun>> = Vec::with_capacity(planned.len());
    let mut events: EventQueue<Ev> = EventQueue::new();
    let sample_rounds =
        (config.window.as_micros() / config.sample_interval.as_micros()).max(1) as u32;

    for (i, &(start, app)) in planned.iter().enumerate() {
        runs.push(Some(PlannedRun {
            app,
            start,
            nodes: Vec::new(),
            all_accum: WindowAccum::new(),
            job_accum: WindowAccum::new(),
            probe_features: [0.0; 9],
            total_work: 1.0,
            remaining_work: 0.0,
            speed: 1.0,
            last_update: start,
            generation: 0,
        }));
        events.schedule(start.saturating_sub(config.window), Ev::WindowOpen(i));
        events.schedule(start, Ev::Start(i));
    }

    let mut active: Vec<usize> = Vec::new();
    let mut completed: Vec<ControlRun> = Vec::new();
    let tick = SimDuration::from_secs(60);
    let probe_config = ProbeConfig::default();

    while let Some(entry) = events.pop() {
        let now = entry.time;
        match entry.event {
            Ev::WindowOpen(i) => {
                machine.advance_to(now);
                let run = runs[i].as_mut().expect("window for finished run");
                run.nodes = pool
                    .allocate(config.job_nodes as usize, &mut rng_place)
                    .expect("campaign machine large enough for control jobs");
                // First sample immediately, the rest on the interval.
                for k in 0..sample_rounds {
                    events.schedule(
                        now + SimDuration::from_micros(
                            u64::from(k) * config.sample_interval.as_micros(),
                        ),
                        Ev::Sample(i),
                    );
                }
            }
            Ev::Sample(i) => {
                machine.advance_to(now);
                if let Some(run) = runs[i].as_mut() {
                    // Job-exclusive scope.
                    let nodes = run.nodes.clone();
                    for node in nodes {
                        let values = machine.sample_counters(node);
                        run.job_accum.absorb(&values);
                    }
                    // Machine-wide monitor scope.
                    for &node in &monitor_nodes {
                        let values = machine.sample_counters(node);
                        run.all_accum.absorb(&values);
                    }
                }
            }
            Ev::Start(i) => {
                machine.advance_to(now);
                settle_active(&mut runs, &active, &machine.now());
                let run = runs[i].as_mut().expect("starting finished run");
                // Probes first (Section III-C: "right as each job is
                // scheduled").
                let probes = run_probes(&mut machine, &run.nodes, &probe_config, &mut rng_probe);
                run.probe_features = probes.features();

                let app = run.app.descriptor();
                machine.register_load(SourceId(i as u64), run.nodes.clone(), app.intensity());
                let os = machine.draw_os_noise();
                let z: f64 =
                    rng_run.gen::<f64>() + rng_run.gen::<f64>() + rng_run.gen::<f64>() - 1.5;
                let intrinsic = (app.intrinsic_noise * 2.0 * z).exp();
                run.total_work = app.base_runtime_secs * os * intrinsic;
                run.remaining_work = run.total_work;
                run.last_update = now;
                active.push(i);
                refresh_speeds(&mut runs, &active, &mut machine, &mut events, now);
                if active.len() == 1 {
                    events.schedule(now + tick, Ev::Tick);
                }
            }
            Ev::Finish(i, generation) => {
                let valid = runs[i]
                    .as_ref()
                    .map(|r| r.generation == generation)
                    .unwrap_or(false);
                if !valid {
                    continue;
                }
                machine.advance_to(now);
                let mut run = runs[i].take().expect("double finish");
                machine.remove_load(SourceId(i as u64));
                pool.release(&run.nodes);
                active.retain(|&a| a != i);
                let elapsed = now.since(run.last_update).as_secs_f64();
                run.remaining_work = (run.remaining_work - elapsed * run.speed).max(0.0);
                completed.push(ControlRun {
                    app: run.app,
                    start: run.start,
                    runtime_secs: now.since(run.start).as_secs_f64(),
                    features_all: run.all_accum.features(),
                    features_job: run.job_accum.features(),
                    probe_features: run.probe_features,
                });
                refresh_speeds(&mut runs, &active, &mut machine, &mut events, now);
            }
            Ev::Tick => {
                if active.is_empty() {
                    continue;
                }
                machine.advance_to(now);
                settle_active(&mut runs, &active, &now);
                refresh_speeds(&mut runs, &active, &mut machine, &mut events, now);
                events.schedule(now + tick, Ev::Tick);
            }
        }
    }

    completed.sort_by_key(|r| r.start);
    CampaignData {
        config: config.clone(),
        runs: completed,
    }
}

/// Settles elapsed work for all active runs at their current speeds.
fn settle_active(runs: &mut [Option<PlannedRun>], active: &[usize], now: &SimTime) {
    for &i in active {
        if let Some(run) = runs[i].as_mut() {
            let elapsed = now.since(run.last_update).as_secs_f64();
            run.remaining_work = (run.remaining_work - elapsed * run.speed).max(0.0);
            run.last_update = *now;
        }
    }
}

/// Recomputes active-run speeds from machine state and reschedules their
/// finish events.
fn refresh_speeds(
    runs: &mut [Option<PlannedRun>],
    active: &[usize],
    machine: &mut Machine,
    events: &mut EventQueue<Ev>,
    now: SimTime,
) {
    for &i in active {
        let (nodes, app) = match runs[i].as_ref() {
            Some(r) => (r.nodes.clone(), r.app),
            None => continue,
        };
        let congestion = machine.congestion(&nodes);
        let fs = machine.fs_saturation();
        let run = runs[i].as_mut().expect("active run exists");
        let progress = 1.0 - run.remaining_work / run.total_work.max(1e-9);
        let slowdown = app.descriptor().slowdown_at(progress, congestion, fs);
        run.speed = 1.0 / slowdown;
        run.generation += 1;
        let finish_in = SimDuration::from_secs_f64(run.remaining_work / run.speed);
        events.schedule(now + finish_in, Ev::Finish(i, run.generation));
    }
}

/// Draws `count` distinct node ids uniformly.
fn sample_distinct(rng: &mut SmallRng, node_count: u32, count: usize) -> Vec<NodeId> {
    use rand::seq::SliceRandom;
    let mut all: Vec<u32> = (0..node_count).collect();
    all.shuffle(rng);
    let mut chosen: Vec<NodeId> = all.into_iter().take(count).map(NodeId).collect();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> CampaignData {
        run_campaign(&CampaignConfig::test_sized())
    }

    #[test]
    fn campaign_produces_expected_run_counts() {
        let data = small_campaign();
        // 4 days × 3 apps × 2–3 runs/day = 24–36 runs
        assert!(
            (24..=36).contains(&data.runs.len()),
            "got {} runs",
            data.runs.len()
        );
        for app in &data.config.apps {
            assert!(!data.runs_of(*app).is_empty(), "{app} must have runs");
        }
    }

    #[test]
    fn features_have_table_one_shape() {
        let data = small_campaign();
        for run in &data.runs {
            assert_eq!(run.features_all.len(), 270);
            assert_eq!(run.features_job.len(), 270);
            assert!(run.features_all.iter().all(|v| v.is_finite()));
            assert!(run.features_job.iter().all(|v| v.is_finite()));
            assert!(run
                .probe_features
                .iter()
                .all(|v| v.is_finite() && *v >= 0.0));
            // min <= mean <= max for each counter triple
            for c in 0..90 {
                let (mn, mx, mean) = (
                    run.features_job[c * 3],
                    run.features_job[c * 3 + 1],
                    run.features_job[c * 3 + 2],
                );
                assert!(mn <= mean + 1e-9 && mean <= mx + 1e-9, "counter {c}");
            }
        }
    }

    #[test]
    fn runtimes_are_plausible() {
        let data = small_campaign();
        for run in &data.runs {
            let base = run.app.descriptor().base_runtime_secs;
            assert!(
                run.runtime_secs >= base * 0.9,
                "{}: {} vs base {base}",
                run.app,
                run.runtime_secs
            );
            assert!(
                run.runtime_secs <= base * 5.0,
                "{}: {} vs base {base}",
                run.app,
                run.runtime_secs
            );
        }
    }

    #[test]
    fn campaign_produces_runtime_variation() {
        let data = small_campaign();
        let stats = data.runtime_stats();
        // The storm window plus regime noise must make at least one app
        // vary by more than 2% relative std.
        let max_rel = stats.values().map(|(m, s)| s / m).fold(0.0f64, f64::max);
        assert!(max_rel > 0.02, "campaign too calm: rel std {max_rel}");
    }

    #[test]
    fn runs_are_start_ordered() {
        let data = small_campaign();
        for pair in data.runs.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&CampaignConfig::test_sized());
        let b = run_campaign(&CampaignConfig::test_sized());
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_stats_cover_campaign_apps_only() {
        let data = small_campaign();
        let stats = data.runtime_stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.contains_key(&AppId::Laghos));
        assert!(!stats.contains_key(&AppId::Kripke));
    }
}
