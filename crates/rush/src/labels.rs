//! Variability labels and dataset assembly (Sections III-D and IV-A).
//!
//! Run times are z-scored *per application* against that application's
//! campaign history; the model trains on data from all applications:
//!
//! * **Binary** (model/feature selection): label 1 ("variation") when the
//!   run time is more than 1.5 σ above the mean, else 0.
//! * **Three-class** (the deployed model): `< 1.2 σ` → no variation,
//!   `1.2–1.5 σ` → little variation, `≥ 1.5 σ` → variation.

use crate::collect::CampaignData;
use rush_ml::dataset::Dataset;
use rush_telemetry::schema::FeatureSchema;
use serde::{Deserialize, Serialize};

/// Which label scheme a dataset carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelScheme {
    /// 0 = no variation, 1 = variation (1.5 σ threshold).
    Binary,
    /// 0 = none (<1.2 σ), 1 = little (1.2–1.5 σ), 2 = variation (≥1.5 σ).
    ThreeClass,
}

impl LabelScheme {
    /// The σ thresholds of Section IV-A.
    pub const LITTLE_SIGMA: f64 = 1.2;
    /// The variation threshold.
    pub const VARIATION_SIGMA: f64 = 1.5;

    /// Maps a z-score to a label under this scheme.
    pub fn label(self, z: f64) -> u32 {
        match self {
            LabelScheme::Binary => u32::from(z > Self::VARIATION_SIGMA),
            LabelScheme::ThreeClass => {
                if z >= Self::VARIATION_SIGMA {
                    2
                } else if z >= Self::LITTLE_SIGMA {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Number of classes this scheme produces.
    pub fn n_classes(self) -> usize {
        match self {
            LabelScheme::Binary => 2,
            LabelScheme::ThreeClass => 3,
        }
    }
}

/// Which counter aggregation scope feeds the feature vector (the Fig.-3
/// "data exclusivity" comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeScope {
    /// Counters pooled over the machine-wide monitor sample.
    AllNodes,
    /// Counters pooled over the job-exclusive nodes.
    JobNodes,
}

impl NodeScope {
    /// Display label used in Fig.-3 style reports.
    pub fn label(self) -> &'static str {
        match self {
            NodeScope::AllNodes => "all-nodes",
            NodeScope::JobNodes => "job-nodes",
        }
    }
}

/// Builds the Table-I dataset from campaign data.
///
/// Features: 270 counter aggregates (scope per `scope`), 9 probe features,
/// 3 intensity one-hots = 282 columns. Labels per `scheme`; groups are
/// application indices (the unit of leave-one-application-out CV).
pub fn build_dataset(data: &CampaignData, scope: NodeScope, scheme: LabelScheme) -> Dataset {
    let schema = FeatureSchema::table_one();
    let mut dataset = Dataset::new(schema.names().to_vec());
    let stats = data.runtime_stats();

    for run in &data.runs {
        let (mean, std) = stats[&run.app];
        let z = if std <= f64::EPSILON {
            0.0
        } else {
            (run.runtime_secs - mean) / std
        };
        let counter_features = match scope {
            NodeScope::AllNodes => &run.features_all,
            NodeScope::JobNodes => &run.features_job,
        };
        let one_hot = run.app.descriptor().one_hot();
        let row = schema.assemble(counter_features, &run.probe_features, &one_hot);
        dataset.push(row, scheme.label(z), run.app.index() as u32);
    }
    debug_assert!(dataset.validate().is_ok());
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;

    #[test]
    fn binary_labels_threshold_at_one_point_five() {
        let s = LabelScheme::Binary;
        assert_eq!(s.label(0.0), 0);
        assert_eq!(s.label(1.5), 0); // strictly greater
        assert_eq!(s.label(1.51), 1);
        assert_eq!(s.label(-3.0), 0); // fast runs are not "variation"
        assert_eq!(s.n_classes(), 2);
    }

    #[test]
    fn three_class_bands() {
        let s = LabelScheme::ThreeClass;
        assert_eq!(s.label(0.5), 0);
        assert_eq!(s.label(1.19), 0);
        assert_eq!(s.label(1.2), 1);
        assert_eq!(s.label(1.49), 1);
        assert_eq!(s.label(1.5), 2);
        assert_eq!(s.label(4.0), 2);
        assert_eq!(s.n_classes(), 3);
    }

    #[test]
    fn dataset_has_table_one_shape() {
        let data = crate::collect::run_campaign(&CampaignConfig::test_sized());
        let ds = build_dataset(&data, NodeScope::JobNodes, LabelScheme::Binary);
        assert_eq!(ds.n_features(), 282);
        assert_eq!(ds.len(), data.runs.len());
        assert!(ds.validate().is_ok());
        // groups are app indices
        let groups = ds.group_ids();
        assert!(groups.len() <= 3);
        // labels are binary
        assert!(ds.labels.iter().all(|&l| l <= 1));
    }

    #[test]
    fn scopes_produce_different_features() {
        let data = crate::collect::run_campaign(&CampaignConfig::test_sized());
        let all = build_dataset(&data, NodeScope::AllNodes, LabelScheme::Binary);
        let job = build_dataset(&data, NodeScope::JobNodes, LabelScheme::Binary);
        assert_ne!(all.features, job.features, "scopes must differ");
        // but labels and groups are identical
        assert_eq!(all.labels, job.labels);
        assert_eq!(all.groups, job.groups);
    }

    #[test]
    fn one_hots_match_apps() {
        let data = crate::collect::run_campaign(&CampaignConfig::test_sized());
        let ds = build_dataset(&data, NodeScope::JobNodes, LabelScheme::ThreeClass);
        for (row, run) in ds.features.iter().zip(&data.runs) {
            let one_hot = &row[279..282];
            assert_eq!(one_hot, run.app.descriptor().one_hot());
        }
    }

    #[test]
    fn scope_labels() {
        assert_eq!(NodeScope::AllNodes.label(), "all-nodes");
        assert_eq!(NodeScope::JobNodes.label(), "job-nodes");
    }
}
