//! The ML-backed variability predictor (the paper's Python hook).
//!
//! Section V-B: when a job is about to run, "a Python script is first
//! executed that runs the ML model with the next job as input. This Python
//! script then reads the collected counter data, runs the ML models, and
//! provides its prediction." [`MlPredictor`] is that hook: it aggregates
//! the last five minutes of counters over the job's prospective nodes,
//! times the MPI probes against the current fabric, assembles the Table-I
//! feature vector, and asks the exported model for a class.

use crate::labels::LabelScheme;
use rush_cluster::topology::NodeId;
use rush_ml::model::{Classifier, ModelKind, TrainedModel};
use rush_obs::profile as obs_profile;
use rush_obs::ProfileScope;
use rush_sched::job::Job;
use rush_sched::predictor::{PredictError, PredictorCtx, VariabilityClass, VariabilityPredictor};
use rush_simkit::time::SimDuration;
use rush_telemetry::aggregate::{aggregate_counters, flatten_features};
use rush_telemetry::schema::FeatureSchema;
use rush_workloads::probes::{run_probes, ProbeConfig};

/// A trained model wired into the scheduler's `Start()` decision.
pub struct MlPredictor {
    model: TrainedModel,
    scheme: LabelScheme,
    schema: FeatureSchema,
    /// RFE-selected feature columns, if feature selection ran.
    kept: Option<Vec<usize>>,
    /// Counter aggregation window (paper: 5 minutes).
    window: SimDuration,
    probe_config: ProbeConfig,
    calls: u64,
}

impl MlPredictor {
    /// Wraps a trained model. `kept` must match the feature set the model
    /// was trained on (`None` = all 282 features).
    pub fn new(model: TrainedModel, scheme: LabelScheme, kept: Option<Vec<usize>>) -> Self {
        let schema = FeatureSchema::table_one();
        let expected = kept.as_ref().map(Vec::len).unwrap_or(schema.len());
        assert_eq!(
            model.n_features(),
            expected,
            "model expects {} features but the predictor will assemble {expected}",
            model.n_features()
        );
        MlPredictor {
            model,
            scheme,
            schema,
            kept,
            window: SimDuration::from_mins(5),
            probe_config: ProbeConfig::default(),
            calls: 0,
        }
    }

    /// Overrides the aggregation window (ablation studies).
    pub fn with_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        self.window = window;
        self
    }

    /// Number of predictions served.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Assembles the feature row for a decision (public for tests and the
    /// bench harness).
    pub fn assemble_features(
        &self,
        job: &Job,
        nodes: &[NodeId],
        ctx: &mut PredictorCtx<'_>,
    ) -> Vec<f64> {
        let _scope = obs_profile::scope(ProfileScope::Featurize);
        let from = ctx.now.saturating_sub(self.window);
        let aggs = aggregate_counters(ctx.store, nodes, from, ctx.now);
        let counter_features = flatten_features(&aggs);
        let probes = run_probes(ctx.machine, nodes, &self.probe_config, ctx.rng);
        let one_hot = job.app.descriptor().one_hot();
        let row = self
            .schema
            .assemble(&counter_features, &probes.features(), &one_hot);
        match &self.kept {
            Some(kept) => kept.iter().map(|&i| row[i]).collect(),
            None => row,
        }
    }
}

/// The scheduler service's bridge to the real ML stack: Table-I feature
/// assembly through [`MlPredictor`], window retraining through
/// [`rush_ml::online::retrain_window`], and the `RUSHMODEL v1` text codec
/// as the portable artifact format. The scheduler engine only ever sees
/// feature rows and artifact strings, which is what lets the service's
/// snapshot carry its models as plain text.
pub struct OnlineMlHost {
    /// Used solely for feature assembly (its embedded model never predicts
    /// here; live/candidate classification goes through loaded artifacts).
    assembler: MlPredictor,
    scheme: LabelScheme,
    kind: ModelKind,
    names: Vec<String>,
}

impl OnlineMlHost {
    /// Builds a host that retrains `kind` models under `scheme`.
    /// `assembly_model` only anchors the feature-width assertion — pass the
    /// initial live model.
    pub fn new(assembly_model: TrainedModel, scheme: LabelScheme, kind: ModelKind) -> Self {
        let names = FeatureSchema::table_one().names().to_vec();
        OnlineMlHost {
            assembler: MlPredictor::new(assembly_model, scheme, None),
            scheme,
            kind,
            names,
        }
    }

    /// Overrides the counter-aggregation window (must match the predictor's).
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.assembler = self.assembler.with_window(window);
        self
    }
}

/// A decoded artifact wrapped for the service: pure row classification
/// under the host's label scheme.
struct OnlineLoadedModel {
    model: TrainedModel,
    scheme: LabelScheme,
}

impl rush_sched::service::LoadedModel for OnlineLoadedModel {
    fn classify(&self, row: &[f64]) -> VariabilityClass {
        let label = self.model.predict(row);
        match self.scheme {
            LabelScheme::Binary => {
                if label == 1 {
                    VariabilityClass::Variation
                } else {
                    VariabilityClass::NoVariation
                }
            }
            LabelScheme::ThreeClass => VariabilityClass::from_index(label),
        }
    }
}

impl rush_sched::service::OnlineModelHost for OnlineMlHost {
    fn assemble(
        &mut self,
        job: &Job,
        nodes: &[NodeId],
        ctx: &mut PredictorCtx<'_>,
    ) -> Result<Vec<f64>, PredictError> {
        let row = self.assembler.assemble_features(job, nodes, ctx);
        if let Some(bad) = row.iter().position(|v| !v.is_finite()) {
            return Err(PredictError::ModelFailure(format!(
                "non-finite feature at column {bad}"
            )));
        }
        Ok(row)
    }

    fn train(
        &mut self,
        samples: &[rush_sched::service::LabeledSample],
        seed: u64,
    ) -> Result<String, String> {
        let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.row.clone()).collect();
        // Window labels are three-class; binary models collapse them the
        // same way the offline pipeline does (≥ variation ⇒ 1).
        let labels: Vec<u32> = samples
            .iter()
            .map(|s| match self.scheme {
                LabelScheme::Binary => u32::from(s.label >= 2),
                LabelScheme::ThreeClass => s.label,
            })
            .collect();
        let groups: Vec<u32> = samples.iter().map(|s| s.app).collect();
        let model =
            rush_ml::online::retrain_window(&self.names, &rows, &labels, &groups, self.kind, seed)?;
        Ok(rush_ml::codec::encode(&model))
    }

    fn load(&self, artifact: &str) -> Result<Box<dyn rush_sched::service::LoadedModel>, String> {
        let model = rush_ml::codec::decode(artifact).map_err(|e| e.to_string())?;
        Ok(Box::new(OnlineLoadedModel {
            model,
            scheme: self.scheme,
        }))
    }

    fn name(&self) -> &str {
        "rush-ml-online"
    }
}

impl VariabilityPredictor for MlPredictor {
    fn predict(
        &mut self,
        job: &Job,
        nodes: &[NodeId],
        ctx: &mut PredictorCtx<'_>,
    ) -> Result<VariabilityClass, PredictError> {
        self.calls += 1;
        let row = self.assemble_features(job, nodes, ctx);
        // Corrupted or hollow telemetry windows surface as non-finite
        // aggregates; refuse to classify garbage rather than emitting an
        // arbitrary class. The engine falls back to plain EASY.
        if let Some(bad) = row.iter().position(|v| !v.is_finite()) {
            return Err(PredictError::ModelFailure(format!(
                "non-finite feature at column {bad}"
            )));
        }
        let label = self.model.predict(&row);
        Ok(match self.scheme {
            LabelScheme::Binary => {
                if label == 1 {
                    VariabilityClass::Variation
                } else {
                    VariabilityClass::NoVariation
                }
            }
            LabelScheme::ThreeClass => VariabilityClass::from_index(label),
        })
    }

    fn name(&self) -> &str {
        "rush-ml"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_cluster::machine::{Machine, MachineConfig};
    use rush_ml::dataset::Dataset;
    use rush_ml::model::ModelKind;
    use rush_sched::job::JobId;
    use rush_simkit::rng::CountedRng;
    use rush_simkit::time::SimTime;
    use rush_telemetry::store::MetricStore;
    use rush_workloads::apps::AppId;
    use rush_workloads::scaling::ScalingMode;

    /// Trains a trivial 282-feature model whose decision follows feature 0.
    fn toy_model(n_classes: u32) -> TrainedModel {
        let schema = FeatureSchema::table_one();
        let mut d = Dataset::new(schema.names().to_vec());
        for i in 0..60 {
            let mut row = vec![0.0; 282];
            row[0] = i as f64;
            let label = (i / (60 / n_classes as usize)) as u32;
            d.push(row, label.min(n_classes - 1), 0);
        }
        ModelKind::DecisionForest.train(&d, 3)
    }

    fn job() -> Job {
        Job {
            id: JobId(0),
            app: AppId::Laghos,
            nodes_requested: 4,
            submit_at: SimTime::ZERO,
            scaling: ScalingMode::Reference,
            est_runtime: SimDuration::from_secs(100),
            skip_threshold: 10,
        }
    }

    #[test]
    fn assembles_282_features() {
        let model = toy_model(2);
        let predictor = MlPredictor::new(model, LabelScheme::Binary, None);
        let mut machine = Machine::new(MachineConfig::tiny(1));
        let store = MetricStore::new(16, 90);
        let mut rng = CountedRng::seeded(1);
        let mut ctx = PredictorCtx {
            machine: &mut machine,
            store: &store,
            now: SimTime::from_mins(10),
            rng: &mut rng,
        };
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let row = predictor.assemble_features(&job(), &nodes, &mut ctx);
        assert_eq!(row.len(), 282);
        // one-hot for laghos = network intensive
        assert_eq!(&row[279..282], &[0.0, 1.0, 0.0]);
        // probe features are positive
        assert!(row[270..279].iter().all(|&v| v > 0.0));
    }

    #[test]
    fn predicts_and_counts_calls() {
        let model = toy_model(2);
        let mut predictor = MlPredictor::new(model, LabelScheme::Binary, None);
        let mut machine = Machine::new(MachineConfig::tiny(2));
        let store = MetricStore::new(16, 90);
        let mut rng = CountedRng::seeded(2);
        let mut ctx = PredictorCtx {
            machine: &mut machine,
            store: &store,
            now: SimTime::from_mins(10),
            rng: &mut rng,
        };
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let class = predictor.predict(&job(), &nodes, &mut ctx);
        // idle machine, feature 0 ~ 0 -> class 0 -> no variation
        assert_eq!(class, Ok(VariabilityClass::NoVariation));
        assert_eq!(predictor.calls(), 1);
        assert_eq!(predictor.name(), "rush-ml");
    }

    #[test]
    fn three_class_scheme_maps_directly() {
        let model = toy_model(3);
        let mut predictor = MlPredictor::new(model, LabelScheme::ThreeClass, None);
        let mut machine = Machine::new(MachineConfig::tiny(3));
        let store = MetricStore::new(16, 90);
        let mut rng = CountedRng::seeded(3);
        let mut ctx = PredictorCtx {
            machine: &mut machine,
            store: &store,
            now: SimTime::from_mins(10),
            rng: &mut rng,
        };
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        // feature 0 near zero -> class 0
        assert_eq!(
            predictor.predict(&job(), &nodes, &mut ctx),
            Ok(VariabilityClass::NoVariation)
        );
    }

    #[test]
    fn kept_features_subset_the_row() {
        // model trained on 2 features; predictor selects columns 0 and 281
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..20 {
            d.push(vec![i as f64, 0.0], u32::from(i >= 10), 0);
        }
        let model = ModelKind::DecisionForest.train(&d, 1);
        let predictor = MlPredictor::new(model, LabelScheme::Binary, Some(vec![0, 281]));
        let mut machine = Machine::new(MachineConfig::tiny(4));
        let store = MetricStore::new(16, 90);
        let mut rng = CountedRng::seeded(4);
        let mut ctx = PredictorCtx {
            machine: &mut machine,
            store: &store,
            now: SimTime::from_mins(10),
            rng: &mut rng,
        };
        let nodes = vec![NodeId(0)];
        let row = predictor.assemble_features(&job(), &nodes, &mut ctx);
        assert_eq!(row.len(), 2);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn width_mismatch_rejected() {
        // 2-feature model with no kept subset: must panic at construction.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(vec![i as f64, 0.0], u32::from(i >= 5), 0);
        }
        let model = ModelKind::Knn.train(&d, 1);
        MlPredictor::new(model, LabelScheme::Binary, None);
    }
}
