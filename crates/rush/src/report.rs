//! Text rendering of experiment results — the harness's figure output.
//!
//! The bench binaries print each figure/table as an aligned text table plus
//! a CSV block, so results can be eyeballed in the terminal and parsed by
//! tooling.

use crate::experiments::ExperimentComparison;
use rush_sched::metrics::percent_improvement;
use rush_workloads::apps::AppId;
use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the width doesn't match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim the trailing pad of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting — callers keep cells simple).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Renders the Fig.-5/4 style per-app variation-count comparison.
pub fn variation_table(comparison: &ExperimentComparison) -> TextTable {
    let mut table = TextTable::new([
        "app",
        "fcfs_easy_mean_variation_runs",
        "rush_mean_variation_runs",
    ]);
    for app in AppId::ALL {
        let mean_for = |outcomes: &[crate::experiments::TrialOutcome]| -> Option<f64> {
            let vals: Vec<f64> = outcomes
                .iter()
                .filter_map(|t| t.metrics.app(app).map(|m| m.variation_runs as f64))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        if let (Some(f), Some(r)) = (mean_for(&comparison.fcfs), mean_for(&comparison.rush)) {
            table.row([app.name().to_string(), fmt(f, 2), fmt(r, 2)]);
        }
    }
    table
}

/// Renders the Fig.-6/7 style per-app run-time distribution comparison.
pub fn runtime_table(comparison: &ExperimentComparison) -> TextTable {
    let mut table = TextTable::new([
        "app", "policy", "min_s", "p25_s", "median_s", "p75_s", "max_s",
    ]);
    for app in AppId::ALL {
        for (label, outcomes) in [("FCFS+EASY", &comparison.fcfs), ("RUSH", &comparison.rush)] {
            // Pool run times across trials.
            let mut mins = Vec::new();
            let mut p25 = Vec::new();
            let mut med = Vec::new();
            let mut p75 = Vec::new();
            let mut maxs: Vec<f64> = Vec::new();
            for t in outcomes.iter() {
                if let Some(m) = t.metrics.app(app) {
                    mins.push(m.runtime.min);
                    p25.push(m.runtime.p25);
                    med.push(m.runtime.p50);
                    p75.push(m.runtime.p75);
                    maxs.push(m.runtime.max);
                }
            }
            if maxs.is_empty() {
                continue;
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let max = maxs.iter().fold(0.0f64, |a, &b| a.max(b));
            table.row([
                app.name().to_string(),
                label.to_string(),
                fmt(mean(&mins), 1),
                fmt(mean(&p25), 1),
                fmt(mean(&med), 1),
                fmt(mean(&p75), 1),
                fmt(max, 1),
            ]);
        }
    }
    table
}

/// Renders the Fig.-9 style percent-improvement-in-max-run-time table.
pub fn max_runtime_improvement_table(comparison: &ExperimentComparison) -> TextTable {
    let mut table = TextTable::new(["app", "fcfs_max_s", "rush_max_s", "improvement_pct"]);
    for app in AppId::ALL {
        let max_of = |outcomes: &[crate::experiments::TrialOutcome]| -> Option<f64> {
            let vals: Vec<f64> = outcomes
                .iter()
                .filter_map(|t| t.metrics.app(app).map(|m| m.runtime.max))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().fold(0.0f64, |a, &b| a.max(b)))
            }
        };
        if let (Some(f), Some(r)) = (max_of(&comparison.fcfs), max_of(&comparison.rush)) {
            table.row([
                app.name().to_string(),
                fmt(f, 1),
                fmt(r, 1),
                fmt(percent_improvement(f, r), 2),
            ]);
        }
    }
    table
}

/// Renders the Fig.-11 style per-app mean late-wait comparison.
pub fn wait_table(comparison: &ExperimentComparison) -> TextTable {
    let mut table = TextTable::new(["app", "fcfs_mean_wait_s", "rush_mean_wait_s", "delta_s"]);
    for app in AppId::ALL {
        let wait_of = |outcomes: &[crate::experiments::TrialOutcome]| -> Option<f64> {
            let vals: Vec<f64> = outcomes
                .iter()
                .filter_map(|t| {
                    t.metrics
                        .app(app)
                        .and_then(|m| m.late_wait.as_ref())
                        .map(|w| w.mean)
                })
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        if let (Some(f), Some(r)) = (wait_of(&comparison.fcfs), wait_of(&comparison.rush)) {
            table.row([app.name().to_string(), fmt(f, 1), fmt(r, 1), fmt(r - f, 1)]);
        }
    }
    table
}

/// Renders the fault-robustness summary: per-policy means over trials of
/// injected node crashes, kill/requeue churn, jobs lost to exhausted retry
/// budgets, and predictor-fallback decisions.
pub fn robustness_table(comparison: &ExperimentComparison) -> TextTable {
    let mut table = TextTable::new([
        "policy",
        "mean_node_failures",
        "mean_requeues",
        "mean_failed_jobs",
        "mean_fallback_decisions",
    ]);
    for (label, outcomes) in [("FCFS+EASY", &comparison.fcfs), ("RUSH", &comparison.rush)] {
        if outcomes.is_empty() {
            continue;
        }
        table.row([
            label.to_string(),
            fmt(
                ExperimentComparison::mean_of(outcomes, |t| t.node_failures as f64),
                2,
            ),
            fmt(
                ExperimentComparison::mean_of(outcomes, |t| t.requeues as f64),
                2,
            ),
            fmt(
                ExperimentComparison::mean_of(outcomes, |t| t.failed_jobs as f64),
                2,
            ),
            fmt(
                ExperimentComparison::mean_of(outcomes, |t| t.fallback_decisions as f64),
                2,
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Experiment, ExperimentComparison, TrialOutcome};
    use rush_sched::job::{CompletedJob, Job, JobId};
    use rush_sched::metrics::{RuntimeReference, ScheduleMetrics};
    use rush_simkit::time::{SimDuration, SimTime};
    use rush_workloads::apps::AppId;
    use rush_workloads::scaling::ScalingMode;

    /// Builds a one-trial-per-policy comparison with controlled runtimes.
    fn synthetic_comparison(fcfs_secs: &[u64], rush_secs: &[u64]) -> ExperimentComparison {
        let completed = |secs: &[u64]| -> Vec<CompletedJob> {
            secs.iter()
                .enumerate()
                .map(|(i, &s)| {
                    let job = Job {
                        id: JobId(i as u64),
                        app: AppId::Laghos,
                        nodes_requested: 16,
                        submit_at: SimTime::from_secs(10),
                        scaling: ScalingMode::Reference,
                        est_runtime: SimDuration::from_secs(450),
                        skip_threshold: 10,
                    };
                    CompletedJob {
                        base_runtime: job.base_runtime(),
                        job,
                        start_at: SimTime::from_secs(20),
                        end_at: SimTime::from_secs(20 + s),
                        nodes: vec![],
                        skips: 0,
                        launch_prediction: None,
                    }
                })
                .collect()
        };
        let mut reference = RuntimeReference::new();
        reference.insert(AppId::Laghos, 16, ScalingMode::Reference, 300.0, 20.0);
        let outcome = |secs: &[u64]| TrialOutcome {
            trial: 0,
            metrics: ScheduleMetrics::compute(&completed(secs), &reference, SimTime::ZERO),
            total_skips: 0,
            failed_jobs: 0,
            requeues: 0,
            fallback_decisions: 0,
            node_failures: 0,
        };
        ExperimentComparison {
            experiment: Experiment::Adaa,
            fcfs: vec![outcome(fcfs_secs)],
            rush: vec![outcome(rush_secs)],
        }
    }

    #[test]
    fn variation_table_counts_threshold_crossers() {
        // reference mean 300 std 20 -> variation beyond 330s
        let c = synthetic_comparison(&[300, 340, 350], &[300, 310, 320]);
        let table = variation_table(&c);
        let csv = table.to_csv();
        assert!(csv.contains("laghos,2.00,0.00"), "{csv}");
    }

    #[test]
    fn runtime_table_has_both_policies() {
        let c = synthetic_comparison(&[280, 300, 320], &[290, 300, 310]);
        let table = runtime_table(&c);
        let text = table.render();
        assert!(text.contains("FCFS+EASY"));
        assert!(text.contains("RUSH"));
        assert_eq!(table.row_count(), 2, "one app, two policies");
    }

    #[test]
    fn improvement_table_computes_percent() {
        let c = synthetic_comparison(&[400], &[380]);
        let csv = max_runtime_improvement_table(&c).to_csv();
        // (400 - 380) / 400 = 5%
        assert!(csv.contains("laghos,400.0,380.0,5.00"), "{csv}");
    }

    #[test]
    fn wait_table_reports_delta() {
        let c = synthetic_comparison(&[300], &[300]);
        let csv = wait_table(&c).to_csv();
        // both wait 10s (submit 10, start 20): delta 0
        assert!(csv.contains("laghos,10.0,10.0,0.0"), "{csv}");
    }

    #[test]
    fn robustness_table_reports_both_policies() {
        let mut c = synthetic_comparison(&[300], &[300]);
        c.rush[0].requeues = 3;
        c.rush[0].failed_jobs = 1;
        c.rush[0].fallback_decisions = 7;
        c.rush[0].node_failures = 2;
        let csv = robustness_table(&c).to_csv();
        assert!(csv.contains("FCFS+EASY,0.00,0.00,0.00,0.00"), "{csv}");
        assert!(csv.contains("RUSH,2.00,3.00,1.00,7.00"), "{csv}");
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["app", "value"]);
        t.row(["kripke", "1.0"]);
        t.row(["a", "123456.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
        // all rows have the value column starting at the same offset
        let off = lines[2].find("1.0").unwrap();
        assert_eq!(lines[3].find("123456.0").unwrap(), off);
    }

    #[test]
    fn csv_rendering() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 1), "2.0");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
    }
}
