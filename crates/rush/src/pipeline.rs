//! The end-to-end variability-predictor pipeline (Fig. 2, left column).
//!
//! `collect → label → select model → (optional RFE) → train 3-class final
//! model → export`. The model/feature selection stage works on *binary*
//! labels (Section IV-A); the exported model is retrained with the
//! three-class labels the scheduler consumes.

use crate::collect::{run_campaign, CampaignData};
use crate::config::CampaignConfig;
use crate::labels::{build_dataset, LabelScheme, NodeScope};
use rush_ml::codec;
use rush_ml::model::{ModelKind, TrainedModel};
use rush_ml::rfe::{rfe, RfeConfig};
use rush_ml::select::{compare_models, select_best, ModelScore};
use rush_sched::metrics::RuntimeReference;
use rush_workloads::apps::AppId;
use rush_workloads::scaling::ScalingMode;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Campaign to collect (or reuse — see [`Pipeline::run_on`]).
    pub campaign: CampaignConfig,
    /// Run recursive feature elimination after model selection.
    pub feature_selection: Option<RfeConfig>,
    /// Master seed for training.
    pub seed: u64,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            campaign: CampaignConfig::default(),
            feature_selection: None,
            seed: 7,
        }
    }
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// The collected campaign.
    pub campaign: CampaignData,
    /// Fig.-3 scores, all-nodes aggregation scope.
    pub scores_all_nodes: Vec<ModelScore>,
    /// Fig.-3 scores, job-exclusive aggregation scope.
    pub scores_job_nodes: Vec<ModelScore>,
    /// The selected family (best job-scope F1).
    pub best_kind: ModelKind,
    /// RFE-selected feature columns (`None` when feature selection off).
    pub kept_features: Option<Vec<usize>>,
    /// The final three-class model (job-node scope, all campaign data).
    pub final_model: TrainedModel,
    /// The exported model text (the pickle stand-in).
    pub exported: String,
    /// Per-application run-time reference for variation accounting.
    pub reference: RuntimeReference,
}

impl Pipeline {
    /// Collects a fresh campaign and runs the full pipeline.
    pub fn run(&self) -> PipelineOutput {
        let campaign = run_campaign(&self.campaign);
        self.run_on(campaign)
    }

    /// Runs the pipeline on an already-collected campaign.
    pub fn run_on(&self, campaign: CampaignData) -> PipelineOutput {
        // Model selection on binary labels, both aggregation scopes.
        let binary_all = build_dataset(&campaign, NodeScope::AllNodes, LabelScheme::Binary);
        let binary_job = build_dataset(&campaign, NodeScope::JobNodes, LabelScheme::Binary);
        let scores_all_nodes = compare_models(&binary_all, self.seed);
        let scores_job_nodes = compare_models(&binary_job, self.seed);
        let best_kind = select_best(&scores_job_nodes);

        // Optional recursive feature elimination (binary labels, job scope).
        let kept_features = self
            .feature_selection
            .as_ref()
            .map(|cfg| rfe(best_kind, &binary_job, cfg).kept);

        // Final three-class model on the full job-scope dataset.
        let final_model = train_final(
            &campaign,
            None,
            best_kind,
            kept_features.as_deref(),
            self.seed,
        );
        let exported = codec::encode(&final_model);
        let reference = build_reference(&campaign);

        PipelineOutput {
            campaign,
            scores_all_nodes,
            scores_job_nodes,
            best_kind,
            kept_features,
            final_model,
            exported,
            reference,
        }
    }
}

/// What distinguishes one trained model from another: the campaign it was
/// trained on (by config fingerprint — `run_campaign` is deterministic),
/// the training-app restriction, the family, the label scheme, the seed.
type ModelKey = (u64, Option<Vec<u8>>, ModelKind, LabelScheme, u64);

/// A shared, thread-safe cache of trained models.
///
/// Experiment trials retrain the deployed predictor from the same campaign
/// with the same settings ([`crate::experiments::build_trial_engine`]); the
/// orchestrator runs many such artifacts concurrently. Cloning a
/// `ModelCache` shares the underlying store (`Arc`), so one training pass
/// serves every trial of every artifact in the process. Training is
/// deterministic, so a cache hit returns bit-identical models and the
/// artifact outputs don't change.
///
/// The lock is dropped during training: two threads missing the same key
/// at once both train (identical results) and the second insert wins —
/// wasted work, never wrong answers, and no lock held across a multi-second
/// train.
#[derive(Debug, Clone, Default)]
pub struct ModelCache {
    store: Arc<Mutex<HashMap<ModelKey, Arc<TrainedModel>>>>,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct models currently cached.
    pub fn len(&self) -> usize {
        self.store.lock().unwrap().len()
    }

    /// True when nothing has been trained through this cache yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`train_final_with_scheme`], memoized.
    pub fn train_with_scheme(
        &self,
        campaign: &CampaignData,
        train_apps: Option<&[AppId]>,
        kind: ModelKind,
        scheme: LabelScheme,
        seed: u64,
    ) -> Arc<TrainedModel> {
        let apps_key = train_apps.map(|apps| {
            let mut v: Vec<u8> = apps.iter().map(|a| a.index() as u8).collect();
            v.sort_unstable();
            v
        });
        let key: ModelKey = (campaign.config.fingerprint(), apps_key, kind, scheme, seed);
        if let Some(model) = self.store.lock().unwrap().get(&key) {
            return Arc::clone(model);
        }
        let model = Arc::new(train_final_with_scheme(
            campaign, train_apps, kind, scheme, seed,
        ));
        self.store
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(model)
            .clone()
    }
}

/// Trains the deployed three-class model, optionally restricted to the
/// campaign runs of `train_apps` (the PDPA experiment trains on four apps
/// only) and to an RFE-selected feature subset.
pub fn train_final(
    campaign: &CampaignData,
    train_apps: Option<&[AppId]>,
    kind: ModelKind,
    kept: Option<&[usize]>,
    seed: u64,
) -> TrainedModel {
    train_final_full(
        campaign,
        train_apps,
        kind,
        LabelScheme::ThreeClass,
        kept,
        seed,
    )
}

/// [`train_final`] with an explicit label scheme (the binary-vs-three-class
/// ablation).
pub fn train_final_with_scheme(
    campaign: &CampaignData,
    train_apps: Option<&[AppId]>,
    kind: ModelKind,
    scheme: LabelScheme,
    seed: u64,
) -> TrainedModel {
    train_final_full(campaign, train_apps, kind, scheme, None, seed)
}

fn train_final_full(
    campaign: &CampaignData,
    train_apps: Option<&[AppId]>,
    kind: ModelKind,
    scheme: LabelScheme,
    kept: Option<&[usize]>,
    seed: u64,
) -> TrainedModel {
    let _scope = rush_obs::profile::scope(rush_obs::ProfileScope::Train);
    let full = build_dataset(campaign, NodeScope::JobNodes, scheme);
    let restricted = match train_apps {
        Some(apps) => {
            let indices: Vec<usize> = full
                .groups
                .iter()
                .enumerate()
                .filter(|(_, &g)| apps.iter().any(|a| a.index() as u32 == g))
                .map(|(i, _)| i)
                .collect();
            assert!(
                !indices.is_empty(),
                "no campaign runs for the training apps"
            );
            full.subset(&indices)
        }
        None => full,
    };
    let selected = match kept {
        Some(cols) => restricted.select_features(cols),
        None => restricted,
    };
    kind.train(&selected, seed)
}

/// Builds the run-time reference from campaign statistics, extrapolated to
/// the 8/32-node classes of the WS/SS experiments by scaling with the
/// nominal run-time ratio.
pub fn build_reference(campaign: &CampaignData) -> RuntimeReference {
    let stats = campaign.runtime_stats();
    let mut reference = RuntimeReference::new();
    for app in AppId::ALL {
        let Some(&(mean16, std16)) = stats.get(&app) else {
            continue;
        };
        let base16 = app
            .descriptor()
            .base_runtime(16, ScalingMode::Reference)
            .as_secs_f64();
        for &nodes in &[8u32, 16, 32] {
            for scaling in [
                ScalingMode::Reference,
                ScalingMode::Weak,
                ScalingMode::Strong,
            ] {
                let base = app.descriptor().base_runtime(nodes, scaling).as_secs_f64();
                let ratio = base / base16;
                reference.insert(app, nodes, scaling, mean16 * ratio, std16 * ratio);
            }
        }
    }
    reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_ml::model::Classifier;

    fn small_pipeline() -> PipelineOutput {
        Pipeline {
            campaign: CampaignConfig::test_sized(),
            feature_selection: None,
            seed: 5,
        }
        .run()
    }

    #[test]
    fn pipeline_produces_all_artifacts() {
        let out = small_pipeline();
        assert_eq!(out.scores_all_nodes.len(), 4);
        assert_eq!(out.scores_job_nodes.len(), 4);
        assert!(!out.campaign.runs.is_empty());
        assert_eq!(out.final_model.n_features(), 282);
        assert!(out.final_model.n_classes() >= 2);
        assert!(out.exported.starts_with("RUSHMODEL v1"));
        assert!(!out.reference.is_empty());
    }

    #[test]
    fn exported_model_round_trips() {
        let out = small_pipeline();
        let decoded = rush_ml::codec::decode(&out.exported).expect("valid export");
        let row = vec![0.0; 282];
        assert_eq!(decoded.predict(&row), out.final_model.predict(&row));
    }

    #[test]
    fn reference_extrapolates_to_other_scales() {
        let out = small_pipeline();
        let r = &out.reference;
        use rush_workloads::apps::AppId;
        let (m16, _) = r.get(AppId::Laghos, 16, ScalingMode::Reference).unwrap();
        let (m32, _) = r.get(AppId::Laghos, 32, ScalingMode::Strong).unwrap();
        assert!(m32 < m16, "strong-scaled 32-node runs are faster");
        let (m8w, _) = r.get(AppId::Laghos, 8, ScalingMode::Weak).unwrap();
        assert!(m8w < m16, "weak-scaled 8-node runs are slightly faster");
    }

    #[test]
    fn train_final_restricts_apps() {
        let out = small_pipeline();
        // train only on laghos+lbann runs
        let model = train_final(
            &out.campaign,
            Some(&[
                rush_workloads::apps::AppId::Laghos,
                rush_workloads::apps::AppId::Lbann,
            ]),
            ModelKind::AdaBoost,
            None,
            1,
        );
        assert_eq!(model.n_features(), 282);
    }

    #[test]
    fn model_cache_trains_once_and_shares() {
        let campaign = run_campaign(&CampaignConfig::test_sized());
        let cache = ModelCache::new();
        let shared = cache.clone(); // clones share the store
        let a = cache.train_with_scheme(
            &campaign,
            None,
            ModelKind::AdaBoost,
            LabelScheme::ThreeClass,
            1,
        );
        let b = shared.train_with_scheme(
            &campaign,
            None,
            ModelKind::AdaBoost,
            LabelScheme::ThreeClass,
            1,
        );
        assert!(Arc::ptr_eq(&a, &b), "second call is a cache hit");
        assert_eq!(cache.len(), 1);
        // A cached model equals a fresh uncached train (determinism).
        let fresh = train_final_with_scheme(
            &campaign,
            None,
            ModelKind::AdaBoost,
            LabelScheme::ThreeClass,
            1,
        );
        assert_eq!(*a, fresh);
        // Different key → different entry.
        let c = cache.train_with_scheme(
            &campaign,
            None,
            ModelKind::AdaBoost,
            LabelScheme::ThreeClass,
            2,
        );
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no campaign runs")]
    fn train_final_rejects_absent_apps() {
        let out = small_pipeline();
        // kripke is not in the test-sized campaign
        train_final(
            &out.campaign,
            Some(&[rush_workloads::apps::AppId::Kripke]),
            ModelKind::AdaBoost,
            None,
            1,
        );
    }
}
