//! The Table-II scheduling experiments.
//!
//! | id   | apps                  | jobs | nodes    | model trained on |
//! |------|-----------------------|-----:|----------|------------------|
//! | ADAA | all 7                 |  190 | 16       | all apps         |
//! | ADPA | Laghos, LBANN, PENNANT|  150 | 16       | all apps         |
//! | PDPA | Laghos, LBANN, PENNANT|  150 | 16       | AMG, Kripke, sw4lite, SWFFT |
//! | WS   | all 7                 |  190 | 8/16/32  | all apps (weak scaling)  |
//! | SS   | all 7                 |  190 | 8/16/32  | all apps (strong scaling) |
//!
//! Each experiment runs inside a 512-node pod with a noise job on 1/16 of
//! the nodes, comparing FCFS+EASY against RUSH over five trials per policy
//! (Section VI-A). Trials are paired: trial *k* of both policies uses the
//! same machine seed, so they face the same noise trajectory.

use crate::collect::CampaignData;
use crate::labels::LabelScheme;
use crate::pipeline::{build_reference, ModelCache};
use crate::predictor::{MlPredictor, OnlineMlHost};
use rayon::prelude::*;
use rush_cluster::machine::{Machine, MachineConfig};
use rush_cluster::topology::NodeId;
use rush_ml::model::ModelKind;
use rush_sched::engine::{BackfillPolicy, SchedulerConfig, SchedulerEngine};
use rush_sched::metrics::{RuntimeReference, ScheduleMetrics};
use rush_sched::policy::QueueOrder;
use rush_sched::predictor::{NeverVaries, VariabilityPredictor};
use rush_sched::service::ServiceConfig;
use rush_simkit::fault::FaultConfig;
use rush_simkit::time::{SimDuration, SimTime};
use rush_workloads::apps::AppId;
use rush_workloads::jobgen::{generate_jobs, WorkloadSpec};
use rush_workloads::scaling::ScalingMode;
use serde::{Deserialize, Serialize};

/// Fraction of the reservation the noise job occupies (Section VI-A).
pub const NOISE_FRACTION: u32 = 16;
/// Per-node injection ceiling of the noise job, GB/s.
///
/// This exceeds a single NIC's injection bandwidth on purpose: a
/// saturating all-to-all builds congestion trees that throttle victim
/// flows beyond the fluid share of the noise bytes alone, and the
/// amplification is folded into the effective rate.
pub const NOISE_MAX_GBPS: f64 = 22.0;
/// Trials per policy (Section VI-A: "five with FCFS+EASY and five with
/// RUSH").
pub const TRIALS_PER_POLICY: usize = 5;

/// The five experiments of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Experiment {
    /// All Data All Apps.
    Adaa,
    /// All Data Partial Apps.
    Adpa,
    /// Partial Data Partial Apps (the generalization test).
    Pdpa,
    /// Weak Scaling.
    Ws,
    /// Strong Scaling.
    Ss,
}

impl Experiment {
    /// All experiments, in Table-II order.
    pub const ALL: [Experiment; 5] = [
        Experiment::Adaa,
        Experiment::Adpa,
        Experiment::Pdpa,
        Experiment::Ws,
        Experiment::Ss,
    ];

    /// Table-II short code.
    pub fn code(self) -> &'static str {
        match self {
            Experiment::Adaa => "ADAA",
            Experiment::Adpa => "ADPA",
            Experiment::Pdpa => "PDPA",
            Experiment::Ws => "WS",
            Experiment::Ss => "SS",
        }
    }

    /// Table-II long name.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Adaa => "All Data All Apps",
            Experiment::Adpa => "All Data Partial Apps",
            Experiment::Pdpa => "Partial Data Partial Apps",
            Experiment::Ws => "Weak Scaling",
            Experiment::Ss => "Strong Scaling",
        }
    }

    /// Applications submitted during the experiment.
    pub fn run_apps(self) -> Vec<AppId> {
        match self {
            Experiment::Adaa | Experiment::Ws | Experiment::Ss => AppId::ALL.to_vec(),
            Experiment::Adpa | Experiment::Pdpa => AppId::PARTIAL_RUN.to_vec(),
        }
    }

    /// Applications whose campaign data trains the model (`None` = all).
    pub fn train_apps(self) -> Option<Vec<AppId>> {
        match self {
            Experiment::Pdpa => Some(AppId::PARTIAL_TRAIN.to_vec()),
            _ => None,
        }
    }

    /// Jobs in the queue (Table II).
    pub fn job_count(self) -> usize {
        match self {
            Experiment::Adpa | Experiment::Pdpa => 150,
            _ => 190,
        }
    }

    /// Node counts jobs cycle through.
    pub fn node_counts(self) -> Vec<u32> {
        match self {
            Experiment::Ws | Experiment::Ss => vec![8, 16, 32],
            _ => vec![16],
        }
    }

    /// Input-deck scaling used for non-16-node jobs.
    pub fn scaling(self) -> ScalingMode {
        match self {
            Experiment::Ws => ScalingMode::Weak,
            Experiment::Ss => ScalingMode::Strong,
            _ => ScalingMode::Reference,
        }
    }

    /// The workload spec for one trial.
    pub fn workload(self) -> WorkloadSpec {
        match self {
            Experiment::Ws | Experiment::Ss => {
                WorkloadSpec::scaled(self.run_apps(), self.job_count(), self.scaling())
            }
            _ => WorkloadSpec::standard(self.run_apps(), self.job_count()),
        }
    }
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// The two scheduling policies compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The FCFS+EASY control.
    FcfsEasy,
    /// RUSH: FCFS+EASY with the model-gated `Start()`.
    Rush,
}

impl PolicyKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::FcfsEasy => "FCFS+EASY",
            PolicyKind::Rush => "RUSH",
        }
    }
}

/// One trial's evaluated outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Trial index (shared across the paired policies).
    pub trial: usize,
    /// Evaluated metrics.
    pub metrics: ScheduleMetrics,
    /// Total RUSH delays issued (0 for the baseline).
    pub total_skips: u64,
    /// Jobs that exhausted their retry budget (0 without fault injection).
    pub failed_jobs: usize,
    /// Times a killed job re-entered the queue.
    pub requeues: u64,
    /// Start decisions where degraded telemetry or a predictor error made
    /// the engine fall back to plain EASY.
    pub fallback_decisions: u64,
    /// Node crashes injected during the trial.
    pub node_failures: u64,
}

/// Both policies' trials for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentComparison {
    /// Which experiment.
    pub experiment: Experiment,
    /// Baseline trials.
    pub fcfs: Vec<TrialOutcome>,
    /// RUSH trials.
    pub rush: Vec<TrialOutcome>,
}

impl ExperimentComparison {
    /// Mean over trials of a per-trial metric.
    pub fn mean_of(outcomes: &[TrialOutcome], f: impl Fn(&TrialOutcome) -> f64) -> f64 {
        if outcomes.is_empty() {
            return 0.0;
        }
        outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
    }

    /// Mean total variation runs per policy: `(fcfs, rush)`.
    pub fn mean_variation_runs(&self) -> (f64, f64) {
        (
            Self::mean_of(&self.fcfs, |t| t.metrics.total_variation_runs as f64),
            Self::mean_of(&self.rush, |t| t.metrics.total_variation_runs as f64),
        )
    }

    /// Mean makespan seconds per policy: `(fcfs, rush)`.
    pub fn mean_makespan(&self) -> (f64, f64) {
        (
            Self::mean_of(&self.fcfs, |t| t.metrics.makespan_secs),
            Self::mean_of(&self.rush, |t| t.metrics.makespan_secs),
        )
    }
}

/// Settings for one experiment run (machine seeds, trial counts, job
/// tuning for tests).
#[derive(Debug, Clone)]
pub struct ExperimentSettings {
    /// Trials per policy.
    pub trials: usize,
    /// Base seed; trial `k` uses `base_seed + k` for its machine.
    pub base_seed: u64,
    /// Override the job count (tests use small queues).
    pub job_count_override: Option<usize>,
    /// Model family for the deployed predictor.
    pub model_kind: ModelKind,
    /// Label scheme driving the deployed model (paper: three-class).
    pub label_scheme: LabelScheme,
    /// Counter-aggregation window for the predictor (paper: 5 minutes).
    pub predictor_window: SimDuration,
    /// RUSH skip threshold (paper: 10).
    pub skip_threshold: u32,
    /// Main queue ordering policy R1 (paper: FCFS; Section IV-B claims SJF
    /// also works).
    pub r1: QueueOrder,
    /// Node placement policy (Section V-B: RUSH is mapping-agnostic).
    pub placement: rush_cluster::placement::PlacementPolicy,
    /// Backfilling discipline (paper: EASY).
    pub backfill: BackfillPolicy,
    /// Fault-injection processes (default: inert). Trial `k` offsets the
    /// fault seed by `k` so paired policies face the *same* fault timeline
    /// while distinct trials face distinct ones.
    pub faults: FaultConfig,
    /// Structured-event ring capacity. `None` (the default) leaves tracing
    /// off; `Some(cap)` makes each trial's `ScheduleResult.events` carry up
    /// to `cap` records for `--trace-out`-style exports.
    pub trace_capacity: Option<usize>,
    /// Runtime invariant auditor (default: off). Enabled by the CLI's
    /// `--audit` flag for long checkpointed campaigns.
    pub audit: rush_sched::audit::AuditConfig,
    /// Shared trained-model cache. Every Rush trial deploys a model
    /// trained from the same campaign with the same settings; the cache
    /// trains it once and hands out `Arc` clones. The default is a private
    /// empty cache; the orchestrator injects one cache across all
    /// artifacts. Training is deterministic, so caching never changes
    /// results.
    pub model_cache: ModelCache,
    /// Online predictor service knobs. Disabled by default
    /// (`retrain_every` zero = the paper's static deployment); the CLI's
    /// `--retrain-every` / `--drift-window` / `--shadow-decisions` flags
    /// enable and shape it for Rush trials.
    pub service: ServiceConfig,
    /// Seeded mid-campaign distribution shift: from this sim time onward
    /// the machine's congestion regime is pinned to Storm, which degrades
    /// the deployed model's labels and exercises drift → retrain → swap.
    pub shift_at: Option<SimTime>,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        ExperimentSettings {
            trials: TRIALS_PER_POLICY,
            base_seed: 0xE0,
            job_count_override: None,
            model_kind: ModelKind::AdaBoost,
            label_scheme: LabelScheme::ThreeClass,
            predictor_window: SimDuration::from_mins(5),
            skip_threshold: 10,
            r1: QueueOrder::Fcfs,
            placement: rush_cluster::placement::PlacementPolicy::LowestId,
            backfill: BackfillPolicy::Easy,
            faults: FaultConfig::none(),
            trace_capacity: None,
            audit: rush_sched::audit::AuditConfig::default(),
            model_cache: ModelCache::new(),
            service: ServiceConfig::default(),
            shift_at: None,
        }
    }
}

/// The 512-node experiment machine for trial `k`.
fn trial_machine(seed: u64) -> Machine {
    Machine::new(MachineConfig::experiment_pod(seed))
}

/// The noise job's nodes: the top 1/16th of the pod.
fn noise_nodes(machine: &Machine) -> Vec<NodeId> {
    let total = machine.tree().node_count();
    let count = total / NOISE_FRACTION;
    (total - count..total).map(NodeId).collect()
}

/// Builds the fully-configured engine and workload for one trial of one
/// policy **without running it**. `run_trial_raw` drives the returned pair
/// to completion in one call; the CLI's checkpoint loop instead calls
/// [`SchedulerEngine::prepare`]/[`SchedulerEngine::step`] itself so it can
/// snapshot at sim-time boundaries and resume after a crash.
pub fn build_trial_engine(
    experiment: Experiment,
    policy: PolicyKind,
    campaign: &CampaignData,
    settings: &ExperimentSettings,
    trial: usize,
) -> (SchedulerEngine, Vec<rush_workloads::jobgen::JobRequest>) {
    let seed = settings.base_seed + trial as u64;
    let machine = trial_machine(seed);
    let noise = noise_nodes(&machine);

    let mut workload = experiment.workload();
    if let Some(n) = settings.job_count_override {
        workload.total_jobs = n;
    }
    let mut job_rng = rush_simkit::rng::RngStreams::new(seed).stream("experiment/jobs");
    let requests = generate_jobs(&workload, &mut job_rng);

    // When the online service is enabled for a Rush trial, the same cached
    // model becomes the service's initial live artifact and the predictor
    // box is bypassed (consultations route through the service).
    let online = policy == PolicyKind::Rush && settings.service.enabled();
    let mut initial_artifact = None;
    let predictor: Box<dyn VariabilityPredictor> = match policy {
        PolicyKind::FcfsEasy => Box::new(NeverVaries),
        PolicyKind::Rush => {
            let model = settings.model_cache.train_with_scheme(
                campaign,
                experiment.train_apps().as_deref(),
                settings.model_kind,
                settings.label_scheme,
                settings.base_seed,
            );
            if online {
                initial_artifact = Some(rush_ml::codec::encode(&model));
            }
            Box::new(
                MlPredictor::new((*model).clone(), settings.label_scheme, None)
                    .with_window(settings.predictor_window),
            )
        }
    };

    let config = SchedulerConfig {
        // The baseline never reads counters; skip the sampling cost (and
        // widen the telemetry-quality gate to match, so the baseline's
        // NeverVaries calls don't all count as degradation fallbacks).
        sampling_interval: match policy {
            PolicyKind::FcfsEasy => SimDuration::from_days(365),
            PolicyKind::Rush => SimDuration::from_secs(30),
        },
        predictor_window: match policy {
            PolicyKind::FcfsEasy => SimDuration::from_days(365),
            PolicyKind::Rush => settings.predictor_window,
        },
        retention: match policy {
            PolicyKind::FcfsEasy => SimDuration::from_days(400),
            PolicyKind::Rush => SchedulerConfig::default().retention,
        },
        skip_threshold: settings.skip_threshold,
        r1: settings.r1,
        placement: settings.placement,
        backfill: settings.backfill,
        audit: settings.audit,
        faults: FaultConfig {
            seed: settings.faults.seed.wrapping_add(trial as u64),
            ..settings.faults
        },
        service: if online {
            settings.service
        } else {
            ServiceConfig::default()
        },
        ..SchedulerConfig::default()
    };
    let mut engine = SchedulerEngine::new(machine, config, predictor, seed)
        .with_noise_job(noise, NOISE_MAX_GBPS);
    if let Some(artifact) = initial_artifact {
        let host = OnlineMlHost::new(
            settings
                .model_cache
                .train_with_scheme(
                    campaign,
                    experiment.train_apps().as_deref(),
                    settings.model_kind,
                    settings.label_scheme,
                    settings.base_seed,
                )
                .as_ref()
                .clone(),
            settings.label_scheme,
            settings.model_kind,
        )
        .with_window(settings.predictor_window);
        engine = engine.with_online_predictor(Box::new(host), build_reference(campaign), artifact);
    }
    if let Some(at) = settings.shift_at {
        engine = engine.with_regime_shift(at, SimTime::MAX, rush_cluster::noise::Regime::Storm);
    }
    if let Some(cap) = settings.trace_capacity {
        engine = engine.with_tracing(cap);
    }
    (engine, requests)
}

/// Runs one trial of one policy, returning the raw schedule result along
/// with the evaluated outcome (the result carries the trace and per-job
/// launch predictions for deeper analyses).
pub fn run_trial_raw(
    experiment: Experiment,
    policy: PolicyKind,
    campaign: &CampaignData,
    reference: &RuntimeReference,
    settings: &ExperimentSettings,
    trial: usize,
) -> (rush_sched::engine::ScheduleResult, TrialOutcome) {
    let (mut engine, requests) = build_trial_engine(experiment, policy, campaign, settings, trial);
    let result = engine.run(&requests);
    let metrics = ScheduleMetrics::compute(&result.completed, reference, SimTime::ZERO);
    let outcome = TrialOutcome {
        trial,
        metrics,
        total_skips: result.total_skips,
        failed_jobs: result.failed.len(),
        requeues: result.requeues,
        fallback_decisions: result.fallback_decisions,
        node_failures: result.node_failures,
    };
    (result, outcome)
}

/// Runs one trial of one policy.
pub fn run_trial(
    experiment: Experiment,
    policy: PolicyKind,
    campaign: &CampaignData,
    reference: &RuntimeReference,
    settings: &ExperimentSettings,
    trial: usize,
) -> TrialOutcome {
    run_trial_raw(experiment, policy, campaign, reference, settings, trial).1
}

/// Runs the full paired comparison for one experiment; trials run in
/// parallel.
pub fn run_comparison(
    experiment: Experiment,
    campaign: &CampaignData,
    settings: &ExperimentSettings,
) -> ExperimentComparison {
    let reference = build_reference(campaign);
    let tasks: Vec<(PolicyKind, usize)> = [PolicyKind::FcfsEasy, PolicyKind::Rush]
        .into_iter()
        .flat_map(|p| (0..settings.trials).map(move |t| (p, t)))
        .collect();
    let outcomes: Vec<(PolicyKind, TrialOutcome)> = tasks
        .into_par_iter()
        .map(|(policy, trial)| {
            (
                policy,
                run_trial(experiment, policy, campaign, &reference, settings, trial),
            )
        })
        .collect();

    let mut fcfs = Vec::new();
    let mut rush = Vec::new();
    for (policy, outcome) in outcomes {
        match policy {
            PolicyKind::FcfsEasy => fcfs.push(outcome),
            PolicyKind::Rush => rush.push(outcome),
        }
    }
    fcfs.sort_by_key(|t| t.trial);
    rush.sort_by_key(|t| t.trial);
    ExperimentComparison {
        experiment,
        fcfs,
        rush,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;

    #[test]
    fn table_two_shape() {
        assert_eq!(Experiment::ALL.len(), 5);
        assert_eq!(Experiment::Adaa.job_count(), 190);
        assert_eq!(Experiment::Adpa.job_count(), 150);
        assert_eq!(Experiment::Pdpa.job_count(), 150);
        assert_eq!(Experiment::Ws.node_counts(), vec![8, 16, 32]);
        assert_eq!(Experiment::Ss.scaling(), ScalingMode::Strong);
        assert_eq!(Experiment::Adaa.run_apps().len(), 7);
        assert_eq!(Experiment::Pdpa.run_apps().len(), 3);
        assert_eq!(Experiment::Pdpa.train_apps().unwrap().len(), 4);
        assert!(Experiment::Adpa.train_apps().is_none());
        assert_eq!(Experiment::Adaa.to_string(), "ADAA");
        assert_eq!(PolicyKind::Rush.label(), "RUSH");
    }

    #[test]
    fn noise_job_takes_one_sixteenth() {
        let m = trial_machine(1);
        let nodes = noise_nodes(&m);
        assert_eq!(nodes.len(), 32); // 512 / 16
        assert_eq!(nodes[0], NodeId(480));
        assert_eq!(nodes[31], NodeId(511));
    }

    /// A smoke-sized ADAA comparison: a full campaign is too slow for unit
    /// tests, so we run a small campaign and a short queue.
    #[test]
    fn small_adaa_comparison_runs() {
        let campaign = crate::collect::run_campaign(&CampaignConfig::test_sized());
        let settings = ExperimentSettings {
            trials: 1,
            base_seed: 3,
            job_count_override: Some(12),
            model_kind: ModelKind::DecisionForest,
            ..ExperimentSettings::default()
        };
        // ADPA runs laghos/lbann/pennant; campaign lacks pennant, so use
        // ADAA restricted to the campaign apps via the workload override.
        let comparison = run_comparison(Experiment::Adpa, &campaign, &settings);
        assert_eq!(comparison.fcfs.len(), 1);
        assert_eq!(comparison.rush.len(), 1);
        for t in comparison.fcfs.iter().chain(&comparison.rush) {
            assert_eq!(t.metrics.per_app.iter().map(|a| a.count).sum::<usize>(), 12);
            assert!(t.metrics.makespan_secs > 0.0);
        }
        // Baseline never skips.
        assert_eq!(comparison.fcfs[0].total_skips, 0);
        let (f_mk, r_mk) = comparison.mean_makespan();
        assert!(f_mk > 0.0 && r_mk > 0.0);
    }
}
