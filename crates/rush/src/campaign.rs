//! The campaign orchestrator: a dependency-aware, parallel, resumable
//! artifact pipeline.
//!
//! The paper's evaluation is ~20 tables and figures over one shared
//! campaign dataset. Regenerating them used to mean launching one binary
//! per artifact serially, each re-loading the campaign cache and
//! re-training its models from scratch. This module replaces that with a
//! small static DAG of [`ArtifactNode`]s (campaign dataset → trained
//! models → figures/tables/ablations) executed by [`execute`] on a bounded
//! worker pool:
//!
//! * **Parallel** — independent nodes run concurrently on
//!   [`RunOptions::workers`] OS threads. The inner trial parallelism
//!   (rayon) and the outer pool share one thread budget; see
//!   [`default_workers`].
//! * **Atomic** — each node's `results/<output>` is written to a `.tmp`
//!   sibling and renamed into place (the [`crate::checkpoint`] discipline),
//!   so a crash mid-write never leaves a truncated artifact.
//! * **Resumable** — every run records provenance per node in a
//!   [`Manifest`] (`results/manifest.json`): seed, configuration
//!   fingerprint, content hash, wall time, status. A re-run skips any node
//!   whose fingerprint, dependencies and on-disk output are unchanged.
//! * **Fault-tolerant** — a failed node (error or panic) is retried once;
//!   a hard failure marks its dependents [`NodeStatus::Blocked`] and the
//!   rest of the DAG keeps going, so one broken ablation no longer kills
//!   the whole campaign.
//!
//! The DAG is validated up front ([`Dag::new`] rejects duplicate names,
//! unknown dependencies and cycles). Node work functions return the
//! artifact text; the orchestrator owns all I/O, which is what makes the
//! outputs byte-identical to the serial per-binary runs.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a node's work function produces: `Some(text)` for artifact nodes
/// (written to `results/<output>`), `None` for resource nodes that only
/// materialize shared in-process state (the campaign, trained models).
pub type NodeOutput = Option<String>;

/// A node's work function. Runs on a worker thread; panics are caught and
/// treated as failures. Shared (`Arc`) so the watchdog can hand a clone to
/// a detached thread when [`RunOptions::node_timeout`] is set.
pub type NodeFn = Arc<dyn Fn() -> Result<NodeOutput, String> + Send + Sync>;

/// One node of the artifact DAG.
pub struct ArtifactNode {
    /// Unique node name (`fig05_adaa_variation`, `campaign_data`, …).
    pub name: String,
    /// Output file name under the results directory (`fig05.txt`), or
    /// `None` for resource nodes.
    pub output: Option<String>,
    /// Names of nodes that must complete before this one starts.
    pub deps: Vec<String>,
    /// The work function.
    pub run: NodeFn,
    /// Extra skip-validity predicate: even when the manifest says the node
    /// is up to date, skipping also requires `check()` (used by the
    /// campaign node to demand that its disk cache still exists). `None`
    /// means no extra condition.
    pub check: Option<Box<dyn Fn() -> bool + Send + Sync>>,
    /// Version fingerprint of the predictor model this node's output
    /// depends on (0 when the node is model-independent). Recorded in the
    /// manifest so a rerun after the deployed model changed — a different
    /// training seed, label scheme, or online-service configuration whose
    /// hot-swaps produce different decisions — invalidates the cached
    /// artifact even when the campaign fingerprint alone is unchanged.
    pub model_version: u64,
}

impl ArtifactNode {
    /// An artifact node writing `output` under the results directory.
    pub fn artifact(
        name: &str,
        output: &str,
        deps: &[&str],
        run: impl Fn() -> Result<String, String> + Send + Sync + 'static,
    ) -> Self {
        ArtifactNode {
            name: name.to_string(),
            output: Some(output.to_string()),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            run: Arc::new(move || run().map(Some)),
            check: None,
            model_version: 0,
        }
    }

    /// A resource node: no output file, only shared in-process state.
    pub fn resource(
        name: &str,
        deps: &[&str],
        run: impl Fn() -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        ArtifactNode {
            name: name.to_string(),
            output: None,
            deps: deps.iter().map(|d| d.to_string()).collect(),
            run: Arc::new(move || run().map(|()| None)),
            check: None,
            model_version: 0,
        }
    }

    /// Attaches an extra skip-validity predicate (builder style).
    pub fn with_check(mut self, check: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        self.check = Some(Box::new(check));
        self
    }

    /// Tags the node with the predictor model version its output depends
    /// on (builder style).
    pub fn with_model_version(mut self, version: u64) -> Self {
        self.model_version = version;
        self
    }
}

impl std::fmt::Debug for ArtifactNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactNode")
            .field("name", &self.name)
            .field("output", &self.output)
            .field("deps", &self.deps)
            .field("model_version", &self.model_version)
            .finish_non_exhaustive()
    }
}

/// A validated artifact DAG.
#[derive(Debug)]
pub struct Dag {
    nodes: Vec<ArtifactNode>,
    /// `index_of[name]` — resolved once at validation.
    index_of: HashMap<String, usize>,
    /// `dependents[i]` — indices of nodes that depend on node `i`.
    dependents: Vec<Vec<usize>>,
}

impl Dag {
    /// Validates the node set: names must be unique, dependencies must
    /// resolve, and the graph must be acyclic.
    pub fn new(nodes: Vec<ArtifactNode>) -> Result<Dag, String> {
        let mut index_of = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if index_of.insert(node.name.clone(), i).is_some() {
                return Err(format!("duplicate node name '{}'", node.name));
            }
        }
        let mut dependents = vec![Vec::new(); nodes.len()];
        let mut indegree = vec![0usize; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for dep in &node.deps {
                let &j = index_of
                    .get(dep)
                    .ok_or_else(|| format!("node '{}' depends on unknown '{dep}'", node.name))?;
                if j == i {
                    return Err(format!("node '{}' depends on itself", node.name));
                }
                dependents[j].push(i);
                indegree[i] += 1;
            }
        }
        // Kahn's algorithm: every node must be reachable from the sources.
        let mut queue: VecDeque<usize> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        let mut remaining = indegree.clone();
        while let Some(i) = queue.pop_front() {
            seen += 1;
            for &d in &dependents[i] {
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if seen != nodes.len() {
            let stuck: Vec<&str> = (0..nodes.len())
                .filter(|&i| remaining[i] > 0)
                .map(|i| nodes[i].name.as_str())
                .collect();
            return Err(format!("dependency cycle involving {stuck:?}"));
        }
        Ok(Dag {
            nodes,
            index_of,
            dependents,
        })
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[ArtifactNode] {
        &self.nodes
    }

    /// Index of the named node.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index_of.get(name).copied()
    }

    /// The named nodes plus, transitively, everything they depend on —
    /// the execution set for `--only`.
    pub fn closure_of(&self, names: &[&str]) -> Result<Vec<usize>, String> {
        let mut selected = vec![false; self.nodes.len()];
        let mut stack = Vec::new();
        for name in names {
            let i = self
                .index_of(name)
                .ok_or_else(|| format!("unknown artifact '{name}'"))?;
            stack.push(i);
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut selected[i], true) {
                continue;
            }
            for dep in &self.nodes[i].deps {
                stack.push(self.index_of[dep]);
            }
        }
        Ok((0..self.nodes.len()).filter(|&i| selected[i]).collect())
    }
}

/// How a node's run resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Ran and produced (or refreshed) its output.
    Fresh,
    /// Up to date — inputs and output unchanged since the manifest entry.
    Skipped,
    /// Ran (including the retry) and failed.
    Failed,
    /// Exceeded [`RunOptions::node_timeout`]; the hung work thread was
    /// abandoned and the node failed without a retry.
    TimedOut,
    /// Not run because a dependency failed or was blocked.
    Blocked,
}

impl NodeStatus {
    /// Manifest string form.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeStatus::Fresh => "fresh",
            NodeStatus::Skipped => "skipped",
            NodeStatus::Failed => "failed",
            NodeStatus::TimedOut => "timed_out",
            NodeStatus::Blocked => "blocked",
        }
    }

    /// Parses the manifest string form.
    pub fn parse(s: &str) -> Option<NodeStatus> {
        match s {
            "fresh" => Some(NodeStatus::Fresh),
            "skipped" => Some(NodeStatus::Skipped),
            "failed" => Some(NodeStatus::Failed),
            "timed_out" => Some(NodeStatus::TimedOut),
            "blocked" => Some(NodeStatus::Blocked),
            _ => None,
        }
    }
}

/// One node's provenance record in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Node name.
    pub name: String,
    /// Output file name (empty for resource nodes).
    pub output: Option<String>,
    /// Configuration fingerprint the node ran under.
    pub fingerprint: u64,
    /// FNV-1a hash of the artifact text (0 for resource nodes).
    pub content_hash: u64,
    /// Version fingerprint of the predictor model the node ran under
    /// (0 for model-independent nodes, and for manifests written before
    /// the field existed — those never match a versioned node, forcing a
    /// rerun once, which is the safe direction).
    pub model_version: u64,
    /// Wall time of the run in milliseconds (0 when skipped).
    pub wall_ms: u64,
    /// How the node resolved.
    pub status: NodeStatus,
    /// Error message for failed/blocked nodes.
    pub error: Option<String>,
    /// Dependency names, for provenance.
    pub deps: Vec<String>,
}

/// The on-disk manifest: one entry per node plus run-level provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Configuration fingerprint of the whole run.
    pub fingerprint: u64,
    /// Per-node records.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// File name under the results directory.
    pub const FILE_NAME: &'static str = "manifest.json";

    /// Looks up the entry for `name`.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders the manifest as canonical JSON (fixed key order, no
    /// whitespace — the [`rush_obs::json`] discipline).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let deps: Vec<String> = e
                    .deps
                    .iter()
                    .map(|d| rush_obs::json::escape_str(d))
                    .collect();
                let mut obj = rush_obs::json::JsonObject::new()
                    .str("name", &e.name)
                    .str("output", e.output.as_deref().unwrap_or(""))
                    .str("fingerprint", &format!("{:016x}", e.fingerprint))
                    .str("content_hash", &format!("{:016x}", e.content_hash))
                    .str("model_version", &format!("{:016x}", e.model_version))
                    .u64("wall_ms", e.wall_ms)
                    .str("status", e.status.as_str());
                if let Some(err) = &e.error {
                    obj = obj.str("error", err);
                }
                obj.raw("deps", &format!("[{}]", deps.join(","))).finish()
            })
            .collect();
        rush_obs::json::JsonObject::new()
            .u64("version", 1)
            .u64("seed", self.seed)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .raw("artifacts", &format!("[{}]", entries.join(",")))
            .finish()
    }

    /// Parses [`Manifest::to_json`] output (a strict subset of JSON: the
    /// exact shape this module writes).
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let root = json_parse(text)?;
        let seed = root.u64_field("seed")?;
        let fingerprint = parse_hex(root.str_field("fingerprint")?)?;
        let mut entries = Vec::new();
        for item in root.list_field("artifacts")? {
            let output = item.str_field("output")?;
            entries.push(ManifestEntry {
                name: item.str_field("name")?.to_string(),
                output: if output.is_empty() {
                    None
                } else {
                    Some(output.to_string())
                },
                fingerprint: parse_hex(item.str_field("fingerprint")?)?,
                content_hash: parse_hex(item.str_field("content_hash")?)?,
                // Absent in manifests written before the field existed;
                // default 0 so they still parse (and force a rerun of any
                // node that now carries a version).
                model_version: match item.opt_str_field("model_version") {
                    Some(hex) => parse_hex(hex)?,
                    None => 0,
                },
                wall_ms: item.u64_field("wall_ms")?,
                status: NodeStatus::parse(item.str_field("status")?)
                    .ok_or_else(|| "bad status".to_string())?,
                error: item.opt_str_field("error").map(str::to_string),
                deps: item
                    .list_field("deps")?
                    .iter()
                    .map(|d| d.as_str().map(str::to_string))
                    .collect::<Result<_, _>>()?,
            });
        }
        Ok(Manifest {
            seed,
            fingerprint,
            entries,
        })
    }

    /// Loads the manifest from `dir`, returning `None` when absent or
    /// unreadable (a corrupt manifest just disables skipping).
    pub fn load(dir: &Path) -> Option<Manifest> {
        let text = fs::read_to_string(dir.join(Self::FILE_NAME)).ok()?;
        match Manifest::from_json(&text) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("[campaign] ignoring unreadable manifest: {e}");
                None
            }
        }
    }

    /// Writes the manifest into `dir` atomically.
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        write_atomic(&dir.join(Self::FILE_NAME), self.to_json().as_bytes())
    }
}

/// FNV-1a over arbitrary bytes — the content-hash primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` via a `.tmp` sibling + rename, creating parent
/// directories as needed. The tmp name embeds the pid so concurrent
/// writers never clobber each other's partial files; rename settles the
/// race with a complete file either way.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Picks the outer worker-pool size for a machine with `cores` logical
/// cores when each node runs `inner_threads` of its own (the rayon trial
/// parallelism): total threads ≈ cores. The vendored rayon stub is
/// sequential (`inner_threads` = 1), so the pool defaults to one worker
/// per core.
pub fn default_workers(cores: usize, inner_threads: usize) -> usize {
    (cores / inner_threads.max(1)).max(1)
}

/// Options for one [`execute`] run.
pub struct RunOptions {
    /// Directory artifacts and the manifest are written into.
    pub results_dir: PathBuf,
    /// Worker threads (see [`default_workers`]).
    pub workers: usize,
    /// Ignore the previous manifest: run every selected node.
    pub force: bool,
    /// Configuration fingerprint of this run (seed, scale, config).
    pub fingerprint: u64,
    /// Master seed, recorded in the manifest.
    pub seed: u64,
    /// Node indices to execute (typically [`Dag::closure_of`]); `None`
    /// runs the whole DAG.
    pub only: Option<Vec<usize>>,
    /// Print per-node progress lines to stderr.
    pub verbose: bool,
    /// Per-node wall-clock budget. When set, each work function runs under
    /// a watchdog: a node that has not finished within the budget resolves
    /// [`NodeStatus::TimedOut`] (no retry — a hang is not transient), its
    /// dependents are blocked, and the DAG keeps draining instead of
    /// wedging `run_all`. The hung thread is abandoned, not killed: it
    /// must not hold the results directory hostage, which artifact nodes
    /// never do (the orchestrator owns all I/O). `None` disables the
    /// watchdog.
    pub node_timeout: Option<Duration>,
}

/// One node's outcome in a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// How it resolved.
    pub status: NodeStatus,
    /// Wall milliseconds spent running it (0 when skipped/blocked).
    pub wall_ms: u64,
    /// Error message for failed/blocked nodes.
    pub error: Option<String>,
    /// Whether the node ran twice (first attempt failed, retry succeeded
    /// or failed again).
    pub retried: bool,
}

/// The outcome of one orchestrator run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-node outcomes, in DAG insertion order (selected nodes only).
    pub nodes: Vec<NodeReport>,
    /// The manifest as written to disk (includes preserved entries of
    /// unselected nodes).
    pub manifest: Manifest,
}

impl RunReport {
    /// Count of nodes with the given status.
    pub fn count(&self, status: NodeStatus) -> usize {
        self.nodes.iter().filter(|n| n.status == status).count()
    }

    /// True when every selected node resolved fresh or skipped.
    pub fn all_ok(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| matches!(n.status, NodeStatus::Fresh | NodeStatus::Skipped))
    }
}

/// Per-node scheduling state inside the execution loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    /// Not selected by `--only`; its previous manifest entry is preserved.
    Pruned,
    /// Waiting on `usize` unresolved dependencies.
    Waiting(usize),
    /// In the ready queue or running on a worker.
    Active,
    /// Resolved; `unchanged` = safe for dependents to skip over (skipped,
    /// or fresh with a content hash equal to the previous run's).
    Done { status: NodeStatus, unchanged: bool },
}

struct ExecState {
    slots: Vec<Slot>,
    ready: VecDeque<usize>,
    /// Resolved outcomes, filled as nodes finish.
    outcomes: Vec<Option<(NodeReport, ManifestEntry)>>,
    running: usize,
}

/// Executes the selected portion of `dag` under `opts`.
///
/// Returns an error only for setup problems (unreadable results dir);
/// node failures are reported per node, not as an `Err`.
pub fn execute(dag: &Dag, opts: &RunOptions) -> Result<RunReport, String> {
    fs::create_dir_all(&opts.results_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.results_dir.display()))?;
    let previous = Manifest::load(&opts.results_dir);
    let selected: Vec<bool> = match &opts.only {
        None => vec![true; dag.nodes.len()],
        Some(indices) => {
            let mut s = vec![false; dag.nodes.len()];
            for &i in indices {
                s[i] = true;
            }
            s
        }
    };

    let mut slots = Vec::with_capacity(dag.nodes.len());
    let mut ready = VecDeque::new();
    for (i, node) in dag.nodes.iter().enumerate() {
        if !selected[i] {
            slots.push(Slot::Pruned);
            continue;
        }
        let waiting = node
            .deps
            .iter()
            .filter(|d| selected[dag.index_of[*d]])
            .count();
        if waiting == 0 {
            slots.push(Slot::Active);
            ready.push_back(i);
        } else {
            slots.push(Slot::Waiting(waiting));
        }
    }

    let state = Mutex::new(ExecState {
        slots,
        ready,
        outcomes: (0..dag.nodes.len()).map(|_| None).collect(),
        running: 0,
    });
    let work_available = Condvar::new();

    let workers = opts.workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(dag, opts, previous.as_ref(), &state, &work_available));
        }
    });

    let state = state.into_inner().unwrap();
    let mut nodes = Vec::new();
    let mut entries = Vec::new();
    for (i, outcome) in state.outcomes.into_iter().enumerate() {
        match outcome {
            Some((report, entry)) => {
                nodes.push(report);
                entries.push(entry);
            }
            None => {
                // Pruned: preserve the previous manifest entry so a later
                // full run can still skip the node.
                if let Some(prev) = previous.as_ref().and_then(|m| m.entry(&dag.nodes[i].name)) {
                    entries.push(prev.clone());
                }
            }
        }
    }
    // Manifest order follows the DAG; entries of nodes the DAG no longer
    // contains are dropped.
    entries.sort_by_key(|e| dag.index_of(&e.name).unwrap_or(usize::MAX));
    let manifest = Manifest {
        seed: opts.seed,
        fingerprint: opts.fingerprint,
        entries,
    };
    manifest
        .store(&opts.results_dir)
        .map_err(|e| format!("cannot write manifest: {e}"))?;
    Ok(RunReport { nodes, manifest })
}

fn worker_loop(
    dag: &Dag,
    opts: &RunOptions,
    previous: Option<&Manifest>,
    state: &Mutex<ExecState>,
    work_available: &Condvar,
) {
    loop {
        let i = {
            let mut st = state.lock().unwrap();
            loop {
                if let Some(i) = st.ready.pop_front() {
                    st.running += 1;
                    break i;
                }
                if st.running == 0 {
                    return; // queue drained and nobody can refill it
                }
                st = work_available.wait(st).unwrap();
            }
        };

        let node = &dag.nodes[i];
        let resolution = resolve_node(node, dag, opts, previous, state);

        let mut st = state.lock().unwrap();
        let unchanged = match resolution.0.status {
            NodeStatus::Skipped => true,
            NodeStatus::Fresh => {
                let prev_hash = previous
                    .and_then(|m| m.entry(&node.name))
                    .map(|e| e.content_hash);
                prev_hash == Some(resolution.1.content_hash)
            }
            _ => false,
        };
        let failed = matches!(
            resolution.0.status,
            NodeStatus::Failed | NodeStatus::TimedOut | NodeStatus::Blocked
        );
        st.slots[i] = Slot::Done {
            status: resolution.0.status,
            unchanged,
        };
        st.outcomes[i] = Some(resolution);
        for &d in &dag.dependents[i] {
            match st.slots[d] {
                Slot::Waiting(ref mut n) => {
                    *n -= 1;
                    if *n == 0 {
                        if failed {
                            block_node(dag, d, &node.name, &mut st);
                        } else {
                            st.slots[d] = Slot::Active;
                            st.ready.push_back(d);
                        }
                    } else if failed {
                        block_node(dag, d, &node.name, &mut st);
                    }
                }
                Slot::Pruned | Slot::Active | Slot::Done { .. } => {}
            }
        }
        st.running -= 1;
        work_available.notify_all();
    }
}

/// Marks `d` (and transitively its own dependents) blocked on `dep_name`.
fn block_node(dag: &Dag, d: usize, dep_name: &str, st: &mut ExecState) {
    let error = format!("dependency '{dep_name}' failed");
    st.slots[d] = Slot::Done {
        status: NodeStatus::Blocked,
        unchanged: false,
    };
    let node = &dag.nodes[d];
    st.outcomes[d] = Some((
        NodeReport {
            name: node.name.clone(),
            status: NodeStatus::Blocked,
            wall_ms: 0,
            error: Some(error.clone()),
            retried: false,
        },
        ManifestEntry {
            name: node.name.clone(),
            output: node.output.clone(),
            fingerprint: 0,
            content_hash: 0,
            model_version: node.model_version,
            wall_ms: 0,
            status: NodeStatus::Blocked,
            error: Some(error),
            deps: node.deps.clone(),
        },
    ));
    for &dd in &dag.dependents[d].clone() {
        if matches!(st.slots[dd], Slot::Waiting(_)) {
            block_node(dag, dd, &dag.nodes[d].name, st);
        }
    }
}

/// Decides skip-vs-run for a ready node and, when running, executes it
/// with one retry. Called without the state lock held; only reads
/// dependency resolutions through short re-locks.
fn resolve_node(
    node: &ArtifactNode,
    dag: &Dag,
    opts: &RunOptions,
    previous: Option<&Manifest>,
    state: &Mutex<ExecState>,
) -> (NodeReport, ManifestEntry) {
    if let Some(prev) = (!opts.force)
        .then(|| previous.and_then(|m| m.entry(&node.name)))
        .flatten()
    {
        if can_skip(node, prev, dag, opts, state) {
            if opts.verbose {
                eprintln!("[campaign] {:<28} up to date, skipped", node.name);
            }
            return (
                NodeReport {
                    name: node.name.clone(),
                    status: NodeStatus::Skipped,
                    wall_ms: 0,
                    error: None,
                    retried: false,
                },
                ManifestEntry {
                    name: node.name.clone(),
                    output: node.output.clone(),
                    fingerprint: prev.fingerprint,
                    content_hash: prev.content_hash,
                    model_version: node.model_version,
                    wall_ms: 0,
                    status: NodeStatus::Skipped,
                    error: None,
                    deps: node.deps.clone(),
                },
            );
        }
    }

    if opts.verbose {
        eprintln!("[campaign] {:<28} running...", node.name);
    }
    let started = Instant::now();
    let mut retried = false;
    let mut attempt = run_guarded(node, opts.node_timeout);
    if let Attempt::Err(e) = &attempt {
        retried = true;
        if opts.verbose {
            eprintln!("[campaign] {:<28} failed ({e}), retrying once", node.name);
        }
        attempt = run_guarded(node, opts.node_timeout);
    }
    let wall_ms = started.elapsed().as_millis() as u64;

    match attempt {
        Attempt::TimedOut => {
            // A hang is not transient: no retry, and the manifest records
            // the distinct status so `run_all` output names the wedge.
            let error = format!(
                "timed out after {:.1}s",
                opts.node_timeout.unwrap_or_default().as_secs_f64()
            );
            if opts.verbose {
                eprintln!("[campaign] {:<28} TIMED OUT ({error})", node.name);
            }
            let (mut report, mut entry) = failure(node, wall_ms, retried, error);
            report.status = NodeStatus::TimedOut;
            entry.status = NodeStatus::TimedOut;
            (report, entry)
        }
        Attempt::Ok(content) => {
            let content_hash = match (&node.output, &content) {
                (Some(file), Some(text)) => {
                    let hash = fnv1a(text.as_bytes());
                    if let Err(e) = write_atomic(&opts.results_dir.join(file), text.as_bytes()) {
                        return failure(node, wall_ms, retried, format!("write {file}: {e}"));
                    }
                    hash
                }
                _ => 0,
            };
            if opts.verbose {
                eprintln!("[campaign] {:<28} fresh in {wall_ms} ms", node.name);
            }
            (
                NodeReport {
                    name: node.name.clone(),
                    status: NodeStatus::Fresh,
                    wall_ms,
                    error: None,
                    retried,
                },
                ManifestEntry {
                    name: node.name.clone(),
                    output: node.output.clone(),
                    fingerprint: opts.fingerprint,
                    content_hash,
                    model_version: node.model_version,
                    wall_ms,
                    status: NodeStatus::Fresh,
                    error: None,
                    deps: node.deps.clone(),
                },
            )
        }
        Attempt::Err(e) => {
            if opts.verbose {
                eprintln!("[campaign] {:<28} FAILED: {e}", node.name);
            }
            failure(node, wall_ms, retried, e)
        }
    }
}

fn failure(
    node: &ArtifactNode,
    wall_ms: u64,
    retried: bool,
    error: String,
) -> (NodeReport, ManifestEntry) {
    (
        NodeReport {
            name: node.name.clone(),
            status: NodeStatus::Failed,
            wall_ms,
            error: Some(error.clone()),
            retried,
        },
        ManifestEntry {
            name: node.name.clone(),
            output: node.output.clone(),
            fingerprint: 0,
            content_hash: 0,
            model_version: node.model_version,
            wall_ms,
            status: NodeStatus::Failed,
            error: Some(error),
            deps: node.deps.clone(),
        },
    )
}

/// A node may be skipped when its previous entry ran under the same
/// fingerprint and predictor model version, its recorded output is still
/// on disk and unmodified, every dependency resolved unchanged, and its
/// extra `check` (if any) holds.
fn can_skip(
    node: &ArtifactNode,
    prev: &ManifestEntry,
    dag: &Dag,
    opts: &RunOptions,
    state: &Mutex<ExecState>,
) -> bool {
    if prev.fingerprint != opts.fingerprint
        || prev.model_version != node.model_version
        || !matches!(prev.status, NodeStatus::Fresh | NodeStatus::Skipped)
        || prev.deps != node.deps
    {
        return false;
    }
    if let Some(file) = &node.output {
        match fs::read(opts.results_dir.join(file)) {
            Ok(bytes) => {
                if fnv1a(&bytes) != prev.content_hash {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    if let Some(check) = &node.check {
        if !check() {
            return false;
        }
    }
    let st = state.lock().unwrap();
    node.deps.iter().all(|dep| {
        match st.slots[dag.index_of[dep]] {
            // Unselected deps are treated as unchanged: the manifest entry
            // comparison above already pinned this node's own inputs.
            Slot::Pruned => true,
            Slot::Done { unchanged, .. } => unchanged,
            _ => false,
        }
    })
}

/// How one guarded attempt of a node's work function resolved.
enum Attempt {
    Ok(NodeOutput),
    Err(String),
    /// The watchdog expired; the work thread may still be running, but the
    /// orchestrator has moved on.
    TimedOut,
}

fn run_guarded(node: &ArtifactNode, timeout: Option<Duration>) -> Attempt {
    let Some(timeout) = timeout else {
        return attempt_of(catch_unwind(AssertUnwindSafe(|| (node.run)())));
    };
    // Watchdog: run the work function on a detached thread and wait with a
    // deadline. On timeout the thread is abandoned — it holds only a clone
    // of the `Arc`'d work closure, so dropping our side leaks nothing the
    // node doesn't own, and a later process exit reaps it.
    let run = node.run.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| run()));
        let _ = tx.send(result); // receiver gone = watchdog already fired
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => attempt_of(result),
        Err(mpsc::RecvTimeoutError::Timeout) => Attempt::TimedOut,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Attempt::Err("work thread vanished without a result".to_string())
        }
    }
}

fn attempt_of(caught: std::thread::Result<Result<NodeOutput, String>>) -> Attempt {
    match caught {
        Ok(Ok(output)) => Attempt::Ok(output),
        Ok(Err(e)) => Attempt::Err(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            Attempt::Err(format!("panicked: {msg}"))
        }
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the manifest (the exact subset `to_json` emits:
// objects, arrays, strings, unsigned integers).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    U64(u64),
    List(Vec<JsonVal>),
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonVal::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn field(&self, name: &str) -> Result<&JsonVal, String> {
        match self {
            JsonVal::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{name}'")),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    fn str_field(&self, name: &str) -> Result<&str, String> {
        self.field(name)?.as_str()
    }

    fn opt_str_field(&self, name: &str) -> Option<&str> {
        self.field(name).ok().and_then(|v| v.as_str().ok())
    }

    fn u64_field(&self, name: &str) -> Result<u64, String> {
        match self.field(name)? {
            JsonVal::U64(v) => Ok(*v),
            other => Err(format!("field '{name}': expected integer, got {other:?}")),
        }
    }

    fn list_field(&self, name: &str) -> Result<&[JsonVal], String> {
        match self.field(name)? {
            JsonVal::List(items) => Ok(items),
            other => Err(format!("field '{name}': expected array, got {other:?}")),
        }
    }
}

fn parse_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex '{s}': {e}"))
}

fn json_parse(text: &str) -> Result<JsonVal, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let val = json_val(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(val)
}

fn json_val(bytes: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    match bytes.get(*pos) {
        Some(b'"') => Ok(JsonVal::Str(json_str(bytes, pos)?)),
        Some(b'0'..=b'9') => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(JsonVal::U64)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonVal::List(items));
            }
            loop {
                items.push(json_val(bytes, pos)?);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonVal::List(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonVal::Obj(fields));
            }
            loop {
                let key = json_str(bytes, pos)?;
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, json_val(bytes, pos)?));
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonVal::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        _ => Err(format!("unexpected byte at offset {pos}")),
    }
}

fn json_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let start = *pos;
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = bytes
                    .get(start..start + len)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or_else(|| format!("bad utf-8 at offset {start}"))?;
                out.push_str(s);
                *pos += len;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rush-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> RunOptions {
        RunOptions {
            results_dir: dir.to_path_buf(),
            workers: 2,
            force: false,
            fingerprint: 0xABCD,
            seed: 7,
            only: None,
            verbose: false,
            node_timeout: None,
        }
    }

    fn const_node(name: &str, deps: &[&str], text: &str) -> ArtifactNode {
        let text = text.to_string();
        ArtifactNode::artifact(name, &format!("{name}.txt"), deps, move || Ok(text.clone()))
    }

    #[test]
    fn dag_rejects_duplicates_unknowns_and_cycles() {
        let dup = Dag::new(vec![const_node("a", &[], "x"), const_node("a", &[], "y")]);
        assert!(dup.unwrap_err().contains("duplicate"));
        let unknown = Dag::new(vec![const_node("a", &["ghost"], "x")]);
        assert!(unknown.unwrap_err().contains("unknown"));
        let cycle = Dag::new(vec![
            const_node("a", &["b"], "x"),
            const_node("b", &["a"], "y"),
        ]);
        assert!(cycle.unwrap_err().contains("cycle"));
        let self_dep = Dag::new(vec![const_node("a", &["a"], "x")]);
        assert!(self_dep.unwrap_err().contains("itself"));
    }

    #[test]
    fn closure_pulls_transitive_deps() {
        let dag = Dag::new(vec![
            const_node("a", &[], "x"),
            const_node("b", &["a"], "y"),
            const_node("c", &["b"], "z"),
            const_node("d", &[], "w"),
        ])
        .unwrap();
        let closure = dag.closure_of(&["c"]).unwrap();
        assert_eq!(closure, vec![0, 1, 2]);
        assert!(dag.closure_of(&["ghost"]).is_err());
    }

    #[test]
    fn executes_writes_outputs_and_manifest() {
        let dir = tmp_dir("exec");
        let dag = Dag::new(vec![
            const_node("a", &[], "alpha\n"),
            const_node("b", &["a"], "beta\n"),
        ])
        .unwrap();
        let report = execute(&dag, &opts(&dir)).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.count(NodeStatus::Fresh), 2);
        assert_eq!(fs::read_to_string(dir.join("a.txt")).unwrap(), "alpha\n");
        assert_eq!(fs::read_to_string(dir.join("b.txt")).unwrap(), "beta\n");
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest, report.manifest);
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entry("a").unwrap().status, NodeStatus::Fresh);
        assert_eq!(manifest.entry("b").unwrap().content_hash, fnv1a(b"beta\n"));
        // No stray tmp files.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .path()
            .to_str()
            .unwrap()
            .ends_with(".tmp")));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_run_skips_everything() {
        let dir = tmp_dir("skip");
        let runs = Arc::new(AtomicUsize::new(0));
        let make = |runs: Arc<AtomicUsize>| {
            Dag::new(vec![
                {
                    let runs = runs.clone();
                    ArtifactNode::artifact("a", "a.txt", &[], move || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok("alpha\n".to_string())
                    })
                },
                {
                    let runs = runs.clone();
                    ArtifactNode::artifact("b", "b.txt", &["a"], move || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok("beta\n".to_string())
                    })
                },
            ])
            .unwrap()
        };
        let dag = make(runs.clone());
        let first = execute(&dag, &opts(&dir)).unwrap();
        assert_eq!(first.count(NodeStatus::Fresh), 2);
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        let second = execute(&dag, &opts(&dir)).unwrap();
        assert_eq!(second.count(NodeStatus::Skipped), 2);
        assert_eq!(runs.load(Ordering::SeqCst), 2, "no node re-ran");
        // force re-runs everything.
        let mut forced = opts(&dir);
        forced.force = true;
        let third = execute(&dag, &forced).unwrap();
        assert_eq!(third.count(NodeStatus::Fresh), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_fingerprint_or_deleted_output_reruns() {
        let dir = tmp_dir("invalidate");
        let dag = Dag::new(vec![const_node("a", &[], "alpha\n")]).unwrap();
        execute(&dag, &opts(&dir)).unwrap();
        // Fingerprint change: re-run.
        let mut other = opts(&dir);
        other.fingerprint = 0x9999;
        let rerun = execute(&dag, &other).unwrap();
        assert_eq!(rerun.count(NodeStatus::Fresh), 1);
        // Output deleted: re-run even with matching fingerprint.
        fs::remove_file(dir.join("a.txt")).unwrap();
        let rerun = execute(&dag, &other).unwrap();
        assert_eq!(rerun.count(NodeStatus::Fresh), 1);
        // Output edited by hand: hash mismatch, re-run (and repair).
        fs::write(dir.join("a.txt"), "tampered").unwrap();
        let rerun = execute(&dag, &other).unwrap();
        assert_eq!(rerun.count(NodeStatus::Fresh), 1);
        assert_eq!(fs::read_to_string(dir.join("a.txt")).unwrap(), "alpha\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_is_retried_once_then_blocks_dependents_only() {
        let dir = tmp_dir("fail");
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts_in = attempts.clone();
        let dag = Dag::new(vec![
            ArtifactNode::artifact("bad", "bad.txt", &[], move || {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                Err("boom".to_string())
            }),
            const_node("child", &["bad"], "never\n"),
            const_node("grandchild", &["child"], "never\n"),
            const_node("independent", &[], "fine\n"),
        ])
        .unwrap();
        let report = execute(&dag, &opts(&dir)).unwrap();
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry");
        assert_eq!(report.count(NodeStatus::Failed), 1);
        assert_eq!(report.count(NodeStatus::Blocked), 2);
        assert_eq!(report.count(NodeStatus::Fresh), 1);
        assert!(!report.all_ok());
        assert!(dir.join("independent.txt").exists());
        assert!(!dir.join("bad.txt").exists());
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.entry("bad").unwrap().status, NodeStatus::Failed);
        assert!(manifest
            .entry("child")
            .unwrap()
            .error
            .as_deref()
            .unwrap()
            .contains("'bad' failed"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hung_node_times_out_without_wedging_the_dag() {
        let dir = tmp_dir("watchdog");
        let dag = Dag::new(vec![
            ArtifactNode::artifact("hung", "hung.txt", &[], || {
                std::thread::sleep(Duration::from_secs(60));
                Ok("never\n".to_string())
            }),
            const_node("child", &["hung"], "never\n"),
            const_node("independent", &[], "fine\n"),
        ])
        .unwrap();
        let mut o = opts(&dir);
        o.node_timeout = Some(Duration::from_millis(100));
        let started = Instant::now();
        let report = execute(&dag, &o).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the watchdog must not wait for the hung node"
        );
        assert_eq!(report.count(NodeStatus::TimedOut), 1);
        assert_eq!(report.count(NodeStatus::Blocked), 1);
        assert_eq!(report.count(NodeStatus::Fresh), 1);
        assert!(!report.all_ok());
        let timed_out = report.nodes.iter().find(|n| n.name == "hung").unwrap();
        assert!(!timed_out.retried, "a hang is not retried");
        assert!(timed_out.error.as_deref().unwrap().contains("timed out"));
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.entry("hung").unwrap().status, NodeStatus::TimedOut);
        assert!(!dir.join("hung.txt").exists());
        assert!(dir.join("independent.txt").exists());
        // A timed-out entry never satisfies a later skip check: the node
        // re-runs (and succeeds) once the timeout allows it.
        let quick = Dag::new(vec![
            ArtifactNode::artifact("hung", "hung.txt", &[], || Ok("done\n".to_string())),
            const_node("child", &["hung"], "ok\n"),
            const_node("independent", &[], "fine\n"),
        ])
        .unwrap();
        let report = execute(&quick, &opts(&dir)).unwrap();
        assert_eq!(
            report.manifest.entry("hung").unwrap().status,
            NodeStatus::Fresh
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timed_out_status_round_trips_in_the_manifest() {
        assert_eq!(NodeStatus::parse("timed_out"), Some(NodeStatus::TimedOut));
        assert_eq!(NodeStatus::TimedOut.as_str(), "timed_out");
    }

    #[test]
    fn panic_is_caught_and_retried() {
        let dir = tmp_dir("panic");
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts_in = attempts.clone();
        let dag = Dag::new(vec![ArtifactNode::artifact(
            "flaky",
            "flaky.txt",
            &[],
            move || {
                if attempts_in.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                Ok("recovered\n".to_string())
            },
        )])
        .unwrap();
        let report = execute(&dag, &opts(&dir)).unwrap();
        assert_eq!(report.count(NodeStatus::Fresh), 1);
        assert!(report.nodes[0].retried);
        assert_eq!(
            fs::read_to_string(dir.join("flaky.txt")).unwrap(),
            "recovered\n"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn only_selection_preserves_unselected_manifest_entries() {
        let dir = tmp_dir("only");
        let dag = Dag::new(vec![
            const_node("a", &[], "alpha\n"),
            const_node("b", &[], "beta\n"),
        ])
        .unwrap();
        execute(&dag, &opts(&dir)).unwrap();
        // Run only "a" again under a new fingerprint; "b"'s entry must
        // survive untouched.
        let mut o = opts(&dir);
        o.fingerprint = 0x1111;
        o.only = Some(dag.closure_of(&["a"]).unwrap());
        let report = execute(&dag, &o).unwrap();
        assert_eq!(report.nodes.len(), 1);
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entry("b").unwrap().fingerprint, 0xABCD);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resource_node_with_failing_check_reruns() {
        let dir = tmp_dir("check");
        let runs = Arc::new(AtomicUsize::new(0));
        let make = |ok: bool, runs: Arc<AtomicUsize>| {
            Dag::new(vec![ArtifactNode::resource("res", &[], move || {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .with_check(move || ok)])
            .unwrap()
        };
        execute(&make(true, runs.clone()), &opts(&dir)).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        // check() holds: skipped.
        execute(&make(true, runs.clone()), &opts(&dir)).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        // check() fails (e.g. cache file deleted): re-run.
        execute(&make(false, runs.clone()), &opts(&dir)).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_dep_content_invalidates_dependents() {
        let dir = tmp_dir("depchange");
        let make = |text: &str| {
            let text = text.to_string();
            Dag::new(vec![
                ArtifactNode::artifact("up", "up.txt", &[], move || Ok(text.clone())),
                const_node("down", &["up"], "same\n"),
            ])
            .unwrap()
        };
        execute(&make("v1\n"), &opts(&dir)).unwrap();
        // Upstream content changes while the fingerprint stays equal (the
        // conservative case: fingerprints should change too, but content
        // hashes are the backstop). Delete up.txt to force "up" fresh with
        // different bytes.
        fs::remove_file(dir.join("up.txt")).unwrap();
        let report = execute(&make("v2\n"), &opts(&dir)).unwrap();
        assert_eq!(
            report.manifest.entry("up").unwrap().status,
            NodeStatus::Fresh
        );
        assert_eq!(
            report.manifest.entry("down").unwrap().status,
            NodeStatus::Fresh,
            "downstream re-ran because upstream bytes changed"
        );
        // And when the upstream re-run reproduces identical bytes, the
        // downstream may skip.
        fs::remove_file(dir.join("up.txt")).unwrap();
        let report = execute(&make("v2\n"), &opts(&dir)).unwrap();
        assert_eq!(
            report.manifest.entry("up").unwrap().status,
            NodeStatus::Fresh
        );
        assert_eq!(
            report.manifest.entry("down").unwrap().status,
            NodeStatus::Skipped
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_json_round_trips() {
        let manifest = Manifest {
            seed: 0xC0FFEE,
            fingerprint: 0xDEAD_BEEF,
            entries: vec![
                ManifestEntry {
                    name: "fig05_adaa_variation".into(),
                    output: Some("fig05.txt".into()),
                    fingerprint: 0xDEAD_BEEF,
                    content_hash: 0x1234,
                    model_version: 0xFACE,
                    wall_ms: 420,
                    status: NodeStatus::Fresh,
                    error: None,
                    deps: vec!["campaign_data".into(), "model_default".into()],
                },
                ManifestEntry {
                    name: "campaign_data".into(),
                    output: None,
                    fingerprint: 0xDEAD_BEEF,
                    content_hash: 0,
                    model_version: 0,
                    wall_ms: 0,
                    status: NodeStatus::Skipped,
                    error: None,
                    deps: vec![],
                },
                ManifestEntry {
                    name: "broken \"quote\"".into(),
                    output: Some("x.txt".into()),
                    fingerprint: 1,
                    content_hash: 2,
                    model_version: 0,
                    wall_ms: 3,
                    status: NodeStatus::Failed,
                    error: Some("boom\nline2".into()),
                    deps: vec![],
                },
            ],
        };
        let json = manifest.to_json();
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, manifest);
        assert!(Manifest::from_json("garbage").is_err());
        assert!(Manifest::from_json("{}").is_err());
    }

    #[test]
    fn manifest_without_model_version_still_parses() {
        // A manifest written before the field existed: every entry parses
        // with model_version 0.
        let legacy = r#"{"version":1,"seed":7,"fingerprint":"000000000000abcd","artifacts":[{"name":"a","output":"a.txt","fingerprint":"000000000000abcd","content_hash":"0000000000000001","wall_ms":5,"status":"fresh","deps":[]}]}"#;
        let manifest = Manifest::from_json(legacy).unwrap();
        assert_eq!(manifest.entry("a").unwrap().model_version, 0);
    }

    #[test]
    fn changed_model_version_invalidates_node() {
        let dir = tmp_dir("modelver");
        let make = |version: u64| {
            Dag::new(vec![ArtifactNode::artifact("a", "a.txt", &[], || {
                Ok("alpha\n".to_string())
            })
            .with_model_version(version)])
            .unwrap()
        };
        execute(&make(1), &opts(&dir)).unwrap();
        // Same model version: skip.
        let report = execute(&make(1), &opts(&dir)).unwrap();
        assert_eq!(report.count(NodeStatus::Skipped), 1);
        assert_eq!(report.manifest.entry("a").unwrap().model_version, 1);
        // Deployed predictor model changed (hot-swap producing a different
        // version fingerprint): the cached artifact is stale even though
        // the campaign fingerprint and output bytes are unchanged.
        let report = execute(&make(2), &opts(&dir)).unwrap();
        assert_eq!(report.count(NodeStatus::Fresh), 1);
        assert_eq!(report.manifest.entry("a").unwrap().model_version, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_workers_budget() {
        assert_eq!(default_workers(8, 1), 8);
        assert_eq!(default_workers(8, 4), 2);
        assert_eq!(default_workers(2, 16), 1);
        assert_eq!(default_workers(0, 0), 1);
    }

    #[test]
    fn write_atomic_creates_parents_and_replaces() {
        let dir = tmp_dir("atomic");
        let path = dir.join("deep").join("file.txt");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        fs::remove_dir_all(&dir).ok();
    }
}
