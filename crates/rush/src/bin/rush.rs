//! `rush` — the command-line face of the pipeline.
//!
//! The paper's deployment is a sequence of offline steps (collect counters,
//! train, pickle the model, point the scheduler at it); this binary exposes
//! the same steps over files:
//!
//! ```text
//! rush collect  --days 30 --out campaign.txt        # run the control-job campaign
//! rush evaluate --campaign campaign.txt             # Fig.-3 model comparison
//! rush train    --campaign campaign.txt --out model.txt
//! rush info     --model model.txt                   # inspect an exported model
//! rush schedule --campaign campaign.txt --experiment ADAA --trials 3
//! ```
//!
//! Every command is deterministic given `--seed`.

use rush_core::campaign_io;
use rush_core::checkpoint::CheckpointManager;
use rush_core::collect::{run_campaign, CampaignData};
use rush_core::config::CampaignConfig;
use rush_core::experiments::{
    build_trial_engine, run_comparison, run_trial_raw, Experiment, ExperimentSettings, PolicyKind,
};
use rush_core::labels::{build_dataset, LabelScheme, NodeScope};
use rush_core::pipeline::{build_reference, train_final_with_scheme};
use rush_core::report::{fmt, robustness_table, TextTable};
use rush_ml::codec;
use rush_ml::model::{Classifier, ModelKind};
use rush_ml::select::{compare_models, select_best};
use rush_sched::audit::{AuditConfig, AuditPolicy};
use rush_simkit::fault::FaultConfig;
use rush_simkit::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
rush — resource-utilization-aware scheduling pipeline

USAGE:
    rush <command> [options]

COMMANDS:
    collect    run the control-job campaign and write it to a file
               --days N (30)  --seed N  --out FILE (campaign.txt)
    evaluate   compare the four model families on a campaign (Fig. 3)
               --campaign FILE  --seed N
    train      train and export the scheduler's model
               --campaign FILE  --out FILE (model.txt)
               --kind adaboost|decision-forest|extra-trees|knn
               --scheme binary|three-class  --seed N
    info       describe an exported model file
               --model FILE
    schedule   run a FCFS+EASY vs RUSH comparison on a campaign
               --campaign FILE  --experiment ADAA|ADPA|PDPA|WS|SS
               --trials N (3)  --jobs N  --seed N
               fault injection (off unless enabled):
               --fault-seed N (0)        seed of the fault timeline
               --node-mtbf MINS          enable node crashes, mean time
                                         between failures per node
               --node-mttr MINS (5)      repair time of a crashed node
               --telemetry-blackout MINS enable telemetry blackouts, mean
                                         time between windows
               online predictor service (off unless enabled; Rush trials):
               --retrain-every SECS      enable the drift-aware service:
                                         retrain the deployed model on the
                                         completed-job label window every
                                         SECS of simulated time
               --drift-window N (64)     labeled decisions in the drift
                                         detector's rolling accuracy window
               --drift-threshold F (0.15) accuracy degradation that triggers
                                         an off-schedule retrain
               --shadow-decisions N (32) decisions a candidate shadows
                                         before the swap gate is judged
               --shift-at SECS           pin the congestion regime to Storm
                                         from SECS onward (seeded mid-
                                         campaign distribution shift)
               observability (off unless enabled):
               --trace-out FILE          write the RUSH trial-0 structured
                                         event trace as JSON lines; byte-
                                         identical for identical seeds
               --metrics-out FILE        write the trial-0 metrics registry
                                         (a .csv extension selects CSV,
                                         anything else JSON)
               --profile                 print per-scope wall-time totals
                                         to stderr after the run
               crash-safe campaigns (any of these selects a single
               checkpointed RUSH trial instead of the comparison):
               --checkpoint-every SECS   snapshot the engine every SECS of
                                         simulated time (atomic write+rename)
               --checkpoint-dir DIR      checkpoint directory (checkpoints)
               --checkpoint-keep K (3)   checkpoints retained
               --resume PATH             resume from a snapshot file, or from
                                         the newest valid checkpoint when
                                         PATH is a directory (corrupted or
                                         truncated files fall back to the
                                         previous good one)
               --stop-after SECS         stop (and checkpoint) once the sim
                                         clock passes SECS, for later resume
               --audit POLICY            runtime invariant auditor at
                                         checkpoint boundaries:
                                         off|log|fail-fast|repair
               --audit-every-event       audit after every event, not just
                                         at checkpoints
    replay     stream an SWF archive trace (or a synthesized stream tiled
               from it) through the FCFS+EASY engine in bounded memory and
               report utilization + bounded slowdown per estimate source
               --trace FILE              SWF trace to replay
               --lenient                 drop and count malformed trace
                                         lines instead of aborting on the
                                         first (diagnostics to stderr)
               --synthesize N            tile the trace (or the built-in
                                         seed when --trace is absent) into
                                         an N-job stream
               --arrival-scale F (1.0)   compress inter-arrival times by F
               --gap SECS (60)           idle gap between tiles
               --estimates MODE (factor) factor|user|learned|compare
                                         (compare runs all three)
               --train-jobs N (5000)     head-of-stream sample fitting the
                                         learned run-time estimator
               --window SECS (600)       out-of-order submit tolerance
               --cores-per-node N (36)   SWF processors mapped per node
               --max-nodes N (4096)      conversion ceiling; jobs larger
                                         than the machine reject at submit
               --est-factor F (1.5)      global over-estimation factor
               --seed N (7)              machine + engine seed
               --verify-prefix N         first check streaming ≡
                                         materialized on the first N
                                         requests (byte-identical traces)
               --max-rss-mib N           fail if peak RSS exceeds N MiB
    chaos      run a seeded chaos campaign: randomized performance-fault
               scenarios (crashes, stragglers, congestion storms, flaps)
               across the FCFS / FCFS+EASY / RUSH schemes, every run under
               the invariant auditor and the legacy-vs-optimized
               differential check, folded into a resilience report
               --scenarios N (8)  --seed N (42)  --nodes N (64)
               --jobs N (500)     --out FILE (results/chaos_report.json)
               identical invocations write byte-identical reports; exits
               nonzero when the auditor records a violation or the
               tunings diverge
    train-policy  train a learned queue-ordering policy with the seeded
               cross-entropy method over the gym-style scheduling
               environment; identical invocations write byte-identical
               artifacts
               --seed N (42)      --nodes N (32)   --jobs N (120)
               --rounds N (10)    --population N (24)  --elite N (6)
               --episodes N (2)   per-candidate evaluation episodes
               --out FILE (results/policy.txt)
               --trace-out FILE   write per-round training events as
                                  JSON lines
    policy-eval   head-to-head evaluation: FCFS / EASY / RUSH / learned
               on the same seeded workloads, written as a canonical-JSON
               report (makespan, response, bounded slowdown, utilization)
               --policy FILE      trained artifact from train-policy
               --seed N (42)      --nodes N (32)   --jobs N (120)
               --episodes N (2)   --out FILE (results/policy_report.json)
               --assert-learned-beats-fcfs  exit nonzero unless the
                                  learned policy's mean bounded slowdown
                                  beats strict FCFS
               --trace-out FILE   write per-scheme evaluation events as
                                  JSON lines
    help       print this message
";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "profile",
    "audit-every-event",
    "lenient",
    "assert-learned-beats-fcfs",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) => c,
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "collect" => cmd_collect(&options),
        "evaluate" => cmd_evaluate(&options),
        "train" => cmd_train(&options),
        "info" => cmd_info(&options),
        "schedule" => cmd_schedule(&options),
        "replay" => cmd_replay(&options),
        "chaos" => cmd_chaos(&options),
        "train-policy" => cmd_train_policy(&options),
        "policy-eval" => cmd_policy_eval(&options),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` pairs.
type Options = HashMap<String, String>;

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found '{arg}'"))?;
        if BOOLEAN_FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

fn get_u64(options: &Options, key: &str, default: u64) -> Result<u64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: expected integer, got '{v}'")),
    }
}

fn get_f64(options: &Options, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: expected number, got '{v}'")),
    }
}

/// Parses an optional `--key MINUTES` duration.
fn get_mins(options: &Options, key: &str) -> Result<Option<SimDuration>, String> {
    options
        .get(key)
        .map(|v| {
            v.parse::<u64>()
                .map(SimDuration::from_mins)
                .map_err(|_| format!("--{key}: expected minutes as integer, got '{v}'"))
        })
        .transpose()
}

fn load_campaign(options: &Options) -> Result<CampaignData, String> {
    let path = options
        .get("campaign")
        .ok_or("--campaign FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // The file carries its own run data; the attached config only matters
    // for provenance, so reuse the default with the recorded day count
    // unknowable — decode requires *a* config.
    campaign_io::decode(&text, &CampaignConfig::default())
}

fn cmd_collect(options: &Options) -> Result<(), String> {
    let days = get_u64(options, "days", 30)? as u32;
    let seed = get_u64(options, "seed", 0xC0FFEE)?;
    let out = options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "campaign.txt".to_string());
    let config = CampaignConfig {
        days,
        seed,
        storm_days: Some((days * 5 / 8, days * 3 / 4)),
        ..CampaignConfig::default()
    };
    eprintln!("collecting {days}-day campaign (seed {seed:#x})...");
    let data = run_campaign(&config);
    std::fs::write(&out, campaign_io::encode(&data))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} control runs to {out}", data.runs.len());
    let stats = data.runtime_stats();
    let mut apps: Vec<_> = stats.iter().collect();
    apps.sort_by_key(|(app, _)| app.index());
    for (app, (mean, std)) in apps {
        println!(
            "  {app:8} mean {mean:7.1}s  std {std:6.1}s  rel {:.3}",
            std / mean
        );
    }
    Ok(())
}

fn cmd_evaluate(options: &Options) -> Result<(), String> {
    let campaign = load_campaign(options)?;
    let seed = get_u64(options, "seed", 7)?;
    println!(
        "campaign: {} runs; evaluating with leave-one-application-out CV...",
        campaign.runs.len()
    );
    let mut table = TextTable::new(["model", "f1_all_nodes", "f1_job_nodes"]);
    let all = build_dataset(&campaign, NodeScope::AllNodes, LabelScheme::Binary);
    let job = build_dataset(&campaign, NodeScope::JobNodes, LabelScheme::Binary);
    let scores_all = compare_models(&all, seed);
    let scores_job = compare_models(&job, seed);
    for (a, j) in scores_all.iter().zip(&scores_job) {
        table.row([
            a.kind.name().to_string(),
            fmt(a.mean_f1(), 3),
            fmt(j.mean_f1(), 3),
        ]);
    }
    println!("{}", table.render());
    println!("best (job scope): {}", select_best(&scores_job));
    Ok(())
}

fn cmd_train(options: &Options) -> Result<(), String> {
    let campaign = load_campaign(options)?;
    let seed = get_u64(options, "seed", 7)?;
    let out = options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "model.txt".to_string());
    let kind = match options.get("kind").map(String::as_str) {
        None => ModelKind::AdaBoost,
        Some(name) => {
            ModelKind::from_name(name).ok_or_else(|| format!("unknown model kind '{name}'"))?
        }
    };
    let scheme = match options.get("scheme").map(String::as_str) {
        None | Some("three-class") => LabelScheme::ThreeClass,
        Some("binary") => LabelScheme::Binary,
        Some(other) => return Err(format!("unknown scheme '{other}'")),
    };
    eprintln!(
        "training {kind} ({scheme:?}) on {} runs...",
        campaign.runs.len()
    );
    let model = train_final_with_scheme(&campaign, None, kind, scheme, seed);
    std::fs::write(&out, codec::encode(&model)).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} model ({} features, {} classes) to {out}",
        model.kind(),
        model.n_features(),
        model.n_classes()
    );
    Ok(())
}

fn cmd_info(options: &Options) -> Result<(), String> {
    let path = options.get("model").ok_or("--model FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let model = codec::decode(&text).map_err(|e| e.to_string())?;
    println!("kind:       {}", model.kind());
    println!("features:   {}", model.n_features());
    println!("classes:    {}", model.n_classes());
    if let Some(imp) = model.feature_importances() {
        let schema = rush_telemetry::schema::FeatureSchema::table_one();
        let mut ranked: Vec<(usize, f64)> = imp.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        println!("top features by importance:");
        for (idx, value) in ranked.into_iter().take(10) {
            let name = if model.n_features() == schema.len() {
                schema.names()[idx].clone()
            } else {
                format!("feature {idx}")
            };
            println!("  {name:32} {value:.4}");
        }
    }
    Ok(())
}

fn cmd_schedule(options: &Options) -> Result<(), String> {
    let campaign = load_campaign(options)?;
    let seed = get_u64(options, "seed", 0xE0)?;
    let trials = get_u64(options, "trials", 3)? as usize;
    let jobs = options
        .get("jobs")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--jobs: bad integer '{v}'"))
        })
        .transpose()?;
    let experiment = match options
        .get("experiment")
        .map(String::as_str)
        .unwrap_or("ADAA")
        .to_ascii_uppercase()
        .as_str()
    {
        "ADAA" => Experiment::Adaa,
        "ADPA" => Experiment::Adpa,
        "PDPA" => Experiment::Pdpa,
        "WS" => Experiment::Ws,
        "SS" => Experiment::Ss,
        other => return Err(format!("unknown experiment '{other}'")),
    };
    let mut faults = FaultConfig {
        seed: get_u64(options, "fault-seed", 0)?,
        node_mtbf: get_mins(options, "node-mtbf")?,
        blackout_mtbf: get_mins(options, "telemetry-blackout")?,
        ..FaultConfig::none()
    };
    if let Some(mttr) = get_mins(options, "node-mttr")? {
        faults.node_mttr = mttr;
    }
    let profile = options.contains_key("profile");
    if profile {
        rush_obs::profile::set_enabled(true);
    }
    let trace_out = options.get("trace-out");
    let metrics_out = options.get("metrics-out");
    let audit = AuditConfig {
        policy: match options.get("audit").map(String::as_str) {
            None | Some("off") => AuditPolicy::Off,
            Some("log") => AuditPolicy::Log,
            Some("fail-fast") => AuditPolicy::FailFast,
            Some("repair") => AuditPolicy::Repair,
            Some(other) => return Err(format!("unknown audit policy '{other}'")),
        },
        every_event: options.contains_key("audit-every-event"),
    };
    let mut service = rush_sched::service::ServiceConfig {
        retrain_every: SimDuration::from_secs(get_u64(options, "retrain-every", 0)?),
        drift_threshold: get_f64(options, "drift-threshold", 0.15)?,
        ..rush_sched::service::ServiceConfig::default()
    };
    service.drift_window =
        get_u64(options, "drift-window", u64::from(service.drift_window))? as u32;
    service.shadow_decisions = get_u64(
        options,
        "shadow-decisions",
        u64::from(service.shadow_decisions),
    )? as u32;
    let shift_at = options
        .get("shift-at")
        .map(|v| {
            v.parse::<u64>()
                .map(SimTime::from_secs)
                .map_err(|_| format!("--shift-at: expected seconds as integer, got '{v}'"))
        })
        .transpose()?;
    let settings = ExperimentSettings {
        trials,
        base_seed: seed,
        job_count_override: jobs,
        faults,
        trace_capacity: (trace_out.is_some() || metrics_out.is_some())
            .then_some(rush_obs::tracer::DEFAULT_CAPACITY),
        audit,
        service,
        shift_at,
        ..ExperimentSettings::default()
    };
    let checkpointed = ["checkpoint-every", "checkpoint-dir", "resume", "stop-after"]
        .iter()
        .any(|k| options.contains_key(*k));
    if checkpointed {
        return run_checkpointed(&campaign, experiment, &settings, options);
    }
    eprintln!(
        "running {experiment}: {} jobs x {trials} trials x 2 policies...",
        jobs.unwrap_or(experiment.job_count())
    );
    let comparison = run_comparison(experiment, &campaign, &settings);

    let (fv, rv) = comparison.mean_variation_runs();
    let (fm, rm) = comparison.mean_makespan();
    let mut table = TextTable::new(["metric", "fcfs_easy", "rush"]);
    table.row(["variation runs".to_string(), fmt(fv, 1), fmt(rv, 1)]);
    table.row(["makespan (s)".to_string(), fmt(fm, 0), fmt(rm, 0)]);
    let wait = |outs: &[rush_core::experiments::TrialOutcome]| {
        outs.iter().map(|t| t.metrics.mean_wait_secs).sum::<f64>() / outs.len() as f64
    };
    table.row([
        "mean wait (s)".to_string(),
        fmt(wait(&comparison.fcfs), 1),
        fmt(wait(&comparison.rush), 1),
    ]);
    let skips = comparison.rush.iter().map(|t| t.total_skips).sum::<u64>() as f64
        / comparison.rush.len() as f64;
    table.row([
        "rush delays/trial".to_string(),
        "0".to_string(),
        fmt(skips, 1),
    ]);
    println!("{}", table.render());
    if !settings.faults.is_inert() {
        println!("fault robustness (means over trials):");
        println!("{}", robustness_table(&comparison).render());
    }
    if trace_out.is_some() || metrics_out.is_some() {
        // A dedicated single-threaded re-run of trial 0 under the RUSH
        // policy: the comparison above runs trials on rayon workers and
        // discards per-trial traces, while this run is a pure function of
        // the seed — identical seeds yield byte-identical exports.
        let reference = build_reference(&campaign);
        let (result, _) = run_trial_raw(
            experiment,
            PolicyKind::Rush,
            &campaign,
            &reference,
            &settings,
            0,
        );
        if let Some(path) = trace_out {
            let body = rush_obs::tracer::records_to_jsonl(&result.events);
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} trace events to {path}", result.events.len());
        }
        if let Some(path) = metrics_out {
            let body = if path.ends_with(".csv") {
                result.metrics.to_csv()
            } else {
                result.metrics.to_json()
            };
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote metrics registry to {path}");
        }
    }
    if profile {
        eprint!("{}", rush_obs::profile::report());
    }
    Ok(())
}

/// Seeded chaos campaign (see [`rush_sched::chaos`]): samples randomized
/// performance-fault scenarios, runs each across the three scheduling
/// schemes under the invariant auditor and the differential tuning check,
/// and writes the canonical-JSON resilience report atomically. A pure
/// function of the options: identical invocations produce byte-identical
/// report files.
fn cmd_chaos(options: &Options) -> Result<(), String> {
    use rush_core::campaign::write_atomic;
    use rush_sched::chaos::{run_chaos, ChaosConfig};

    let config = ChaosConfig {
        seed: get_u64(options, "seed", 42)?,
        scenarios: get_u64(options, "scenarios", 8)? as u32,
        nodes: get_u64(options, "nodes", 64)? as u32,
        jobs: get_u64(options, "jobs", 500)? as usize,
    };
    if config.nodes < 8 || !config.nodes.is_multiple_of(8) {
        return Err(format!(
            "--nodes must be a positive multiple of 8, got {}",
            config.nodes
        ));
    }
    if config.scenarios == 0 || config.jobs == 0 {
        return Err("--scenarios and --jobs must be positive".into());
    }
    let out = options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/chaos_report.json".to_string());
    eprintln!(
        "chaos: {} scenarios x 3 schemes x 2 tunings, {} nodes, {} jobs (seed {})...",
        config.scenarios, config.nodes, config.jobs, config.seed
    );
    let report = run_chaos(&config);
    let json = report.to_json();
    write_atomic(Path::new(&out), json.as_bytes())
        .map_err(|e| format!("cannot write {out}: {e}"))?;

    let mut table = TextTable::new([
        "scheme",
        "base_bsld",
        "mean_ratio",
        "worst_ratio",
        "worst_seed",
        "util_drop",
        "violations",
        "agree",
    ]);
    for s in &report.summaries {
        table.row([
            s.scheme.name().to_string(),
            fmt(s.baseline.mean_bounded_slowdown, 3),
            fmt(s.mean_slowdown_ratio, 3),
            fmt(s.worst_slowdown_ratio, 3),
            format!("{:#x}", s.worst_fault_seed),
            fmt(s.worst_utilization_drop, 4),
            s.audit_violations.to_string(),
            if s.tunings_agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("wrote {} bytes to {out}", json.len());

    let violations = report.total_violations();
    if violations > 0 {
        return Err(format!(
            "auditor recorded {violations} invariant violations"
        ));
    }
    if !report.all_tunings_agree() {
        return Err("legacy and optimized tunings diverged under faults".into());
    }
    Ok(())
}

/// Shared environment options of the policy commands.
fn policy_env_config(options: &Options) -> Result<rush_sched::env::SchedEnvConfig, String> {
    let config = rush_sched::env::SchedEnvConfig {
        seed: get_u64(options, "seed", 42)?,
        nodes: get_u64(options, "nodes", 32)? as u32,
        jobs: get_u64(options, "jobs", 120)? as usize,
        ..rush_sched::env::SchedEnvConfig::default()
    };
    if config.nodes < 8 || !config.nodes.is_multiple_of(8) {
        return Err(format!(
            "--nodes must be a positive multiple of 8, got {}",
            config.nodes
        ));
    }
    if config.jobs == 0 {
        return Err("--jobs must be positive".into());
    }
    Ok(config)
}

/// Renders observability events as a JSON-lines file (one canonical line
/// per event, sequence numbers from zero, timestamps at the epoch — these
/// are offline pipeline events, not simulation events).
fn write_event_lines(path: &str, events: &[rush_obs::event::ObsEvent]) -> Result<(), String> {
    use rush_obs::event::EventRecord;
    use rush_simkit::time::SimTime;
    let mut body = String::new();
    for (seq, event) in events.iter().enumerate() {
        let record = EventRecord {
            seq: seq as u64,
            at: SimTime::ZERO,
            event: *event,
        };
        body.push_str(&record.to_json_line());
        body.push('\n');
    }
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Mean bounded slowdown in milli-units for integer-only trace payloads.
fn bsld_milli(bsld: f64) -> u64 {
    (bsld.max(0.0) * 1000.0).round() as u64
}

/// Trains the learned queue-ordering policy (see [`rush_sched::env`]):
/// seeded CEM over sort-weight vectors, scored by negated mean bounded
/// slowdown on seeded episodes. Identical invocations write byte-identical
/// artifacts.
fn cmd_train_policy(options: &Options) -> Result<(), String> {
    use rush_core::campaign::write_atomic;
    use rush_obs::event::ObsEvent;
    use rush_sched::env::{train_policy, TrainConfig};

    let config = TrainConfig {
        env: policy_env_config(options)?,
        rounds: get_u64(options, "rounds", 10)? as u32,
        population: get_u64(options, "population", 24)? as usize,
        elite: get_u64(options, "elite", 6)? as usize,
        episodes: get_u64(options, "episodes", 2)?,
    };
    if config.rounds == 0 || config.population == 0 {
        return Err("--rounds and --population must be positive".into());
    }
    if config.elite == 0 || config.elite > config.population {
        return Err(format!(
            "--elite must be in 1..=population, got {} of {}",
            config.elite, config.population
        ));
    }
    let out = options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/policy.txt".to_string());
    eprintln!(
        "train-policy: {} rounds x {} candidates x {} episodes, {} nodes, {} jobs (seed {})...",
        config.rounds,
        config.population,
        config.episodes,
        config.env.nodes,
        config.env.jobs,
        config.env.seed
    );
    let (artifact, outcome) = train_policy(&config);
    write_atomic(Path::new(&out), codec::encode_policy(&artifact).as_bytes())
        .map_err(|e| format!("cannot write {out}: {e}"))?;

    let mut table = TextTable::new(["round", "best_bsld", "elite_bsld"]);
    for r in &outcome.rounds {
        table.row([
            r.round.to_string(),
            fmt(-r.best_score, 3),
            fmt(-r.elite_score, 3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "best mean bounded slowdown {} after {} evaluations",
        fmt(-outcome.best_score, 3),
        outcome.evaluations
    );
    println!("wrote policy artifact to {out}");

    if let Some(path) = options.get("trace-out") {
        let events: Vec<ObsEvent> = outcome
            .rounds
            .iter()
            .map(|r| ObsEvent::PolicyTrainRound {
                round: r.round,
                best_bsld_milli: bsld_milli(-r.best_score),
                elite_bsld_milli: bsld_milli(-r.elite_score),
            })
            .collect();
        write_event_lines(path, &events)?;
        println!("wrote training trace to {path}");
    }
    Ok(())
}

/// Head-to-head policy evaluation (see [`rush_sched::env::head_to_head`]):
/// FCFS, EASY, RUSH and the trained learned policy run the same seeded
/// workloads; the per-scheme service metrics land in a canonical-JSON
/// report. Identical invocations write byte-identical reports.
fn cmd_policy_eval(options: &Options) -> Result<(), String> {
    use rush_core::campaign::write_atomic;
    use rush_obs::event::ObsEvent;
    use rush_sched::env::head_to_head;
    use rush_sched::SORT_FACTORS;

    let env = policy_env_config(options)?;
    let episodes = get_u64(options, "episodes", 2)?.max(1);
    let path = options.get("policy").ok_or("--policy FILE is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let artifact = codec::decode_policy(&text).map_err(|e| format!("{path}: {e}"))?;
    if artifact.weights.len() != SORT_FACTORS {
        return Err(format!(
            "{path}: artifact holds {} weights; this build scores {SORT_FACTORS} features",
            artifact.weights.len()
        ));
    }
    let mut weights = [0.0; SORT_FACTORS];
    weights.copy_from_slice(&artifact.weights);
    let out = options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/policy_report.json".to_string());
    eprintln!(
        "policy-eval: 4 schemes x {episodes} episodes, {} nodes, {} jobs (seed {})...",
        env.nodes, env.jobs, env.seed
    );
    let report = head_to_head(&env, weights, episodes);
    let json = report.to_json();
    write_atomic(Path::new(&out), json.as_bytes())
        .map_err(|e| format!("cannot write {out}: {e}"))?;

    let mut table = TextTable::new([
        "scheme",
        "makespan_s",
        "mean_response_s",
        "mean_bsld",
        "utilization",
    ]);
    for s in &report.schemes {
        table.row([
            s.scheme.name().to_string(),
            fmt(s.stats.makespan_s, 1),
            fmt(s.stats.mean_response_s, 1),
            fmt(s.stats.mean_bounded_slowdown, 3),
            fmt(s.stats.utilization, 4),
        ]);
    }
    println!("{}", table.render());
    println!("wrote {} bytes to {out}", json.len());

    if let Some(path) = options.get("trace-out") {
        let events: Vec<ObsEvent> = report
            .schemes
            .iter()
            .enumerate()
            .map(|(i, s)| ObsEvent::PolicyEvaluated {
                scheme: i as u32,
                bsld_milli: bsld_milli(s.stats.mean_bounded_slowdown),
                episodes: episodes as u32,
            })
            .collect();
        write_event_lines(path, &events)?;
        println!("wrote evaluation trace to {path}");
    }

    if options.contains_key("assert-learned-beats-fcfs") && !report.learned_beats_fcfs() {
        return Err(format!(
            "learned policy did not beat FCFS on mean bounded slowdown ({} vs {})",
            fmt(
                report
                    .scheme(rush_sched::env::EvalScheme::Learned)
                    .mean_bounded_slowdown,
                3
            ),
            fmt(
                report
                    .scheme(rush_sched::env::EvalScheme::Fcfs)
                    .mean_bounded_slowdown,
                3
            )
        ));
    }
    Ok(())
}

/// Streaming trace replay (see [`rush_core::replay`]): SWF file and/or
/// synthesized stream → reorder window → streaming engine, with per-job
/// result folding so memory tracks the live-job population. Ingest
/// diagnostics are printed here — the library stays silent.
fn cmd_replay(options: &Options) -> Result<(), String> {
    use rush_core::replay::{self, EstimatesMode, JobStream, ReplaySettings, REPLAY_MACHINE_NODES};
    use rush_workloads::swf::SwfReader;
    use rush_workloads::synth::{synthesize, SynthSpec};
    use std::io::BufReader;

    let trace = options.get("trace").cloned();
    let lenient = options.contains_key("lenient");
    let target = match options.get("synthesize") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--synthesize: expected job count, got '{v}'"))?,
        ),
    };
    if trace.is_none() && target.is_none() {
        return Err("replay needs --trace FILE, --synthesize N, or both".into());
    }
    let spec = SynthSpec {
        target_jobs: target.unwrap_or(0),
        arrival_scale: get_f64(options, "arrival-scale", 1.0)?,
        gap_secs: get_u64(options, "gap", 60)?,
    };
    if spec.arrival_scale <= 0.0 || !spec.arrival_scale.is_finite() {
        return Err("--arrival-scale must be a positive factor".into());
    }
    let settings = ReplaySettings {
        seed: get_u64(options, "seed", 7)?,
        est_factor: get_f64(options, "est-factor", 1.5)?,
        cores_per_node: get_u64(options, "cores-per-node", 36)? as u32,
        max_nodes: get_u64(options, "max-nodes", 4096)? as u32,
        reorder_window: SimDuration::from_secs(get_u64(options, "window", 600)?),
        train_jobs: get_u64(options, "train-jobs", 5_000)? as usize,
        fold: true,
    };
    let modes: Vec<EstimatesMode> = match options.get("estimates").map(String::as_str) {
        None | Some("factor") => vec![EstimatesMode::Factor],
        Some("user") => vec![EstimatesMode::User],
        Some("learned") => vec![EstimatesMode::Learned],
        Some("compare") => vec![
            EstimatesMode::Factor,
            EstimatesMode::User,
            EstimatesMode::Learned,
        ],
        Some(other) => return Err(format!("unknown estimates mode '{other}'")),
    };

    // Ingest pass: validate the trace once, surface diagnostics here (the
    // parser never prints), and materialize the synthesis seed if tiling.
    let seed_jobs: Option<Vec<rush_workloads::swf::SwfJob>> = match &trace {
        None => target.map(|_| replay::builtin_seed()),
        Some(path) => {
            let open = || -> Result<_, String> {
                let file =
                    std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
                Ok(BufReader::new(file))
            };
            let mut jobs = Vec::new();
            if lenient {
                let mut reader = SwfReader::lenient(open()?);
                for item in &mut reader {
                    jobs.push(item.expect("lenient readers never yield Err"));
                }
                let summary = reader.into_summary();
                eprintln!(
                    "ingest: kept {} jobs, dropped {} malformed + {} unusable",
                    summary.kept, summary.dropped_malformed, summary.dropped_unusable
                );
                for e in &summary.errors {
                    eprintln!("  {e}");
                }
                if summary.errors_truncated() {
                    eprintln!(
                        "  ... and {} more",
                        summary.dropped_malformed - summary.errors.len() as u64
                    );
                }
            } else {
                for item in SwfReader::strict(open()?) {
                    jobs.push(item.map_err(|e| format!("{e} (use --lenient to continue)"))?);
                }
            }
            if jobs.is_empty() {
                return Err(format!("{path}: no usable jobs"));
            }
            Some(jobs)
        }
    };

    let make_stream = || -> JobStream {
        let seed = seed_jobs.clone().expect("validated above");
        match target {
            Some(_) => Box::new(synthesize(seed, spec)),
            None => Box::new(seed.into_iter()),
        }
    };

    if let Some(prefix) = options.get("verify-prefix") {
        let prefix: usize = prefix
            .parse()
            .map_err(|_| format!("--verify-prefix: expected count, got '{prefix}'"))?;
        let checked = replay::verify_prefix(make_stream(), &settings, prefix)?;
        println!("verified streaming ≡ materialized on a {checked}-request prefix");
    }

    let summaries = replay::compare_estimates(make_stream, &settings, &modes);

    let mut table = TextTable::new([
        "estimates",
        "settled",
        "completed",
        "rejected",
        "utilization",
        "mean_wait_s",
        "mean_bsld",
        "max_bsld",
    ]);
    for s in &summaries {
        table.row([
            s.mode.name().to_string(),
            s.stats.settled().to_string(),
            s.stats.completed.to_string(),
            s.stats.rejected.to_string(),
            fmt(s.utilization, 4),
            fmt(s.stats.mean_wait_secs(), 1),
            fmt(s.stats.mean_bounded_slowdown(), 3),
            fmt(s.stats.bounded_slowdown_max, 2),
        ]);
    }
    println!("{}", table.render());
    for s in &summaries {
        if s.clamped_submits > 0 || s.dropped_no_runtime > 0 {
            eprintln!(
                "{}: {} submits clamped by the reorder window, {} jobs dropped (no run time)",
                s.mode.name(),
                s.clamped_submits,
                s.dropped_no_runtime
            );
        }
        if let Some(mae) = s.model_mae_secs {
            println!(
                "learned estimator: trained on {} jobs, in-sample MAE {}s",
                settings.train_jobs.min(s.stats.settled() as usize),
                fmt(mae, 1)
            );
        }
    }

    let by_mode = |m: EstimatesMode| summaries.iter().find(|s| s.mode == m);
    if let (Some(user), Some(learned)) = (
        by_mode(EstimatesMode::User),
        by_mode(EstimatesMode::Learned),
    ) {
        println!(
            "learned vs user estimates: utilization {:+.4}, mean wait {:+.1}s, \
             mean bounded slowdown {:+.3}",
            learned.utilization - user.utilization,
            learned.stats.mean_wait_secs() - user.stats.mean_wait_secs(),
            learned.stats.mean_bounded_slowdown() - user.stats.mean_bounded_slowdown(),
        );
    }
    println!(
        "machine: {REPLAY_MACHINE_NODES} nodes; makespan {}s; peak queue {}",
        fmt(summaries[0].makespan_secs, 0),
        summaries.iter().map(|s| s.max_queue_len).max().unwrap_or(0)
    );

    if let Some(rss) = replay::peak_rss_mib() {
        println!("peak rss: {rss} MiB");
        if let Some(limit) = options.get("max-rss-mib") {
            let limit: u64 = limit
                .parse()
                .map_err(|_| format!("--max-rss-mib: expected MiB, got '{limit}'"))?;
            if rss > limit {
                return Err(format!(
                    "peak RSS {rss} MiB exceeds the {limit} MiB ceiling"
                ));
            }
        }
    } else if options.contains_key("max-rss-mib") {
        return Err("--max-rss-mib: /proc/self/status is unavailable".into());
    }
    Ok(())
}

/// The crash-safe campaign path: a single RUSH trial driven event by event,
/// snapshotting the engine at simulated-time boundaries, optionally resuming
/// from an earlier snapshot, optionally stopping early for a later resume.
///
/// Resumption is exact: the engine rejects snapshots from a different seed
/// or configuration, and a resumed run's remaining event trace is identical
/// to the uninterrupted run's.
fn run_checkpointed(
    campaign: &CampaignData,
    experiment: Experiment,
    settings: &ExperimentSettings,
    options: &Options,
) -> Result<(), String> {
    let every = options
        .get("checkpoint-every")
        .map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|&s| s > 0)
                .ok_or_else(|| format!("--checkpoint-every: expected positive seconds, got '{v}'"))
        })
        .transpose()?
        .map(SimDuration::from_secs);
    let keep = get_u64(options, "checkpoint-keep", 3)? as usize;
    let dir = options
        .get("checkpoint-dir")
        .cloned()
        .unwrap_or_else(|| "checkpoints".to_string());
    let stop_at = options
        .get("stop-after")
        .map(|v| {
            v.parse::<u64>()
                .map(SimTime::from_secs)
                .map_err(|_| format!("--stop-after: expected seconds as integer, got '{v}'"))
        })
        .transpose()?;

    let (mut engine, requests) =
        build_trial_engine(experiment, PolicyKind::Rush, campaign, settings, 0);
    engine.prepare(&requests);

    if let Some(path) = options.get("resume") {
        let bytes = if Path::new(path).is_dir() {
            let mgr = CheckpointManager::new(path, keep).map_err(|e| e.to_string())?;
            let (found, bytes) = mgr
                .load_latest_valid()
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("no valid checkpoint in {path}"))?;
            eprintln!("resuming from {}", found.display());
            bytes
        } else {
            std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        engine
            .resume(&bytes)
            .map_err(|e| format!("cannot resume: {e}"))?;
        let (settled, total) = engine.progress();
        eprintln!(
            "resumed at {} ({settled}/{total} jobs settled)",
            engine.now()
        );
    }

    let manager = every
        .map(|_| CheckpointManager::new(&dir, keep))
        .transpose()
        .map_err(|e| e.to_string())?;
    let audit_at_checkpoints = settings.audit.enabled() && !settings.audit.every_event;
    let mut next_ckpt = every.map(|d| engine.now() + d);

    let checkpoint =
        |engine: &mut rush_sched::SchedulerEngine, mgr: &CheckpointManager| -> Result<(), String> {
            let now = engine.now();
            if audit_at_checkpoints {
                engine.audit_now(now);
            }
            let bytes = engine.snapshot();
            let path = mgr
                .write(now.as_micros(), &bytes)
                .map_err(|e| e.to_string())?;
            let (settled, total) = engine.progress();
            eprintln!(
                "checkpoint at {now} ({settled}/{total} jobs settled) -> {}",
                path.display()
            );
            Ok(())
        };

    while let Some(now) = engine.step() {
        if let (Some(mgr), Some(next)) = (&manager, next_ckpt) {
            if now >= next {
                checkpoint(&mut engine, mgr)?;
                next_ckpt = Some(now + every.expect("manager implies interval"));
            }
        }
        if stop_at.is_some_and(|stop| now >= stop) && !engine.is_done() {
            if let Some(mgr) = &manager {
                checkpoint(&mut engine, mgr)?;
            }
            let (settled, total) = engine.progress();
            println!(
                "stopped at {} with {settled}/{total} jobs settled; resume with --resume",
                engine.now()
            );
            return Ok(());
        }
    }

    let result = engine.finalize();
    // Trace/metrics exports mirror the plain path: the tracer rides in
    // every snapshot, so a resumed run's full export is byte-identical to
    // the uninterrupted run's — which is exactly what the CI drift lane
    // compares.
    if let Some(path) = options.get("trace-out") {
        let body = rush_obs::tracer::records_to_jsonl(&result.events);
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {} trace events to {path}", result.events.len());
    }
    if let Some(path) = options.get("metrics-out") {
        let body = if path.ends_with(".csv") {
            result.metrics.to_csv()
        } else {
            result.metrics.to_json()
        };
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote metrics registry to {path}");
    }
    let mut table = TextTable::new(["metric", "value"]);
    table.row(["completed".to_string(), result.completed.len().to_string()]);
    table.row(["failed".to_string(), result.failed.len().to_string()]);
    table.row([
        "makespan (s)".to_string(),
        fmt(result.makespan().as_secs_f64(), 0),
    ]);
    table.row(["rush delays".to_string(), result.total_skips.to_string()]);
    table.row(["requeues".to_string(), result.requeues.to_string()]);
    table.row([
        "node failures".to_string(),
        result.node_failures.to_string(),
    ]);
    if let Some(v) = result.metrics.counter_by_name("audit.violations") {
        table.row(["audit violations".to_string(), v.to_string()]);
    }
    println!("{}", table.render());
    Ok(())
}
