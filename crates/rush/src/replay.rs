//! Streaming trace replay: archive traces (or synthesized streams tiled
//! from them) through the scheduler engine in bounded memory.
//!
//! This is the driver behind `rush replay`. It composes the pieces the
//! library crates expose — lenient SWF ingest ([`rush_workloads::swf`]),
//! trace synthesis ([`rush_workloads::synth`]), the reorder window and
//! streaming engine seeding ([`rush_sched::source`]) and the learned
//! run-time estimator ([`rush_ml::runtime`]) — into end-to-end replays
//! whose peak memory scales with the *live* job population, not the trace
//! length. Per-job result vectors are folded into [`ReplayStats`]
//! aggregates, so a million-job replay reports utilization and bounded
//! slowdown without ever materializing a million `CompletedJob`s.
//!
//! The interesting experiment is the estimate source: backfill planned
//! with the trace's own user estimates (SWF field 9) versus estimates
//! predicted by a regression tree trained on submit-time metadata from the
//! head of the same trace. [`compare_estimates`] runs both (plus the
//! global-factor baseline) over identical streams and reports the deltas.

use rush_cluster::machine::{Machine, MachineConfig};
use rush_ml::runtime::{submit_features, RuntimeModel, RuntimeModelConfig};
use rush_sched::engine::{ReplayStats, ScheduleResult, SchedulerConfig, SchedulerEngine};
use rush_sched::job::EstimateSource;
use rush_sched::predictor::NeverVaries;
use rush_sched::source::{IterSource, JobSource, ReorderWindow};
use rush_simkit::time::SimDuration;
use rush_workloads::jobgen::JobRequest;
use rush_workloads::swf::{self, SwfJob};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A boxed, sendable trace stream (the engine's source must be `Send`).
pub type JobStream = Box<dyn Iterator<Item = SwfJob> + Send>;

/// Where replayed backfill estimates come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatesMode {
    /// Global over-estimation factor (the paper's model).
    Factor,
    /// The trace's own per-job user estimates (SWF field 9).
    User,
    /// Regression-tree predictions from submit-time metadata.
    Learned,
}

impl EstimatesMode {
    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EstimatesMode::Factor => "factor",
            EstimatesMode::User => "user",
            EstimatesMode::Learned => "learned",
        }
    }
}

/// Replay parameters shared by every estimate mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplaySettings {
    /// Engine + machine seed.
    pub seed: u64,
    /// Global over-estimation factor (also the fallback for jobs without
    /// a per-job estimate).
    pub est_factor: f64,
    /// Cores per node when mapping SWF processor counts to nodes.
    pub cores_per_node: u32,
    /// Node-count ceiling for the conversion. Jobs above the *machine's*
    /// size are rejected at submit time and counted, not panicked on.
    pub max_nodes: u32,
    /// Out-of-order tolerance for trace submit times.
    pub reorder_window: SimDuration,
    /// Kept jobs from the head of the stream used to fit the learned
    /// estimator (training jobs still replay like any other).
    pub train_jobs: usize,
    /// Fold per-job completion records into aggregates (bounded memory).
    /// Leave false when the caller needs `ScheduleResult::completed`.
    pub fold: bool,
}

impl Default for ReplaySettings {
    fn default() -> Self {
        ReplaySettings {
            seed: 7,
            est_factor: 1.5,
            cores_per_node: 36,
            max_nodes: 4096,
            reorder_window: SimDuration::from_mins(10),
            train_jobs: 5_000,
            fold: true,
        }
    }
}

/// One replayed stream, reduced to the numbers the report prints.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Which estimate source drove backfill.
    pub mode: EstimatesMode,
    /// Folded per-job aggregates.
    pub stats: ReplayStats,
    /// Machine utilization over the makespan.
    pub utilization: f64,
    /// Makespan, seconds.
    pub makespan_secs: f64,
    /// Largest queue observed (a proxy for peak live-job memory).
    pub max_queue_len: usize,
    /// Trace jobs whose submit order violated the reorder window and were
    /// clamped to the release floor.
    pub clamped_submits: u64,
    /// Jobs dropped at conversion for carrying no run time at all.
    pub dropped_no_runtime: u64,
    /// In-sample MAE of the learned estimator, seconds (learned mode).
    pub model_mae_secs: Option<f64>,
}

/// Nodes in the replay machine (the experiment pod).
pub const REPLAY_MACHINE_NODES: usize = 512;

/// The experiment-pod machine and a replay-tuned scheduler: sampling and
/// prediction idled (replay measures backfill quality, not the RUSH
/// policy), EASY backfill, FCFS order.
fn replay_engine(settings: &ReplaySettings, estimates: EstimateSource) -> SchedulerEngine {
    let machine = Machine::new(MachineConfig::experiment_pod(settings.seed));
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig {
            skip_threshold: 0,
            est_factor: settings.est_factor,
            estimates,
            // The replay baseline never consults the predictor; idle the
            // counter sampling and widen the telemetry-quality gate so an
            // arbitrarily long replay never pays for either.
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            ..SchedulerConfig::default()
        },
        Box::new(NeverVaries),
        settings.seed,
    );
    if settings.fold {
        engine = engine.with_completion_folding();
    }
    engine
}

/// Fits the run-time estimator on up to `train_jobs` kept jobs from the
/// head of a trace. Returns the model and its in-sample MAE in seconds.
/// `None` when the sample holds no labelled jobs.
pub fn train_estimator(
    sample: impl Iterator<Item = SwfJob>,
    train_jobs: usize,
) -> Option<(RuntimeModel, f64)> {
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for job in sample.take(train_jobs) {
        let Some(runtime) = job.runtime_secs else {
            continue;
        };
        if runtime <= 0.0 {
            continue;
        }
        rows.push(submit_features(
            job.processors,
            job.req_time_secs,
            job.req_mem_kb,
            job.submit_secs,
        ));
        y.push(runtime);
    }
    if rows.is_empty() {
        return None;
    }
    let model = RuntimeModel::fit(&rows, &y, RuntimeModelConfig::default());
    let mae = model.mae_secs(&rows, &y);
    Some((model, mae))
}

/// A [`JobSource`] adapter publishing its inner reorder window's clamp
/// count through a shared counter — the engine consumes the source, so the
/// caller reads accounting from the counter after the run.
struct TappedWindow<I: Iterator<Item = JobRequest>> {
    inner: ReorderWindow<I>,
    clamped: Arc<AtomicU64>,
}

impl<I: Iterator<Item = JobRequest> + Send> JobSource for TappedWindow<I> {
    fn next_request(&mut self) -> Option<JobRequest> {
        let req = self.inner.next_request();
        self.clamped.store(self.inner.clamped(), Ordering::Relaxed);
        req
    }

    fn total_hint(&self) -> Option<u64> {
        self.inner.total_hint()
    }
}

/// An iterator adapter counting items that pass through it.
struct Counted<I> {
    inner: I,
    seen: Arc<AtomicU64>,
}

impl<I: Iterator> Iterator for Counted<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.seen.fetch_add(1, Ordering::Relaxed);
        }
        item
    }
}

/// Replays one `SwfJob` stream under one estimate mode. In
/// [`EstimatesMode::Learned`] the provided model's prediction replaces the
/// user estimate on every job before conversion, so the engine plans
/// reservations with it verbatim.
pub fn replay_stream(
    jobs: JobStream,
    settings: &ReplaySettings,
    mode: EstimatesMode,
    model: Option<&RuntimeModel>,
) -> (ReplaySummary, ScheduleResult) {
    let estimates = match mode {
        EstimatesMode::Factor => EstimateSource::Factor,
        EstimatesMode::User | EstimatesMode::Learned => EstimateSource::Request,
    };
    let predicted: JobStream = match (mode, model) {
        (EstimatesMode::Learned, Some(m)) => {
            let m = m.clone();
            Box::new(jobs.map(move |job| SwfJob {
                req_time_secs: Some(m.predict_secs(&submit_features(
                    job.processors,
                    job.req_time_secs,
                    job.req_mem_kb,
                    job.submit_secs,
                ))),
                ..job
            }))
        }
        _ => jobs,
    };

    let jobs_in = Arc::new(AtomicU64::new(0));
    let requests_out = Arc::new(AtomicU64::new(0));
    let clamped = Arc::new(AtomicU64::new(0));
    let counted_jobs = Counted {
        inner: predicted,
        seen: Arc::clone(&jobs_in),
    };
    let requests = Counted {
        inner: swf::request_stream(counted_jobs, settings.cores_per_node, settings.max_nodes),
        seen: Arc::clone(&requests_out),
    };
    let source = TappedWindow {
        inner: ReorderWindow::new(requests, settings.reorder_window),
        clamped: Arc::clone(&clamped),
    };

    let mut engine = replay_engine(settings, estimates);
    let result = engine.run_streaming(Box::new(source));

    let stats = result.replay;
    let summary = ReplaySummary {
        mode,
        stats,
        utilization: stats.utilization(REPLAY_MACHINE_NODES, result.makespan()),
        makespan_secs: result.makespan().as_secs_f64(),
        max_queue_len: result.max_queue_len,
        clamped_submits: clamped.load(Ordering::Relaxed),
        dropped_no_runtime: jobs_in.load(Ordering::Relaxed) - requests_out.load(Ordering::Relaxed),
        model_mae_secs: None,
    };
    (summary, result)
}

/// Runs the chosen estimate modes over identical streams. `make_stream`
/// is called once per replayed mode (plus once for training when
/// [`EstimatesMode::Learned`] is among them) — reopening a file or
/// re-tiling a synthesis is cheap; holding a materialized trace is not.
pub fn compare_estimates(
    mut make_stream: impl FnMut() -> JobStream,
    settings: &ReplaySettings,
    modes: &[EstimatesMode],
) -> Vec<ReplaySummary> {
    let trained = if modes.contains(&EstimatesMode::Learned) {
        train_estimator(make_stream(), settings.train_jobs)
    } else {
        None
    };
    modes
        .iter()
        .map(|&mode| {
            let model = match mode {
                EstimatesMode::Learned => trained.as_ref().map(|(m, _)| m),
                _ => None,
            };
            let (mut summary, _) = replay_stream(make_stream(), settings, mode, model);
            if mode == EstimatesMode::Learned {
                summary.model_mae_secs = trained.as_ref().map(|(_, mae)| *mae);
            }
            summary
        })
        .collect()
}

/// Byte-level equivalence check on a bounded prefix: the first `prefix`
/// requests replayed through the streaming path and through the
/// materialized path must produce identical traces and outcomes. Returns
/// the prefix length actually verified.
pub fn verify_prefix(
    jobs: JobStream,
    settings: &ReplaySettings,
    prefix: usize,
) -> Result<usize, String> {
    let requests = swf::request_stream(jobs, settings.cores_per_node, settings.max_nodes);
    let mut window = ReorderWindow::new(requests.take(prefix), settings.reorder_window);
    let mut ordered = Vec::new();
    while let Some(req) = window.next_request() {
        ordered.push(req);
    }

    let mut unfolded = *settings;
    unfolded.fold = false;
    let materialized = replay_engine(&unfolded, EstimateSource::Factor).run(&ordered);
    let streamed = replay_engine(&unfolded, EstimateSource::Factor)
        .run_streaming(Box::new(IterSource::new(ordered.clone().into_iter())));

    if materialized.trace.events() != streamed.trace.events() {
        return Err("streaming trace diverged from materialized trace".into());
    }
    if materialized.completed != streamed.completed
        || materialized.failed != streamed.failed
        || materialized.replay != streamed.replay
    {
        return Err("streaming outcomes diverged from materialized outcomes".into());
    }
    Ok(ordered.len())
}

/// A built-in synthesis seed for trace-free replays (`rush replay
/// --synthesize N` without `--trace`): 16 jobs shaped like a capacity
/// cluster's small-job mix — 0.5–4 node equivalents, minutes-to-hours run
/// times, over-estimated wall-time requests, some estimates missing, and
/// one out-of-order submission to exercise the reorder window.
pub fn builtin_seed() -> Vec<SwfJob> {
    type Shape = (u64, f64, u32, Option<f64>, Option<f64>);
    let shapes: [Shape; 16] = [
        // (submit, runtime, processors, req_time, req_mem_kb)
        (0, 300.0, 36, Some(1800.0), Some(2000.0)),
        (40, 120.0, 18, Some(600.0), None),
        (80, 600.0, 36, Some(1200.0), Some(4000.0)),
        (120, 300.0, 72, None, None),
        (160, 900.0, 36, Some(3600.0), Some(1000.0)),
        (200, 120.0, 36, Some(900.0), None),
        (280, 300.0, 18, Some(600.0), Some(2000.0)),
        (240, 1800.0, 144, Some(7200.0), Some(8000.0)), // out of order
        (320, 600.0, 36, None, Some(3000.0)),
        (360, 120.0, 36, Some(300.0), None),
        (400, 300.0, 36, Some(1500.0), Some(2000.0)),
        (440, 900.0, 72, Some(1800.0), None),
        (480, 300.0, 18, Some(2400.0), Some(1500.0)),
        (520, 120.0, 36, None, None),
        (560, 600.0, 36, Some(1800.0), Some(2500.0)),
        (600, 300.0, 36, Some(900.0), Some(2000.0)),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(submit, runtime, procs, req_time, req_mem))| SwfJob {
            id: i as u64,
            submit_secs: submit,
            runtime_secs: Some(runtime),
            processors: procs,
            req_time_secs: req_time,
            req_mem_kb: req_mem,
        })
        .collect()
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`), `None` where procfs is unavailable.
pub fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_workloads::synth::{synthesize, SynthSpec};

    fn seed_trace() -> Vec<SwfJob> {
        // Small jobs with believable over-estimates: run times 120–600 s,
        // user estimates 2–10× over.
        (0..8)
            .map(|i| SwfJob {
                id: i,
                submit_secs: i * 45,
                runtime_secs: Some(120.0 + 60.0 * (i % 5) as f64),
                processors: 36 * (1 + (i % 2) as u32),
                req_time_secs: Some(1200.0 + 600.0 * (i % 3) as f64),
                req_mem_kb: if i % 2 == 0 { Some(2000.0) } else { None },
            })
            .collect()
    }

    fn stream(n: u64) -> JobStream {
        Box::new(synthesize(
            seed_trace(),
            SynthSpec {
                target_jobs: n,
                arrival_scale: 1.0,
                gap_secs: 120,
            },
        ))
    }

    fn settings() -> ReplaySettings {
        ReplaySettings {
            train_jobs: 64,
            ..ReplaySettings::default()
        }
    }

    #[test]
    fn three_way_comparison_settles_every_job() {
        let summaries = compare_estimates(
            || stream(120),
            &settings(),
            &[
                EstimatesMode::Factor,
                EstimatesMode::User,
                EstimatesMode::Learned,
            ],
        );
        assert_eq!(summaries.len(), 3);
        for s in &summaries {
            assert_eq!(s.stats.settled(), 120, "{:?}", s.mode);
            assert_eq!(s.stats.rejected, 0);
            assert_eq!(s.dropped_no_runtime, 0);
            assert!(s.utilization > 0.0 && s.utilization <= 1.0);
            assert!(s.stats.mean_bounded_slowdown() >= 1.0);
        }
        // The learned mode actually trained and reports its fit.
        assert!(summaries[2].model_mae_secs.expect("trained") >= 0.0);
        // Identical streams: completions match across modes even when the
        // schedules differ.
        assert_eq!(summaries[0].stats.completed, summaries[1].stats.completed);
    }

    #[test]
    fn learned_estimates_change_planning_not_outcome_counts() {
        let (user, _) = replay_stream(stream(60), &settings(), EstimatesMode::User, None);
        let trained = train_estimator(stream(60), 60).expect("sample");
        let (learned, _) = replay_stream(
            stream(60),
            &settings(),
            EstimatesMode::Learned,
            Some(&trained.0),
        );
        assert_eq!(user.stats.settled(), learned.stats.settled());
        // Run times are identical (same jobs); only waits may move.
        assert!((user.stats.run_sum_secs - learned.stats.run_sum_secs).abs() < 1e-6);
    }

    #[test]
    fn verify_prefix_confirms_streaming_equivalence() {
        let n = verify_prefix(stream(40), &settings(), 40).expect("prefix equivalence");
        assert_eq!(n, 40);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_mib().expect("VmHWM") > 0);
        }
    }
}
