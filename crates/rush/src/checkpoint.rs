//! On-disk checkpoint management for long scheduling campaigns.
//!
//! The engine produces self-validating snapshot blobs
//! ([`rush_simkit::snapshot`]); this module owns their life on disk:
//!
//! * **Atomic writes** — each checkpoint is written to a `.tmp` sibling and
//!   renamed into place, so a crash mid-write can never leave a truncated
//!   file under the final name. (Rename is atomic on POSIX filesystems;
//!   the worst case is a stray `.tmp` that the next prune sweeps away.)
//! * **Retention** — only the newest `keep` checkpoints survive; older ones
//!   are pruned after every successful write.
//! * **Recovery** — [`CheckpointManager::load_latest_valid`] scans newest to
//!   oldest and returns the first blob whose envelope and CRC check out,
//!   skipping (and reporting) corrupted or truncated files. A bit-flipped
//!   latest checkpoint therefore degrades to the previous good one instead
//!   of aborting the resume.
//!
//! File naming embeds the simulated clock zero-padded to 20 digits
//! (`ckpt_00000000000123456789.rushsnap`), so lexicographic order equals
//! chronological order and "newest" needs no metadata.

use rush_simkit::snapshot;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Extension of finished checkpoint files.
pub const CKPT_EXT: &str = "rushsnap";

/// Manages a directory of engine snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointManager {
    /// Creates the manager, creating `dir` if needed. `keep` is the number
    /// of checkpoints retained (minimum 1).
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointManager {
            dir,
            keep: keep.max(1),
        })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(sim_clock_us: u64) -> String {
        format!("ckpt_{sim_clock_us:020}.{CKPT_EXT}")
    }

    /// Writes `bytes` as the checkpoint for simulated time `sim_clock_us`,
    /// atomically (tmp + rename), then prunes past the retention limit.
    /// Returns the final path.
    pub fn write(&self, sim_clock_us: u64, bytes: &[u8]) -> io::Result<PathBuf> {
        let final_path = self.dir.join(Self::file_name(sim_clock_us));
        let tmp_path = final_path.with_extension("tmp");
        fs::write(&tmp_path, bytes)?;
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(final_path)
    }

    /// All finished checkpoint paths, oldest first.
    pub fn list(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_ckpt = path.extension().is_some_and(|e| e == CKPT_EXT)
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt_"));
            if is_ckpt {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Deletes everything but the newest `keep` checkpoints, plus any stray
    /// `.tmp` leftovers from interrupted writes.
    fn prune(&self) -> io::Result<()> {
        let files = self.list()?;
        if files.len() > self.keep {
            for stale in &files[..files.len() - self.keep] {
                fs::remove_file(stale)?;
            }
        }
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Loads the newest checkpoint that passes envelope + CRC validation.
    ///
    /// Returns `Ok(None)` when the directory holds no usable checkpoint.
    /// Corrupted candidates are reported on stderr and skipped, so recovery
    /// falls back to the previous good snapshot automatically.
    pub fn load_latest_valid(&self) -> io::Result<Option<(PathBuf, Vec<u8>)>> {
        for path in self.list()?.into_iter().rev() {
            let bytes = fs::read(&path)?;
            match snapshot::validate(&bytes) {
                Ok(()) => return Ok(Some((path, bytes))),
                Err(e) => {
                    eprintln!("checkpoint: skipping corrupted {} ({e})", path.display());
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_simkit::snapshot::Val;

    fn blob(clock: u64) -> Vec<u8> {
        let body = Val::map().with("clock", Val::U64(clock));
        snapshot::encode(7, clock, 99, &body)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rush-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        let bytes = blob(1_000_000);
        let path = mgr.write(1_000_000, &bytes).unwrap();
        assert!(path
            .to_str()
            .unwrap()
            .ends_with("ckpt_00000000000001000000.rushsnap"));
        let (loaded_path, loaded) = mgr.load_latest_valid().unwrap().unwrap();
        assert_eq!(loaded_path, path);
        assert_eq!(loaded, bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_only_the_newest_k() {
        let dir = tmp_dir("retention");
        let mgr = CheckpointManager::new(&dir, 2).unwrap();
        for clock in [10, 20, 30, 40] {
            mgr.write(clock, &blob(clock)).unwrap();
        }
        let files = mgr.list().unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[0]
            .to_str()
            .unwrap()
            .contains("ckpt_00000000000000000030"));
        assert!(files[1]
            .to_str()
            .unwrap()
            .contains("ckpt_00000000000000000040"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_good() {
        let dir = tmp_dir("fallback");
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        let good = blob(100);
        mgr.write(100, &good).unwrap();
        // Newest checkpoint takes a bit flip mid-body.
        let mut bad = blob(200);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        mgr.write(200, &bad).unwrap();
        let (path, bytes) = mgr.load_latest_valid().unwrap().unwrap();
        assert!(path.to_str().unwrap().contains("ckpt_00000000000000000100"));
        assert_eq!(bytes, good);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_newest_falls_back_too() {
        let dir = tmp_dir("truncated");
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        let good = blob(100);
        mgr.write(100, &good).unwrap();
        let long = blob(200);
        mgr.write(200, &long[..long.len() / 2]).unwrap();
        let (path, bytes) = mgr.load_latest_valid().unwrap().unwrap();
        assert!(path.to_str().unwrap().contains("00000000000000000100"));
        assert_eq!(bytes, good);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_all_bad_directory_yields_none() {
        let dir = tmp_dir("empty");
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        assert!(mgr.load_latest_valid().unwrap().is_none());
        mgr.write(10, b"definitely not a snapshot").unwrap();
        assert!(mgr.load_latest_valid().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_tmp_files_are_swept() {
        let dir = tmp_dir("straytmp");
        let mgr = CheckpointManager::new(&dir, 2).unwrap();
        // Simulate a crash mid-write: a .tmp left behind.
        fs::write(dir.join("ckpt_00000000000000000005.tmp"), b"partial").unwrap();
        mgr.write(10, &blob(10)).unwrap();
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftover.is_empty(), "{leftover:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
