//! End-to-end tests of the `rush` CLI binary: collect → evaluate → train →
//! info → schedule over real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn rush() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rush"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rush-cli-{name}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = temp_dir("workflow");
    let campaign = dir.join("campaign.txt");
    let model = dir.join("model.txt");

    // collect
    let out = rush()
        .args(["collect", "--days", "3", "--seed", "42"])
        .args(["--out", campaign.to_str().unwrap()])
        .output()
        .expect("spawn rush collect");
    assert!(
        out.status.success(),
        "collect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("control runs"), "{stdout}");
    assert!(campaign.exists());

    // train
    let out = rush()
        .args(["train", "--campaign", campaign.to_str().unwrap()])
        .args([
            "--out",
            model.to_str().unwrap(),
            "--kind",
            "decision-forest",
        ])
        .output()
        .expect("spawn rush train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let text = std::fs::read_to_string(&model).unwrap();
    assert!(text.starts_with("RUSHMODEL v1"));

    // info
    let out = rush()
        .args(["info", "--model", model.to_str().unwrap()])
        .output()
        .expect("spawn rush info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kind:       decision-forest"), "{stdout}");
    assert!(stdout.contains("features:   282"), "{stdout}");

    // schedule (tiny)
    let out = rush()
        .args(["schedule", "--campaign", campaign.to_str().unwrap()])
        .args(["--jobs", "8", "--trials", "1", "--experiment", "ADPA"])
        .output()
        .expect("spawn rush schedule");
    assert!(
        out.status.success(),
        "schedule failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("variation runs"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = rush().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = rush()
        .args(["train", "--campaign", "/nonexistent/campaign.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = rush().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in ["collect", "evaluate", "train", "info", "schedule"] {
        assert!(stdout.contains(cmd), "usage must mention {cmd}");
    }
}

#[test]
fn bad_option_values_fail_cleanly() {
    let out = rush()
        .args(["collect", "--days", "many"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected integer"));
}
