//! End-to-end tests of the `rush` CLI binary: collect → evaluate → train →
//! info → schedule over real files in a temp directory, plus snapshot
//! tests for the observability surface (`--trace-out`, `--metrics-out`,
//! `--profile`) and its disabled-by-default behaviour.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn rush() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rush"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rush-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Writes (once per test process) a small campaign file the observability
/// schedule invocations can load, without shelling out to `rush collect`.
fn campaign_file() -> &'static PathBuf {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let path = temp_dir("obs").join("campaign.txt");
        let data = rush_core::collect::run_campaign(&rush_core::config::CampaignConfig {
            days: 2,
            ..rush_core::config::CampaignConfig::test_sized()
        });
        std::fs::write(&path, rush_core::campaign_io::encode(&data)).expect("write campaign");
        path
    })
}

/// A tiny deterministic `rush schedule` with extra observability args.
fn schedule(extra: &[&str]) -> Output {
    rush()
        .args(["schedule", "--campaign", campaign_file().to_str().unwrap()])
        .args(["--experiment", "ADAA", "--trials", "1"])
        .args(["--jobs", "8", "--seed", "11"])
        .args(extra)
        .output()
        .expect("spawn rush schedule")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn full_cli_workflow() {
    let dir = temp_dir("workflow");
    let campaign = dir.join("campaign.txt");
    let model = dir.join("model.txt");

    // collect
    let out = rush()
        .args(["collect", "--days", "3", "--seed", "42"])
        .args(["--out", campaign.to_str().unwrap()])
        .output()
        .expect("spawn rush collect");
    assert!(
        out.status.success(),
        "collect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("control runs"), "{stdout}");
    assert!(campaign.exists());

    // train
    let out = rush()
        .args(["train", "--campaign", campaign.to_str().unwrap()])
        .args([
            "--out",
            model.to_str().unwrap(),
            "--kind",
            "decision-forest",
        ])
        .output()
        .expect("spawn rush train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let text = std::fs::read_to_string(&model).unwrap();
    assert!(text.starts_with("RUSHMODEL v1"));

    // info
    let out = rush()
        .args(["info", "--model", model.to_str().unwrap()])
        .output()
        .expect("spawn rush info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kind:       decision-forest"), "{stdout}");
    assert!(stdout.contains("features:   282"), "{stdout}");

    // schedule (tiny)
    let out = rush()
        .args(["schedule", "--campaign", campaign.to_str().unwrap()])
        .args(["--jobs", "8", "--trials", "1", "--experiment", "ADPA"])
        .output()
        .expect("spawn rush schedule");
    assert!(
        out.status.success(),
        "schedule failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("variation runs"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = rush().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = rush()
        .args(["train", "--campaign", "/nonexistent/campaign.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = rush().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in ["collect", "evaluate", "train", "info", "schedule"] {
        assert!(stdout.contains(cmd), "usage must mention {cmd}");
    }
}

#[test]
fn bad_option_values_fail_cleanly() {
    let out = rush()
        .args(["collect", "--days", "many"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected integer"));
}

#[test]
fn help_documents_the_observability_flags() {
    let out = rush().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = stdout_of(&out);
    for flag in ["--trace-out", "--metrics-out", "--profile"] {
        assert!(text.contains(flag), "usage must document {flag}");
    }
}

#[test]
fn schedule_without_flags_emits_no_observability_output() {
    let out = schedule(&[]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let text = stdout_of(&out);
    assert!(
        text.contains("fcfs_easy") && text.contains("rush"),
        "{text}"
    );
    assert!(!text.contains("wrote"), "no export lines without flags");
    assert!(
        !stderr_of(&out).contains("profile"),
        "profiling is off by default"
    );
}

#[test]
fn trace_out_writes_deterministic_jsonl() {
    let dir = temp_dir("trace");
    let path_a = dir.join("trace-a.jsonl");
    let path_b = dir.join("trace-b.jsonl");
    let out_a = schedule(&["--trace-out", path_a.to_str().unwrap()]);
    assert!(out_a.status.success(), "stderr: {}", stderr_of(&out_a));
    assert!(stdout_of(&out_a).contains("trace events"));
    let out_b = schedule(&["--trace-out", path_b.to_str().unwrap()]);
    assert!(out_b.status.success());

    let a = std::fs::read(&path_a).expect("trace written");
    let b = std::fs::read(&path_b).expect("trace written");
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical seeds must produce byte-identical traces");

    // Shape: one JSON object per line, seq starts at 0 and increments,
    // every record opens with the fixed key prefix.
    let text = String::from_utf8(a).expect("utf8 trace");
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},\"t_us\":")),
            "line {i} must open with its sequence number: {line}"
        );
        assert!(line.contains("\"kind\":\""), "line {i} must carry a kind");
        assert!(line.ends_with('}'), "line {i} must be a closed object");
    }
    assert!(text.contains("\"kind\":\"job_submitted\""));
    assert!(text.contains("\"kind\":\"job_started\""));
    assert!(text.contains("\"kind\":\"job_finished\""));
}

#[test]
fn metrics_out_writes_json_or_csv_by_extension() {
    let dir = temp_dir("metrics");
    let json_path = dir.join("metrics.json");
    let out = schedule(&["--metrics-out", json_path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("metrics registry"));
    let json = std::fs::read_to_string(&json_path).expect("metrics written");
    assert!(json.starts_with("{\"counters\":{"), "{json}");
    for name in [
        "sched.jobs_submitted",
        "sched.jobs_started",
        "sched.max_queue_len",
        "telemetry.sampling_rounds",
        "cluster.nodes_down",
    ] {
        assert!(json.contains(name), "metrics JSON must carry {name}");
    }

    let csv_path = dir.join("metrics.csv");
    let out = schedule(&["--metrics-out", csv_path.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&csv_path).expect("metrics written");
    assert!(csv.starts_with("metric,kind,field,value\n"), "{csv}");
    assert!(csv.contains("sched.jobs_submitted,counter,value,"), "{csv}");
}

#[test]
fn profile_flag_prints_scope_table_to_stderr() {
    let out = schedule(&["--profile"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("profile (wall time per scope):"),
        "missing profile header in stderr: {err}"
    );
    for scope in ["engine_tick", "schedule_pass", "predictor_eval", "train"] {
        assert!(
            err.contains(scope),
            "profile table must list {scope}: {err}"
        );
    }
    // The report goes to stderr, never stdout.
    assert!(!stdout_of(&out).contains("profile (wall time"));
}

#[test]
fn trace_out_reports_write_failures() {
    let out = schedule(&["--trace-out", "/nonexistent-dir/trace.jsonl"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("cannot write"));
}
