//! # rush-obs
//!
//! The observability layer of the RUSH reproduction: what the simulator,
//! scheduler and ML pipeline *did*, recorded systematically instead of
//! being summarized away into a final report table.
//!
//! Three subsystems, all deliberately free of wall-clock or I/O coupling
//! in their recorded artifacts so that identical seeds produce identical
//! bytes:
//!
//! * [`event`] / [`tracer`] — structured, seed-deterministic event records
//!   (job lifecycle, predictor verdicts and fallbacks, node health
//!   transitions, backfill reservations) collected into a ring-buffered
//!   [`tracer::EventTracer`] and exportable as canonical JSON Lines. A
//!   trace is a replayable artifact: two runs with the same seeds emit
//!   byte-identical JSONL, which the golden-trace tests pin down.
//! * [`metrics`] — a [`metrics::MetricsRegistry`] of named counters,
//!   gauges and histograms (reusing [`rush_simkit::histogram::Histogram`])
//!   that subsystems register into; exports to JSON and CSV alongside the
//!   experiment report. Naming convention: `subsystem.metric_name`
//!   (`sched.jobs_started`, `telemetry.gaps_blackout`, …).
//! * [`profile`] — lightweight scoped wall-clock timers around the hot
//!   paths (engine ticks, predictor evaluation, featurization, model
//!   training). Process-global, disabled by default (a single relaxed
//!   atomic load per scope), switched on by the `--profile` CLI flag.
//!   Profiling output is *never* part of a trace — wall time is not
//!   deterministic.
//!
//! See `DESIGN.md` section 9 for the event schema and the recipe for
//! instrumenting a new decision point.

pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod tracer;

pub use event::{EventRecord, FallbackReason, ObsEvent};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use profile::ProfileScope;
pub use tracer::EventTracer;
