//! The ring-buffered event tracer.
//!
//! An [`EventTracer`] is either disabled — the default, in which case
//! [`EventTracer::emit`] is a single branch and allocates nothing — or
//! enabled with a bounded capacity. When the buffer fills, the *oldest*
//! records are evicted (a crashed run wants its tail, not its head) and
//! the eviction count is reported so exports never silently pretend to be
//! complete.

use crate::event::{EventRecord, ObsEvent};
use rush_simkit::snapshot::{Restorable, Snapshot, SnapshotError, Val};
use rush_simkit::time::SimTime;
use std::collections::VecDeque;

/// Default ring capacity: generous for experiment-sized runs (a 200-job
/// faulty schedule emits a few thousand events) while bounding memory on
/// pathological ones.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Collects [`EventRecord`]s in simulation order.
#[derive(Debug, Clone)]
pub struct EventTracer {
    enabled: bool,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    buf: VecDeque<EventRecord>,
}

impl Default for EventTracer {
    fn default() -> Self {
        EventTracer::disabled()
    }
}

impl EventTracer {
    /// A tracer that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        EventTracer {
            enabled: false,
            capacity: 0,
            next_seq: 0,
            evicted: 0,
            buf: VecDeque::new(),
        }
    }

    /// A recording tracer holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        EventTracer {
            enabled: true,
            capacity,
            next_seq: 0,
            evicted: 0,
            buf: VecDeque::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at `at`. No-op when disabled.
    #[inline]
    pub fn emit(&mut self, at: SimTime, event: ObsEvent) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(EventRecord {
            seq: self.next_seq,
            at,
            event,
        });
        self.next_seq += 1;
    }

    /// Events currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted (including evicted ones).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drains the buffer into an owned vector (oldest first), leaving the
    /// tracer empty but still enabled and with its sequence intact.
    pub fn take_records(&mut self) -> Vec<EventRecord> {
        self.buf.drain(..).collect()
    }

    /// Renders all buffered records as JSON Lines (one `\n`-terminated
    /// object per event). Byte-deterministic for identical event streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl Snapshot for EventTracer {
    fn to_val(&self) -> Val {
        Val::map()
            .with("enabled", Val::U64(u64::from(self.enabled)))
            .with("capacity", Val::U64(self.capacity as u64))
            .with("next_seq", Val::U64(self.next_seq))
            .with("evicted", Val::U64(self.evicted))
            .with(
                "records",
                Val::List(
                    self.buf
                        .iter()
                        .map(|r| {
                            Val::List(vec![
                                Val::U64(r.seq),
                                Val::U64(r.at.as_micros()),
                                r.event.to_val(),
                            ])
                        })
                        .collect(),
                ),
            )
    }
}

impl Restorable for EventTracer {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let mut buf = VecDeque::new();
        for r in v.l("records")? {
            let triple = r.as_list()?;
            if triple.len() != 3 {
                return Err(SnapshotError::Schema("event record".to_string()));
            }
            buf.push_back(EventRecord {
                seq: triple[0].as_u64()?,
                at: SimTime::from_micros(triple[1].as_u64()?),
                event: ObsEvent::from_val(&triple[2])?,
            });
        }
        Ok(EventTracer {
            enabled: v.u("enabled")? != 0,
            capacity: v.u("capacity")? as usize,
            next_seq: v.u("next_seq")?,
            evicted: v.u("evicted")?,
            buf,
        })
    }
}

/// Renders an arbitrary record slice as JSON Lines (for records already
/// taken out of a tracer, e.g. those carried in a `ScheduleResult`).
pub fn records_to_jsonl(records: &[EventRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = EventTracer::disabled();
        tr.emit(t(0), ObsEvent::JobSubmitted { job: 1 });
        assert!(!tr.is_enabled());
        assert!(tr.is_empty());
        assert_eq!(tr.emitted(), 0);
        assert_eq!(tr.to_jsonl(), "");
    }

    #[test]
    fn records_in_order_with_monotone_seq() {
        let mut tr = EventTracer::enabled(16);
        tr.emit(t(0), ObsEvent::JobSubmitted { job: 1 });
        tr.emit(
            t(5),
            ObsEvent::JobStarted {
                job: 1,
                nodes: 4,
                skips: 0,
            },
        );
        tr.emit(t(9), ObsEvent::JobFinished { job: 1 });
        let seqs: Vec<u64> = tr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(tr.len(), 3);
        let jsonl = tr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tr = EventTracer::enabled(2);
        for i in 0..5 {
            tr.emit(t(i), ObsEvent::JobSubmitted { job: i });
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.evicted(), 3);
        assert_eq!(tr.emitted(), 5);
        let jobs: Vec<u64> = tr.records().filter_map(|r| r.event.job()).collect();
        assert_eq!(jobs, vec![3, 4], "oldest events evicted first");
        // Sequence numbers keep counting across evictions.
        assert_eq!(tr.records().next().unwrap().seq, 3);
    }

    #[test]
    fn take_records_drains_but_keeps_sequence() {
        let mut tr = EventTracer::enabled(8);
        tr.emit(t(0), ObsEvent::JobSubmitted { job: 0 });
        let first = tr.take_records();
        assert_eq!(first.len(), 1);
        assert!(tr.is_empty());
        tr.emit(t(1), ObsEvent::JobFinished { job: 0 });
        assert_eq!(tr.records().next().unwrap().seq, 1);
        assert_eq!(records_to_jsonl(&first).lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventTracer::enabled(0);
    }
}
