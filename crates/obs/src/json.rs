//! Minimal canonical JSON encoding.
//!
//! The vendored `serde` is a no-op stub (see `vendor/README.md`), so the
//! observability exports hand-roll their JSON. Canonical here means: no
//! whitespace, fixed key order chosen by the caller, integers rendered in
//! decimal, floats via Rust's shortest-roundtrip formatter — so the same
//! data always produces the same bytes, which is what the golden-trace
//! tests and the CI determinism job assert.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float deterministically: shortest roundtrip form, with
/// non-finite values mapped to `null` (JSON has no NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` object writer with caller-fixed key order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape_str(name));
        self.buf.push(':');
    }

    /// Appends a string field.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(&escape_str(value));
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field (`null` when non-finite).
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_str("plain"), "\"plain\"");
        assert_eq!(escape_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape_str("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(escape_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_are_shortest_roundtrip() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let json = JsonObject::new()
            .u64("seq", 3)
            .str("kind", "job_started")
            .f64("x", 2.25)
            .raw("arr", "[1,2]")
            .finish();
        assert_eq!(
            json,
            "{\"seq\":3,\"kind\":\"job_started\",\"x\":2.25,\"arr\":[1,2]}"
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
