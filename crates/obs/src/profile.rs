//! Lightweight scoped profiling.
//!
//! A fixed set of [`ProfileScope`]s covers the hot paths (engine ticks,
//! the scheduling pass, predictor evaluation, featurization, forest
//! training, telemetry sampling). The profiler is process-global and
//! disabled by default: entering a scope costs one relaxed atomic load.
//! When enabled (`--profile` on the CLI), each scope accumulates call
//! count and total wall nanoseconds into atomics, summarized by
//! [`report`].
//!
//! Wall-clock numbers are inherently nondeterministic, so profiling data
//! is **never** written into traces or metric exports — [`report`]
//! renders to a plain string the CLI prints to stderr.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented code regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileScope {
    /// One `SchedulerEngine` event dispatch.
    EngineTick,
    /// One backfill scheduling pass over the queue.
    SchedulePass,
    /// One predictor consultation (quality gate + predict).
    PredictorEval,
    /// Feature-vector assembly from the metric store.
    Featurize,
    /// Random-forest training.
    Train,
    /// Telemetry sampler advance.
    TelemetrySample,
}

const SCOPE_COUNT: usize = 6;

const ALL_SCOPES: [ProfileScope; SCOPE_COUNT] = [
    ProfileScope::EngineTick,
    ProfileScope::SchedulePass,
    ProfileScope::PredictorEval,
    ProfileScope::Featurize,
    ProfileScope::Train,
    ProfileScope::TelemetrySample,
];

impl ProfileScope {
    fn index(self) -> usize {
        match self {
            ProfileScope::EngineTick => 0,
            ProfileScope::SchedulePass => 1,
            ProfileScope::PredictorEval => 2,
            ProfileScope::Featurize => 3,
            ProfileScope::Train => 4,
            ProfileScope::TelemetrySample => 5,
        }
    }

    /// Stable label used in the profile report.
    pub fn label(self) -> &'static str {
        match self {
            ProfileScope::EngineTick => "engine_tick",
            ProfileScope::SchedulePass => "schedule_pass",
            ProfileScope::PredictorEval => "predictor_eval",
            ProfileScope::Featurize => "featurize",
            ProfileScope::Train => "train",
            ProfileScope::TelemetrySample => "telemetry_sample",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Histogram buckets per scope: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns). 40 buckets
/// reach ~18 minutes, far beyond any single scope entry.
const BUCKETS: usize = 40;

struct ScopeCell {
    calls: AtomicU64,
    nanos: AtomicU64,
    hist: [AtomicU64; BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_COUNT: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_CELL: ScopeCell = ScopeCell {
    calls: AtomicU64::new(0),
    nanos: AtomicU64::new(0),
    hist: [ZERO_COUNT; BUCKETS],
};

static CELLS: [ScopeCell; SCOPE_COUNT] = [ZERO_CELL; SCOPE_COUNT];

fn bucket_index(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Geometric midpoint of a bucket, the value reported for samples in it.
fn bucket_mid(index: usize) -> f64 {
    let lo = (1u64 << index) as f64;
    lo * std::f64::consts::SQRT_2
}

/// Turns profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all accumulated counts, times and histograms.
pub fn reset() {
    for cell in &CELLS {
        cell.calls.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
        for bucket in &cell.hist {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// Enters `scope`; time from now until the returned guard drops is
/// attributed to it. Returns a no-op guard when profiling is off.
#[inline]
pub fn scope(scope: ProfileScope) -> ScopeGuard {
    if is_enabled() {
        ScopeGuard {
            scope: Some((scope, Instant::now())),
        }
    } else {
        ScopeGuard { scope: None }
    }
}

/// RAII guard returned by [`scope`].
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard {
    scope: Option<(ProfileScope, Instant)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((scope, start)) = self.scope.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_sample(scope, ns);
        }
    }
}

/// Adds one externally-timed sample to `scope`. This bridges layers that
/// cannot depend on this crate (e.g. `rush_simkit::engine`'s generic step
/// observer) into the profiler. No-op when profiling is off.
pub fn record_external(scope: ProfileScope, nanos: u64) {
    if !is_enabled() {
        return;
    }
    record_sample(scope, nanos);
}

fn record_sample(scope: ProfileScope, nanos: u64) {
    let cell = &CELLS[scope.index()];
    cell.calls.fetch_add(1, Ordering::Relaxed);
    cell.nanos.fetch_add(nanos, Ordering::Relaxed);
    cell.hist[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of a scope's recorded
/// durations, in nanoseconds, or `None` if the scope has no samples.
/// Resolution is one power-of-two bucket: the value returned is the
/// geometric midpoint of the bucket holding the requested rank.
pub fn percentile_nanos(scope: ProfileScope, p: f64) -> Option<f64> {
    let cell = &CELLS[scope.index()];
    let counts: Vec<u64> = cell
        .hist
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
        .ceil()
        .max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bucket_mid(i));
        }
    }
    Some(bucket_mid(BUCKETS - 1))
}

/// Accumulated totals for one scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeTotals {
    /// Which scope.
    pub scope: ProfileScope,
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall nanoseconds inside the scope.
    pub nanos: u64,
}

/// Snapshot of every scope's totals, in fixed scope order.
pub fn snapshot() -> Vec<ScopeTotals> {
    ALL_SCOPES
        .iter()
        .map(|&scope| {
            let cell = &CELLS[scope.index()];
            ScopeTotals {
                scope,
                calls: cell.calls.load(Ordering::Relaxed),
                nanos: cell.nanos.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Renders a human-readable table of per-scope totals (scopes that were
/// never entered are omitted; all-idle yields a one-line note).
pub fn report() -> String {
    let rows: Vec<ScopeTotals> = snapshot().into_iter().filter(|t| t.calls > 0).collect();
    if rows.is_empty() {
        return "profile: no instrumented scopes were entered\n".to_string();
    }
    let mut out = String::from("profile (wall time per scope):\n");
    out.push_str(&format!(
        "  {:<18} {:>10} {:>14} {:>12}\n",
        "scope", "calls", "total_ms", "avg_us"
    ));
    for t in rows {
        let total_ms = t.nanos as f64 / 1e6;
        let avg_us = t.nanos as f64 / 1e3 / t.calls as f64;
        out.push_str(&format!(
            "  {:<18} {:>10} {:>14.3} {:>12.3}\n",
            t.scope.label(),
            t.calls,
            total_ms,
            avg_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global, so the tests below share state;
    // they run under a lock to avoid cross-test interference.
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = scope(ProfileScope::EngineTick);
        }
        let snap = snapshot();
        assert!(snap.iter().all(|t| t.calls == 0 && t.nanos == 0));
        assert!(report().contains("no instrumented scopes"));
    }

    #[test]
    fn enabled_scopes_accumulate() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _s = scope(ProfileScope::Featurize);
        }
        {
            let _s = scope(ProfileScope::Train);
        }
        let snap = snapshot();
        let feat = snap
            .iter()
            .find(|t| t.scope == ProfileScope::Featurize)
            .unwrap();
        assert_eq!(feat.calls, 3);
        let train = snap
            .iter()
            .find(|t| t.scope == ProfileScope::Train)
            .unwrap();
        assert_eq!(train.calls, 1);
        let rep = report();
        assert!(rep.contains("featurize"), "{rep}");
        assert!(rep.contains("train"), "{rep}");
        assert!(!rep.contains("engine_tick"), "idle scopes omitted: {rep}");
        set_enabled(false);
        reset();
    }

    #[test]
    fn percentiles_follow_recorded_samples() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        // 99 fast samples (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            record_external(ProfileScope::SchedulePass, 1_000);
        }
        record_external(ProfileScope::SchedulePass, 1_000_000);
        let p50 = percentile_nanos(ProfileScope::SchedulePass, 50.0).unwrap();
        let p99 = percentile_nanos(ProfileScope::SchedulePass, 99.0).unwrap();
        let p100 = percentile_nanos(ProfileScope::SchedulePass, 100.0).unwrap();
        assert!(
            (500.0..4_000.0).contains(&p50),
            "p50 should sit in the fast bucket, got {p50}"
        );
        assert!(
            (500.0..4_000.0).contains(&p99),
            "p99 rank 99/100 is still a fast sample, got {p99}"
        );
        assert!(
            p100 > 500_000.0,
            "p100 must land in the outlier bucket, got {p100}"
        );
        assert_eq!(percentile_nanos(ProfileScope::Train, 50.0), None);
        set_enabled(false);
        reset();
    }

    #[test]
    fn bucket_index_is_monotonic() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProfileScope::EngineTick.label(), "engine_tick");
        assert_eq!(ProfileScope::SchedulePass.label(), "schedule_pass");
        assert_eq!(ProfileScope::PredictorEval.label(), "predictor_eval");
        assert_eq!(ProfileScope::TelemetrySample.label(), "telemetry_sample");
    }
}
