//! Lightweight scoped profiling.
//!
//! A fixed set of [`ProfileScope`]s covers the hot paths (engine ticks,
//! the scheduling pass, predictor evaluation, featurization, forest
//! training, telemetry sampling). The profiler is process-global and
//! disabled by default: entering a scope costs one relaxed atomic load.
//! When enabled (`--profile` on the CLI), each scope accumulates call
//! count and total wall nanoseconds into atomics, summarized by
//! [`report`].
//!
//! Wall-clock numbers are inherently nondeterministic, so profiling data
//! is **never** written into traces or metric exports — [`report`]
//! renders to a plain string the CLI prints to stderr.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented code regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileScope {
    /// One `SchedulerEngine` event dispatch.
    EngineTick,
    /// One backfill scheduling pass over the queue.
    SchedulePass,
    /// One predictor consultation (quality gate + predict).
    PredictorEval,
    /// Feature-vector assembly from the metric store.
    Featurize,
    /// Random-forest training.
    Train,
    /// Telemetry sampler advance.
    TelemetrySample,
}

const SCOPE_COUNT: usize = 6;

const ALL_SCOPES: [ProfileScope; SCOPE_COUNT] = [
    ProfileScope::EngineTick,
    ProfileScope::SchedulePass,
    ProfileScope::PredictorEval,
    ProfileScope::Featurize,
    ProfileScope::Train,
    ProfileScope::TelemetrySample,
];

impl ProfileScope {
    fn index(self) -> usize {
        match self {
            ProfileScope::EngineTick => 0,
            ProfileScope::SchedulePass => 1,
            ProfileScope::PredictorEval => 2,
            ProfileScope::Featurize => 3,
            ProfileScope::Train => 4,
            ProfileScope::TelemetrySample => 5,
        }
    }

    /// Stable label used in the profile report.
    pub fn label(self) -> &'static str {
        match self {
            ProfileScope::EngineTick => "engine_tick",
            ProfileScope::SchedulePass => "schedule_pass",
            ProfileScope::PredictorEval => "predictor_eval",
            ProfileScope::Featurize => "featurize",
            ProfileScope::Train => "train",
            ProfileScope::TelemetrySample => "telemetry_sample",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

struct ScopeCell {
    calls: AtomicU64,
    nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_CELL: ScopeCell = ScopeCell {
    calls: AtomicU64::new(0),
    nanos: AtomicU64::new(0),
};

static CELLS: [ScopeCell; SCOPE_COUNT] = [ZERO_CELL; SCOPE_COUNT];

/// Turns profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all accumulated counts and times.
pub fn reset() {
    for cell in &CELLS {
        cell.calls.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
    }
}

/// Enters `scope`; time from now until the returned guard drops is
/// attributed to it. Returns a no-op guard when profiling is off.
#[inline]
pub fn scope(scope: ProfileScope) -> ScopeGuard {
    if is_enabled() {
        ScopeGuard {
            scope: Some((scope, Instant::now())),
        }
    } else {
        ScopeGuard { scope: None }
    }
}

/// RAII guard returned by [`scope`].
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard {
    scope: Option<(ProfileScope, Instant)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((scope, start)) = self.scope.take() {
            let cell = &CELLS[scope.index()];
            cell.calls.fetch_add(1, Ordering::Relaxed);
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Adds one externally-timed sample to `scope`. This bridges layers that
/// cannot depend on this crate (e.g. `rush_simkit::engine`'s generic step
/// observer) into the profiler. No-op when profiling is off.
pub fn record_external(scope: ProfileScope, nanos: u64) {
    if !is_enabled() {
        return;
    }
    let cell = &CELLS[scope.index()];
    cell.calls.fetch_add(1, Ordering::Relaxed);
    cell.nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// Accumulated totals for one scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeTotals {
    /// Which scope.
    pub scope: ProfileScope,
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall nanoseconds inside the scope.
    pub nanos: u64,
}

/// Snapshot of every scope's totals, in fixed scope order.
pub fn snapshot() -> Vec<ScopeTotals> {
    ALL_SCOPES
        .iter()
        .map(|&scope| {
            let cell = &CELLS[scope.index()];
            ScopeTotals {
                scope,
                calls: cell.calls.load(Ordering::Relaxed),
                nanos: cell.nanos.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Renders a human-readable table of per-scope totals (scopes that were
/// never entered are omitted; all-idle yields a one-line note).
pub fn report() -> String {
    let rows: Vec<ScopeTotals> = snapshot().into_iter().filter(|t| t.calls > 0).collect();
    if rows.is_empty() {
        return "profile: no instrumented scopes were entered\n".to_string();
    }
    let mut out = String::from("profile (wall time per scope):\n");
    out.push_str(&format!(
        "  {:<18} {:>10} {:>14} {:>12}\n",
        "scope", "calls", "total_ms", "avg_us"
    ));
    for t in rows {
        let total_ms = t.nanos as f64 / 1e6;
        let avg_us = t.nanos as f64 / 1e3 / t.calls as f64;
        out.push_str(&format!(
            "  {:<18} {:>10} {:>14.3} {:>12.3}\n",
            t.scope.label(),
            t.calls,
            total_ms,
            avg_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global, so the tests below share state;
    // they run under a lock to avoid cross-test interference.
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = scope(ProfileScope::EngineTick);
        }
        let snap = snapshot();
        assert!(snap.iter().all(|t| t.calls == 0 && t.nanos == 0));
        assert!(report().contains("no instrumented scopes"));
    }

    #[test]
    fn enabled_scopes_accumulate() {
        let _guard = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _s = scope(ProfileScope::Featurize);
        }
        {
            let _s = scope(ProfileScope::Train);
        }
        let snap = snapshot();
        let feat = snap
            .iter()
            .find(|t| t.scope == ProfileScope::Featurize)
            .unwrap();
        assert_eq!(feat.calls, 3);
        let train = snap
            .iter()
            .find(|t| t.scope == ProfileScope::Train)
            .unwrap();
        assert_eq!(train.calls, 1);
        let rep = report();
        assert!(rep.contains("featurize"), "{rep}");
        assert!(rep.contains("train"), "{rep}");
        assert!(!rep.contains("engine_tick"), "idle scopes omitted: {rep}");
        set_enabled(false);
        reset();
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProfileScope::EngineTick.label(), "engine_tick");
        assert_eq!(ProfileScope::SchedulePass.label(), "schedule_pass");
        assert_eq!(ProfileScope::PredictorEval.label(), "predictor_eval");
        assert_eq!(ProfileScope::TelemetrySample.label(), "telemetry_sample");
    }
}
