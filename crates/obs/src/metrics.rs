//! The metrics registry.
//!
//! Subsystems register named instruments up front and then update them
//! through cheap typed handles ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]) — plain `Vec` indices, so updates are a bounds check
//! and an add. Names follow `subsystem.metric_name`
//! (`sched.jobs_started`, `telemetry.gaps_blackout`, …) and exports are
//! sorted by name so JSON/CSV output is deterministic regardless of
//! registration order.

use crate::json::{fmt_f64, JsonObject};
use rush_simkit::histogram::Histogram;
use rush_simkit::snapshot::{Restorable, Snapshot, SnapshotError, Val};

/// Handle to a registered counter (monotone `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Handle to a registered gauge (last-set `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Named<T> {
    name: String,
    value: T,
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<Named<u64>>,
    gauges: Vec<Named<f64>>,
    histograms: Vec<Named<Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn check_name(&self, name: &str) {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_'),
            "metric name {name:?} must be non-empty [a-z0-9._]"
        );
        let taken = self.counters.iter().any(|n| n.name == name)
            || self.gauges.iter().any(|n| n.name == name)
            || self.histograms.iter().any(|n| n.name == name);
        assert!(!taken, "metric name {name:?} already registered");
    }

    /// Registers a counter starting at zero.
    ///
    /// # Panics
    /// Panics if `name` is malformed or already taken.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        self.check_name(name);
        self.counters.push(Named {
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge starting at zero.
    ///
    /// # Panics
    /// Panics if `name` is malformed or already taken.
    pub fn register_gauge(&mut self, name: &str) -> GaugeId {
        self.check_name(name);
        self.gauges.push(Named {
            name: name.to_string(),
            value: 0.0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram with the given bucket layout.
    ///
    /// # Panics
    /// Panics if `name` is malformed or already taken.
    pub fn register_histogram(&mut self, name: &str, hist: Histogram) -> HistogramId {
        self.check_name(name);
        self.histograms.push(Named {
            name: name.to_string(),
            value: hist,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Increments a counter by `delta`.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].value += delta;
    }

    /// Overwrites a counter (for mirroring an externally maintained tally).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].value = value;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one sample into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].value.record(value);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Read access to a histogram.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].value
    }

    /// Looks up a counter's handle by name.
    pub fn counter_id(&self, name: &str) -> Option<CounterId> {
        self.counters
            .iter()
            .position(|n| n.name == name)
            .map(CounterId)
    }

    /// Looks up a counter's value by name.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|n| n.name == name)
            .map(|n| n.value)
    }

    /// Looks up a gauge's handle by name.
    pub fn gauge_id(&self, name: &str) -> Option<GaugeId> {
        self.gauges.iter().position(|n| n.name == name).map(GaugeId)
    }

    /// Looks up a gauge's value by name.
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|n| n.name == name).map(|n| n.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|n| n.name == name)
            .map(|n| &n.value)
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|n| (n.name.as_str(), n.value))
            .collect();
        out.sort_by_key(|(name, _)| *name);
        out
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges_sorted(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .gauges
            .iter()
            .map(|n| (n.name.as_str(), n.value))
            .collect();
        out.sort_by_key(|(name, _)| *name);
        out
    }

    /// Merges another registry's counters into this one by name,
    /// registering any names not yet present. Gauges are overwritten
    /// (last writer wins); histograms are skipped unless the layouts
    /// match, in which case they merge.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for n in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == n.name) {
                Some(m) => m.value += n.value,
                None => self.counters.push(n.clone()),
            }
        }
        for n in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == n.name) {
                Some(m) => m.value = n.value,
                None => self.gauges.push(n.clone()),
            }
        }
        for n in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == n.name) {
                Some(m) => m.value.merge(&n.value),
                None => self.histograms.push(n.clone()),
            }
        }
    }

    /// Exports the registry as one canonical JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, every
    /// section sorted by metric name. Histograms export count/min/max and
    /// the p50/p90/p99 quantiles.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, v) in self.counters_sorted() {
            counters = counters.u64(name, v);
        }
        let mut gauges = JsonObject::new();
        for (name, v) in self.gauges_sorted() {
            gauges = gauges.f64(name, v);
        }
        let mut hist_names: Vec<&Named<Histogram>> = self.histograms.iter().collect();
        hist_names.sort_by_key(|n| n.name.as_str());
        let mut hists = JsonObject::new();
        for n in hist_names {
            let h = &n.value;
            let body = JsonObject::new()
                .u64("count", h.count())
                .f64("min", h.min())
                .f64("max", h.max())
                .f64("p50", h.percentile(50.0))
                .f64("p90", h.percentile(90.0))
                .f64("p99", h.percentile(99.0))
                .finish();
            hists = hists.raw(&n.name, &body);
        }
        JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }

    /// Exports the registry as CSV with header `metric,kind,field,value`,
    /// rows sorted by metric name (histograms expand to one row per
    /// exported field).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,field,value\n");
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, v) in self.counters_sorted() {
            rows.push((name.to_string(), format!("{name},counter,value,{v}\n")));
        }
        for (name, v) in self.gauges_sorted() {
            rows.push((
                name.to_string(),
                format!("{name},gauge,value,{}\n", fmt_f64(v)),
            ));
        }
        for n in &self.histograms {
            let h = &n.value;
            let mut block = String::new();
            block.push_str(&format!("{},histogram,count,{}\n", n.name, h.count()));
            for (field, v) in [
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.percentile(50.0)),
                ("p90", h.percentile(90.0)),
                ("p99", h.percentile(99.0)),
            ] {
                block.push_str(&format!("{},histogram,{field},{}\n", n.name, fmt_f64(v)));
            }
            rows.push((n.name.clone(), block));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, row) in rows {
            out.push_str(&row);
        }
        out
    }
}

impl Snapshot for MetricsRegistry {
    fn to_val(&self) -> Val {
        // Registration order is preserved so restored handles (plain Vec
        // indices) stay valid for code that registered in the same order.
        Val::map()
            .with(
                "counters",
                Val::List(
                    self.counters
                        .iter()
                        .map(|n| Val::List(vec![Val::Str(n.name.clone()), Val::U64(n.value)]))
                        .collect(),
                ),
            )
            .with(
                "gauges",
                Val::List(
                    self.gauges
                        .iter()
                        .map(|n| Val::List(vec![Val::Str(n.name.clone()), Val::from_f64(n.value)]))
                        .collect(),
                ),
            )
            .with(
                "histograms",
                Val::List(
                    self.histograms
                        .iter()
                        .map(|n| Val::List(vec![Val::Str(n.name.clone()), n.value.to_val()]))
                        .collect(),
                ),
            )
    }
}

impl Restorable for MetricsRegistry {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let pair = |item: &Val| -> Result<(String, Val), SnapshotError> {
            let p = item.as_list()?;
            if p.len() != 2 {
                return Err(SnapshotError::Schema("metric pair".to_string()));
            }
            Ok((p[0].as_str()?.to_string(), p[1].clone()))
        };
        let mut reg = MetricsRegistry::new();
        for item in v.l("counters")? {
            let (name, val) = pair(item)?;
            reg.counters.push(Named {
                name,
                value: val.as_u64()?,
            });
        }
        for item in v.l("gauges")? {
            let (name, val) = pair(item)?;
            reg.gauges.push(Named {
                name,
                value: val.as_f64()?,
            });
        }
        for item in v.l("histograms")? {
            let (name, val) = pair(item)?;
            reg.histograms.push(Named {
                name,
                value: Histogram::from_val(&val)?,
            });
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_preserves_order_and_values() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("z.counter");
        reg.add(c, 7);
        let g = reg.register_gauge("a.gauge");
        reg.set_gauge(g, -2.5);
        let h = reg.register_histogram("m.hist", Histogram::for_seconds());
        reg.record(h, 3.25);
        let back = MetricsRegistry::from_val(&reg.to_val()).unwrap();
        // Handles (indices) from the original registration order stay valid.
        assert_eq!(back.counter(c), 7);
        assert_eq!(back.gauge(g), -2.5);
        assert_eq!(back.histogram(h).count(), 1);
        assert_eq!(back.to_json(), reg.to_json());
        assert_eq!(back.to_csv(), reg.to_csv());
    }

    #[test]
    fn counters_increment_through_handles() {
        let mut reg = MetricsRegistry::new();
        let started = reg.register_counter("sched.jobs_started");
        let skips = reg.register_counter("sched.skips");
        reg.inc(started);
        reg.inc(started);
        reg.add(skips, 5);
        assert_eq!(reg.counter(started), 2);
        assert_eq!(reg.counter(skips), 5);
        assert_eq!(reg.counter_by_name("sched.jobs_started"), Some(2));
        assert_eq!(reg.counter_by_name("missing"), None);
    }

    #[test]
    fn gauges_and_histograms() {
        let mut reg = MetricsRegistry::new();
        let depth = reg.register_gauge("sched.queue_depth");
        let wait = reg.register_histogram("sched.wait_s", Histogram::for_seconds());
        reg.set_gauge(depth, 12.0);
        reg.record(wait, 1.0);
        reg.record(wait, 4.0);
        assert_eq!(reg.gauge(depth), 12.0);
        assert_eq!(reg.histogram(wait).count(), 2);
        assert_eq!(reg.histogram_by_name("sched.wait_s").unwrap().count(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("a.b");
        reg.register_gauge("a.b");
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn malformed_names_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("has space");
    }

    #[test]
    fn json_export_is_sorted_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        let b = reg.register_counter("z.later");
        let a = reg.register_counter("a.first");
        reg.inc(a);
        reg.add(b, 3);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"z.later\":3},\"gauges\":{},\"histograms\":{}}"
        );
        // Same contents registered in the other order export identically.
        let mut reg2 = MetricsRegistry::new();
        let a2 = reg2.register_counter("a.first");
        let b2 = reg2.register_counter("z.later");
        reg2.inc(a2);
        reg2.add(b2, 3);
        assert_eq!(reg2.to_json(), json);
    }

    #[test]
    fn csv_export_shape() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("sched.jobs_started");
        reg.inc(c);
        let g = reg.register_gauge("sched.util");
        reg.set_gauge(g, 0.5);
        let h = reg.register_histogram("sched.wait_s", Histogram::for_seconds());
        reg.record(h, 2.0);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,kind,field,value");
        assert!(lines.contains(&"sched.jobs_started,counter,value,1"));
        assert!(lines.contains(&"sched.util,gauge,value,0.5"));
        assert!(lines.contains(&"sched.wait_s,histogram,count,1"));
        // 1 header + 1 counter + 1 gauge + 6 histogram rows
        assert_eq!(lines.len(), 9);
    }

    #[test]
    fn absorb_merges_by_name() {
        let mut a = MetricsRegistry::new();
        let ca = a.register_counter("sched.skips");
        a.add(ca, 2);
        let mut b = MetricsRegistry::new();
        let cb = b.register_counter("sched.skips");
        b.add(cb, 3);
        let other = b.register_counter("sched.other");
        b.inc(other);
        a.absorb(&b);
        assert_eq!(a.counter_by_name("sched.skips"), Some(5));
        assert_eq!(a.counter_by_name("sched.other"), Some(1));
    }
}
