//! The structured event schema.
//!
//! Every decision point in the scheduler and ML pipeline emits exactly one
//! [`ObsEvent`] describing *what was decided*, stamped with simulation
//! time and a monotone sequence number. Payloads are integers and enums
//! only — no floats derived from wall time, no hash-ordered collections —
//! so a trace is a pure function of the run's seeds and serializes to
//! byte-identical JSONL across runs and platforms.

use crate::json::JsonObject;
use rush_simkit::snapshot::{SnapshotError, Val};
use rush_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a `Start()` decision bypassed the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FallbackReason {
    /// Telemetry coverage of the feature window was below the quality
    /// gate's threshold; the predictor was never consulted.
    TelemetryGap,
    /// The predictor was consulted and returned an error.
    ModelError,
}

impl FallbackReason {
    /// Stable label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            FallbackReason::TelemetryGap => "telemetry_gap",
            FallbackReason::ModelError => "model_error",
        }
    }
}

/// One structured observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// A job arrived in the queue.
    JobSubmitted {
        /// Job id.
        job: u64,
    },
    /// A job began execution on `nodes` nodes after `skips` RUSH delays.
    JobStarted {
        /// Job id.
        job: u64,
        /// Allocated node count.
        nodes: u32,
        /// RUSH delays the job absorbed before launching.
        skips: u32,
    },
    /// RUSH pushed a job back; `skips` is its new skip count.
    JobSkipped {
        /// Job id.
        job: u64,
        /// Skip count after this delay.
        skips: u32,
    },
    /// A node failure killed the job mid-run.
    JobKilled {
        /// Job id.
        job: u64,
    },
    /// A killed job re-entered the queue for attempt `attempt`.
    JobRequeued {
        /// Job id.
        job: u64,
        /// Kill count so far.
        attempt: u32,
    },
    /// A killed job exhausted its retry budget.
    JobFailed {
        /// Job id.
        job: u64,
        /// Total kills absorbed.
        attempts: u32,
    },
    /// A job completed.
    JobFinished {
        /// Job id.
        job: u64,
    },
    /// A job was rejected at submission: its node demand exceeds the
    /// schedulable pool, so it can never start. Rejection is an explicit
    /// outcome — one dirty record must not abort a million-job replay.
    JobRejected {
        /// Job id.
        job: u64,
        /// Nodes the job asked for.
        nodes: u32,
        /// The schedulable pool's capacity it exceeded.
        capacity: u32,
    },
    /// The predictor produced a class for a prospective launch.
    PredictorVerdict {
        /// Job id.
        job: u64,
        /// `VariabilityClass::index()` of the verdict (0/1/2).
        class: u32,
    },
    /// The engine bypassed the predictor and scheduled as plain EASY.
    PredictorFallback {
        /// Job id.
        job: u64,
        /// Why the predictor was bypassed.
        reason: FallbackReason,
    },
    /// EASY computed a reservation for the blocked head-of-queue job.
    BackfillReservation {
        /// The blocked job holding the reservation.
        job: u64,
        /// Shadow start time, microseconds.
        shadow_start_us: u64,
        /// Extra nodes available to long backfill candidates.
        extra_nodes: u32,
    },
    /// A node crashed.
    NodeDown {
        /// Node index.
        node: u32,
    },
    /// A node was repaired (telemetry resumes; placement still quarantined).
    NodeUp {
        /// Node index.
        node: u32,
    },
    /// A repaired node finished probation and rejoined the placement pool.
    NodeTrusted {
        /// Node index.
        node: u32,
    },
    /// The runtime auditor found an invariant violation.
    AuditViolation {
        /// Index of the violated invariant (see `rush_sched::audit`).
        invariant: u32,
        /// Invariant-specific context (a job id, node count, or time in
        /// microseconds, depending on the invariant).
        detail: u64,
    },
    /// The predictor service's drift detector fired: rolling accuracy fell
    /// more than the configured threshold below the reference accuracy.
    PredictorDrift {
        /// Drift score (reference − rolling accuracy) in milli-units.
        score_milli: u32,
    },
    /// The predictor service trained a candidate model on its window.
    PredictorRetrain {
        /// Version the candidate will take if it is promoted.
        version: u32,
        /// Labeled samples the candidate trained on.
        samples: u32,
    },
    /// A candidate model began shadow evaluation alongside the live model.
    PredictorShadowStart {
        /// Candidate version under evaluation.
        version: u32,
        /// Decisions the shadow phase will observe.
        decisions: u32,
    },
    /// The candidate beat the incumbent and was atomically hot-swapped in.
    PredictorSwap {
        /// Version that was serving before the swap.
        from_version: u32,
        /// Version now serving.
        to_version: u32,
    },
    /// A post-swap regression was detected; the previous version is back.
    PredictorRollback {
        /// The regressed version being evicted.
        from_version: u32,
        /// Version now serving (a fresh number, restoring the old model).
        to_version: u32,
    },
    /// A node became a straggler: still in service, running slow.
    NodeDegraded {
        /// Node index.
        node: u32,
        /// Speed factor while degraded, milli-units of nominal.
        factor_milli: u32,
    },
    /// A straggler node recovered nominal speed.
    NodeRestored {
        /// Node index.
        node: u32,
    },
    /// An injected fabric-contention storm began in a region (pod).
    StormStarted {
        /// Region (pod) index.
        region: u32,
        /// Added link utilization, milli-units.
        intensity_milli: u32,
    },
    /// The contention storm in a region subsided.
    StormEnded {
        /// Region (pod) index.
        region: u32,
    },
    /// A node started a crash/repair flap burst (each cycle also emits its
    /// own `node_down`/`node_up` pair).
    NodeFlapped {
        /// Node index.
        node: u32,
        /// Remaining down/up cycles including this one.
        cycles: u32,
    },
    /// The policy trainer finished one CEM round. Scores are mean bounded
    /// slowdowns in milli-units (the trainer maximizes their negation;
    /// lower is better here).
    PolicyTrainRound {
        /// Round index, from 0.
        round: u32,
        /// Best candidate's mean bounded slowdown this round, milli-units.
        best_bsld_milli: u64,
        /// Elite-set mean bounded slowdown this round, milli-units.
        elite_bsld_milli: u64,
    },
    /// A head-to-head evaluation scored one scheme.
    PolicyEvaluated {
        /// Scheme index in `EvalScheme::ALL` order (0 = FCFS, 1 = EASY,
        /// 2 = RUSH, 3 = learned).
        scheme: u32,
        /// Mean bounded slowdown across episodes, milli-units.
        bsld_milli: u64,
        /// Episodes averaged.
        episodes: u32,
    },
}

impl ObsEvent {
    /// Stable `kind` label used in trace output.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::JobSubmitted { .. } => "job_submitted",
            ObsEvent::JobStarted { .. } => "job_started",
            ObsEvent::JobSkipped { .. } => "job_skipped",
            ObsEvent::JobKilled { .. } => "job_killed",
            ObsEvent::JobRequeued { .. } => "job_requeued",
            ObsEvent::JobFailed { .. } => "job_failed",
            ObsEvent::JobFinished { .. } => "job_finished",
            ObsEvent::JobRejected { .. } => "job_rejected",
            ObsEvent::PredictorVerdict { .. } => "predictor_verdict",
            ObsEvent::PredictorFallback { .. } => "predictor_fallback",
            ObsEvent::BackfillReservation { .. } => "backfill_reservation",
            ObsEvent::NodeDown { .. } => "node_down",
            ObsEvent::NodeUp { .. } => "node_up",
            ObsEvent::NodeTrusted { .. } => "node_trusted",
            ObsEvent::AuditViolation { .. } => "audit_violation",
            ObsEvent::PredictorDrift { .. } => "predictor_drift",
            ObsEvent::PredictorRetrain { .. } => "predictor_retrain",
            ObsEvent::PredictorShadowStart { .. } => "predictor_shadow_start",
            ObsEvent::PredictorSwap { .. } => "predictor_swap",
            ObsEvent::PredictorRollback { .. } => "predictor_rollback",
            ObsEvent::NodeDegraded { .. } => "node_degraded",
            ObsEvent::NodeRestored { .. } => "node_restored",
            ObsEvent::StormStarted { .. } => "storm_started",
            ObsEvent::StormEnded { .. } => "storm_ended",
            ObsEvent::NodeFlapped { .. } => "node_flapped",
            ObsEvent::PolicyTrainRound { .. } => "policy_train_round",
            ObsEvent::PolicyEvaluated { .. } => "policy_evaluated",
        }
    }

    /// The job this event concerns; `None` for node-level events.
    pub fn job(&self) -> Option<u64> {
        match *self {
            ObsEvent::JobSubmitted { job }
            | ObsEvent::JobStarted { job, .. }
            | ObsEvent::JobSkipped { job, .. }
            | ObsEvent::JobKilled { job }
            | ObsEvent::JobRequeued { job, .. }
            | ObsEvent::JobFailed { job, .. }
            | ObsEvent::JobFinished { job }
            | ObsEvent::JobRejected { job, .. }
            | ObsEvent::PredictorVerdict { job, .. }
            | ObsEvent::PredictorFallback { job, .. }
            | ObsEvent::BackfillReservation { job, .. } => Some(job),
            ObsEvent::NodeDown { .. }
            | ObsEvent::NodeUp { .. }
            | ObsEvent::NodeTrusted { .. }
            | ObsEvent::AuditViolation { .. }
            | ObsEvent::PredictorDrift { .. }
            | ObsEvent::PredictorRetrain { .. }
            | ObsEvent::PredictorShadowStart { .. }
            | ObsEvent::PredictorSwap { .. }
            | ObsEvent::PredictorRollback { .. }
            | ObsEvent::NodeDegraded { .. }
            | ObsEvent::NodeRestored { .. }
            | ObsEvent::StormStarted { .. }
            | ObsEvent::StormEnded { .. }
            | ObsEvent::NodeFlapped { .. }
            | ObsEvent::PolicyTrainRound { .. }
            | ObsEvent::PolicyEvaluated { .. } => None,
        }
    }

    /// Encodes the event as a compact integer list `[tag, fields...]` for
    /// snapshots. The tag values are part of the snapshot format and must
    /// never be renumbered.
    pub fn to_val(&self) -> Val {
        let v = |items: Vec<u64>| Val::List(items.into_iter().map(Val::U64).collect());
        match *self {
            ObsEvent::JobSubmitted { job } => v(vec![0, job]),
            ObsEvent::JobStarted { job, nodes, skips } => {
                v(vec![1, job, u64::from(nodes), u64::from(skips)])
            }
            ObsEvent::JobSkipped { job, skips } => v(vec![2, job, u64::from(skips)]),
            ObsEvent::JobKilled { job } => v(vec![3, job]),
            ObsEvent::JobRequeued { job, attempt } => v(vec![4, job, u64::from(attempt)]),
            ObsEvent::JobFailed { job, attempts } => v(vec![5, job, u64::from(attempts)]),
            ObsEvent::JobFinished { job } => v(vec![6, job]),
            ObsEvent::PredictorVerdict { job, class } => v(vec![7, job, u64::from(class)]),
            ObsEvent::PredictorFallback { job, reason } => {
                let r = match reason {
                    FallbackReason::TelemetryGap => 0,
                    FallbackReason::ModelError => 1,
                };
                v(vec![8, job, r])
            }
            ObsEvent::BackfillReservation {
                job,
                shadow_start_us,
                extra_nodes,
            } => v(vec![9, job, shadow_start_us, u64::from(extra_nodes)]),
            ObsEvent::NodeDown { node } => v(vec![10, u64::from(node)]),
            ObsEvent::NodeUp { node } => v(vec![11, u64::from(node)]),
            ObsEvent::NodeTrusted { node } => v(vec![12, u64::from(node)]),
            ObsEvent::AuditViolation { invariant, detail } => {
                v(vec![13, u64::from(invariant), detail])
            }
            ObsEvent::PredictorDrift { score_milli } => v(vec![14, u64::from(score_milli)]),
            ObsEvent::PredictorRetrain { version, samples } => {
                v(vec![15, u64::from(version), u64::from(samples)])
            }
            ObsEvent::PredictorShadowStart { version, decisions } => {
                v(vec![16, u64::from(version), u64::from(decisions)])
            }
            ObsEvent::PredictorSwap {
                from_version,
                to_version,
            } => v(vec![17, u64::from(from_version), u64::from(to_version)]),
            ObsEvent::PredictorRollback {
                from_version,
                to_version,
            } => v(vec![18, u64::from(from_version), u64::from(to_version)]),
            ObsEvent::JobRejected {
                job,
                nodes,
                capacity,
            } => v(vec![19, job, u64::from(nodes), u64::from(capacity)]),
            ObsEvent::NodeDegraded { node, factor_milli } => {
                v(vec![20, u64::from(node), u64::from(factor_milli)])
            }
            ObsEvent::NodeRestored { node } => v(vec![21, u64::from(node)]),
            ObsEvent::StormStarted {
                region,
                intensity_milli,
            } => v(vec![22, u64::from(region), u64::from(intensity_milli)]),
            ObsEvent::StormEnded { region } => v(vec![23, u64::from(region)]),
            ObsEvent::NodeFlapped { node, cycles } => {
                v(vec![24, u64::from(node), u64::from(cycles)])
            }
            ObsEvent::PolicyTrainRound {
                round,
                best_bsld_milli,
                elite_bsld_milli,
            } => v(vec![
                25,
                u64::from(round),
                best_bsld_milli,
                elite_bsld_milli,
            ]),
            ObsEvent::PolicyEvaluated {
                scheme,
                bsld_milli,
                episodes,
            } => v(vec![26, u64::from(scheme), bsld_milli, u64::from(episodes)]),
        }
    }

    /// Decodes an event encoded by [`ObsEvent::to_val`].
    pub fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let items = v.as_list()?;
        let field = |i: usize| -> Result<u64, SnapshotError> {
            items
                .get(i)
                .ok_or_else(|| SnapshotError::Schema("short event".to_string()))?
                .as_u64()
        };
        Ok(match field(0)? {
            0 => ObsEvent::JobSubmitted { job: field(1)? },
            1 => ObsEvent::JobStarted {
                job: field(1)?,
                nodes: field(2)? as u32,
                skips: field(3)? as u32,
            },
            2 => ObsEvent::JobSkipped {
                job: field(1)?,
                skips: field(2)? as u32,
            },
            3 => ObsEvent::JobKilled { job: field(1)? },
            4 => ObsEvent::JobRequeued {
                job: field(1)?,
                attempt: field(2)? as u32,
            },
            5 => ObsEvent::JobFailed {
                job: field(1)?,
                attempts: field(2)? as u32,
            },
            6 => ObsEvent::JobFinished { job: field(1)? },
            7 => ObsEvent::PredictorVerdict {
                job: field(1)?,
                class: field(2)? as u32,
            },
            8 => ObsEvent::PredictorFallback {
                job: field(1)?,
                reason: match field(2)? {
                    0 => FallbackReason::TelemetryGap,
                    1 => FallbackReason::ModelError,
                    other => {
                        return Err(SnapshotError::Schema(format!("fallback reason {other}")));
                    }
                },
            },
            9 => ObsEvent::BackfillReservation {
                job: field(1)?,
                shadow_start_us: field(2)?,
                extra_nodes: field(3)? as u32,
            },
            10 => ObsEvent::NodeDown {
                node: field(1)? as u32,
            },
            11 => ObsEvent::NodeUp {
                node: field(1)? as u32,
            },
            12 => ObsEvent::NodeTrusted {
                node: field(1)? as u32,
            },
            13 => ObsEvent::AuditViolation {
                invariant: field(1)? as u32,
                detail: field(2)?,
            },
            14 => ObsEvent::PredictorDrift {
                score_milli: field(1)? as u32,
            },
            15 => ObsEvent::PredictorRetrain {
                version: field(1)? as u32,
                samples: field(2)? as u32,
            },
            16 => ObsEvent::PredictorShadowStart {
                version: field(1)? as u32,
                decisions: field(2)? as u32,
            },
            17 => ObsEvent::PredictorSwap {
                from_version: field(1)? as u32,
                to_version: field(2)? as u32,
            },
            18 => ObsEvent::PredictorRollback {
                from_version: field(1)? as u32,
                to_version: field(2)? as u32,
            },
            19 => ObsEvent::JobRejected {
                job: field(1)?,
                nodes: field(2)? as u32,
                capacity: field(3)? as u32,
            },
            20 => ObsEvent::NodeDegraded {
                node: field(1)? as u32,
                factor_milli: field(2)? as u32,
            },
            21 => ObsEvent::NodeRestored {
                node: field(1)? as u32,
            },
            22 => ObsEvent::StormStarted {
                region: field(1)? as u32,
                intensity_milli: field(2)? as u32,
            },
            23 => ObsEvent::StormEnded {
                region: field(1)? as u32,
            },
            24 => ObsEvent::NodeFlapped {
                node: field(1)? as u32,
                cycles: field(2)? as u32,
            },
            25 => ObsEvent::PolicyTrainRound {
                round: field(1)? as u32,
                best_bsld_milli: field(2)?,
                elite_bsld_milli: field(3)?,
            },
            26 => ObsEvent::PolicyEvaluated {
                scheme: field(1)? as u32,
                bsld_milli: field(2)?,
                episodes: field(3)? as u32,
            },
            other => {
                return Err(SnapshotError::Schema(format!("event tag {other}")));
            }
        })
    }
}

/// A traced event: sequence number, simulation timestamp, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotone per-trace sequence number (0-based; gaps never occur —
    /// ring-buffer eviction drops from the *front*).
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// The event payload.
    pub event: ObsEvent,
}

impl EventRecord {
    /// Renders the record as one canonical JSON line (no trailing newline).
    ///
    /// Key order is fixed: `seq`, `t_us`, `kind`, then payload fields in
    /// declaration order.
    pub fn to_json_line(&self) -> String {
        let base = JsonObject::new()
            .u64("seq", self.seq)
            .u64("t_us", self.at.as_micros())
            .str("kind", self.event.kind());
        let obj = match self.event {
            ObsEvent::JobSubmitted { job }
            | ObsEvent::JobKilled { job }
            | ObsEvent::JobFinished { job } => base.u64("job", job),
            ObsEvent::JobStarted { job, nodes, skips } => base
                .u64("job", job)
                .u64("nodes", nodes as u64)
                .u64("skips", skips as u64),
            ObsEvent::JobSkipped { job, skips } => base.u64("job", job).u64("skips", skips as u64),
            ObsEvent::JobRequeued { job, attempt } => {
                base.u64("job", job).u64("attempt", attempt as u64)
            }
            ObsEvent::JobFailed { job, attempts } => {
                base.u64("job", job).u64("attempts", attempts as u64)
            }
            ObsEvent::PredictorVerdict { job, class } => {
                base.u64("job", job).u64("class", class as u64)
            }
            ObsEvent::PredictorFallback { job, reason } => {
                base.u64("job", job).str("reason", reason.label())
            }
            ObsEvent::JobRejected {
                job,
                nodes,
                capacity,
            } => base
                .u64("job", job)
                .u64("nodes", nodes as u64)
                .u64("capacity", capacity as u64),
            ObsEvent::BackfillReservation {
                job,
                shadow_start_us,
                extra_nodes,
            } => base
                .u64("job", job)
                .u64("shadow_start_us", shadow_start_us)
                .u64("extra_nodes", extra_nodes as u64),
            ObsEvent::NodeDown { node }
            | ObsEvent::NodeUp { node }
            | ObsEvent::NodeTrusted { node } => base.u64("node", node as u64),
            ObsEvent::AuditViolation { invariant, detail } => base
                .u64("invariant", invariant as u64)
                .u64("detail", detail),
            ObsEvent::PredictorDrift { score_milli } => base.u64("score_milli", score_milli as u64),
            ObsEvent::PredictorRetrain { version, samples } => base
                .u64("version", version as u64)
                .u64("samples", samples as u64),
            ObsEvent::PredictorShadowStart { version, decisions } => base
                .u64("version", version as u64)
                .u64("decisions", decisions as u64),
            ObsEvent::PredictorSwap {
                from_version,
                to_version,
            } => base
                .u64("from_version", from_version as u64)
                .u64("to_version", to_version as u64),
            ObsEvent::PredictorRollback {
                from_version,
                to_version,
            } => base
                .u64("from_version", from_version as u64)
                .u64("to_version", to_version as u64),
            ObsEvent::NodeDegraded { node, factor_milli } => base
                .u64("node", node as u64)
                .u64("factor_milli", factor_milli as u64),
            ObsEvent::NodeRestored { node } => base.u64("node", node as u64),
            ObsEvent::StormStarted {
                region,
                intensity_milli,
            } => base
                .u64("region", region as u64)
                .u64("intensity_milli", intensity_milli as u64),
            ObsEvent::StormEnded { region } => base.u64("region", region as u64),
            ObsEvent::NodeFlapped { node, cycles } => {
                base.u64("node", node as u64).u64("cycles", cycles as u64)
            }
            ObsEvent::PolicyTrainRound {
                round,
                best_bsld_milli,
                elite_bsld_milli,
            } => base
                .u64("round", round as u64)
                .u64("best_bsld_milli", best_bsld_milli)
                .u64("elite_bsld_milli", elite_bsld_milli),
            ObsEvent::PolicyEvaluated {
                scheme,
                bsld_milli,
                episodes,
            } => base
                .u64("scheme", scheme as u64)
                .u64("bsld_milli", bsld_milli)
                .u64("episodes", episodes as u64),
        };
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(event: ObsEvent) -> EventRecord {
        EventRecord {
            seq: 7,
            at: SimTime::from_secs(2),
            event,
        }
    }

    #[test]
    fn kinds_and_jobs() {
        assert_eq!(ObsEvent::JobSubmitted { job: 1 }.kind(), "job_submitted");
        assert_eq!(ObsEvent::JobSubmitted { job: 1 }.job(), Some(1));
        assert_eq!(ObsEvent::NodeDown { node: 3 }.job(), None);
        assert_eq!(ObsEvent::NodeTrusted { node: 3 }.kind(), "node_trusted");
        assert_eq!(FallbackReason::TelemetryGap.label(), "telemetry_gap");
        assert_eq!(FallbackReason::ModelError.label(), "model_error");
    }

    #[test]
    fn json_lines_have_fixed_key_order() {
        let line = record(ObsEvent::JobStarted {
            job: 4,
            nodes: 16,
            skips: 2,
        })
        .to_json_line();
        assert_eq!(
            line,
            "{\"seq\":7,\"t_us\":2000000,\"kind\":\"job_started\",\"job\":4,\"nodes\":16,\"skips\":2}"
        );
    }

    #[test]
    fn fallback_line_carries_reason() {
        let line = record(ObsEvent::PredictorFallback {
            job: 9,
            reason: FallbackReason::ModelError,
        })
        .to_json_line();
        assert!(
            line.ends_with("\"job\":9,\"reason\":\"model_error\"}"),
            "{line}"
        );
    }

    #[test]
    fn every_variant_renders_its_kind() {
        let variants = [
            ObsEvent::JobSubmitted { job: 0 },
            ObsEvent::JobStarted {
                job: 0,
                nodes: 1,
                skips: 0,
            },
            ObsEvent::JobSkipped { job: 0, skips: 1 },
            ObsEvent::JobKilled { job: 0 },
            ObsEvent::JobRequeued { job: 0, attempt: 1 },
            ObsEvent::JobFailed {
                job: 0,
                attempts: 2,
            },
            ObsEvent::JobFinished { job: 0 },
            ObsEvent::JobRejected {
                job: 0,
                nodes: 4096,
                capacity: 64,
            },
            ObsEvent::PredictorVerdict { job: 0, class: 2 },
            ObsEvent::PredictorFallback {
                job: 0,
                reason: FallbackReason::TelemetryGap,
            },
            ObsEvent::BackfillReservation {
                job: 0,
                shadow_start_us: 5,
                extra_nodes: 3,
            },
            ObsEvent::NodeDown { node: 0 },
            ObsEvent::NodeUp { node: 0 },
            ObsEvent::NodeTrusted { node: 0 },
            ObsEvent::AuditViolation {
                invariant: 2,
                detail: 99,
            },
            ObsEvent::PredictorDrift { score_milli: 180 },
            ObsEvent::PredictorRetrain {
                version: 2,
                samples: 64,
            },
            ObsEvent::PredictorShadowStart {
                version: 2,
                decisions: 32,
            },
            ObsEvent::PredictorSwap {
                from_version: 1,
                to_version: 2,
            },
            ObsEvent::PredictorRollback {
                from_version: 2,
                to_version: 3,
            },
            ObsEvent::NodeDegraded {
                node: 4,
                factor_milli: 500,
            },
            ObsEvent::NodeRestored { node: 4 },
            ObsEvent::StormStarted {
                region: 1,
                intensity_milli: 700,
            },
            ObsEvent::StormEnded { region: 1 },
            ObsEvent::NodeFlapped { node: 6, cycles: 3 },
            ObsEvent::PolicyTrainRound {
                round: 2,
                best_bsld_milli: 1_250,
                elite_bsld_milli: 1_900,
            },
            ObsEvent::PolicyEvaluated {
                scheme: 3,
                bsld_milli: 1_100,
                episodes: 4,
            },
        ];
        for e in variants {
            let line = record(e).to_json_line();
            assert!(
                line.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{line}"
            );
        }
    }

    #[test]
    fn every_variant_round_trips_through_val() {
        let variants = [
            ObsEvent::JobSubmitted { job: 3 },
            ObsEvent::JobStarted {
                job: 1,
                nodes: 64,
                skips: 2,
            },
            ObsEvent::JobSkipped { job: 5, skips: 1 },
            ObsEvent::JobKilled { job: 8 },
            ObsEvent::JobRequeued { job: 8, attempt: 1 },
            ObsEvent::JobFailed {
                job: 8,
                attempts: 3,
            },
            ObsEvent::JobFinished { job: 1 },
            ObsEvent::JobRejected {
                job: 6,
                nodes: 100_000,
                capacity: 480,
            },
            ObsEvent::PredictorVerdict { job: 2, class: 2 },
            ObsEvent::PredictorFallback {
                job: 2,
                reason: FallbackReason::TelemetryGap,
            },
            ObsEvent::PredictorFallback {
                job: 2,
                reason: FallbackReason::ModelError,
            },
            ObsEvent::BackfillReservation {
                job: 4,
                shadow_start_us: 123_456,
                extra_nodes: 7,
            },
            ObsEvent::NodeDown { node: 12 },
            ObsEvent::NodeUp { node: 12 },
            ObsEvent::NodeTrusted { node: 12 },
            ObsEvent::AuditViolation {
                invariant: 4,
                detail: 17,
            },
            ObsEvent::PredictorDrift { score_milli: 250 },
            ObsEvent::PredictorRetrain {
                version: 3,
                samples: 128,
            },
            ObsEvent::PredictorShadowStart {
                version: 3,
                decisions: 16,
            },
            ObsEvent::PredictorSwap {
                from_version: 2,
                to_version: 3,
            },
            ObsEvent::PredictorRollback {
                from_version: 3,
                to_version: 4,
            },
            ObsEvent::NodeDegraded {
                node: 9,
                factor_milli: 250,
            },
            ObsEvent::NodeRestored { node: 9 },
            ObsEvent::StormStarted {
                region: 2,
                intensity_milli: 900,
            },
            ObsEvent::StormEnded { region: 2 },
            ObsEvent::NodeFlapped {
                node: 15,
                cycles: 5,
            },
            ObsEvent::PolicyTrainRound {
                round: 5,
                best_bsld_milli: 3_000,
                elite_bsld_milli: 4_500,
            },
            ObsEvent::PolicyEvaluated {
                scheme: 0,
                bsld_milli: 9_000,
                episodes: 2,
            },
        ];
        for e in variants {
            assert_eq!(ObsEvent::from_val(&e.to_val()).unwrap(), e);
        }
    }
}
