//! Property-based tests for the observability layer: tracer ring
//! invariants, JSONL determinism, and registry export stability.

use proptest::prelude::*;
use rush_obs::tracer::records_to_jsonl;
use rush_obs::{EventTracer, MetricsRegistry, ObsEvent};
use rush_simkit::time::SimTime;

fn arb_event() -> impl Strategy<Value = ObsEvent> {
    prop_oneof![
        (0u64..100).prop_map(|job| ObsEvent::JobSubmitted { job }),
        (0u64..100, 1u32..64, 0u32..8).prop_map(|(job, nodes, skips)| ObsEvent::JobStarted {
            job,
            nodes,
            skips
        }),
        (0u64..100, 1u32..8).prop_map(|(job, skips)| ObsEvent::JobSkipped { job, skips }),
        (0u64..100).prop_map(|job| ObsEvent::JobKilled { job }),
        (0u64..100, 1u32..4).prop_map(|(job, attempt)| ObsEvent::JobRequeued { job, attempt }),
        (0u64..100).prop_map(|job| ObsEvent::JobFinished { job }),
        (0u64..100, 0u32..3).prop_map(|(job, class)| ObsEvent::PredictorVerdict { job, class }),
        (0u32..64).prop_map(|node| ObsEvent::NodeDown { node }),
        (0u32..64).prop_map(|node| ObsEvent::NodeUp { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracer_preserves_order_and_sequences(
        events in proptest::collection::vec((0u64..10_000, arb_event()), 0..200),
        cap in 1usize..64,
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(t, _)| t);

        let mut tr = EventTracer::enabled(cap);
        for &(t, e) in &sorted {
            tr.emit(SimTime::from_secs(t), e);
        }

        // Emitted = evicted + held; the ring never exceeds its capacity.
        prop_assert_eq!(tr.emitted(), sorted.len() as u64);
        prop_assert_eq!(tr.evicted() + tr.len() as u64, tr.emitted());
        prop_assert!(tr.len() <= cap);

        // Sequence numbers are contiguous and end at emitted - 1; event
        // timestamps are monotone in sequence order (sim-time ordering).
        let recs: Vec<_> = tr.records().collect();
        for pair in recs.windows(2) {
            prop_assert_eq!(pair[1].seq, pair[0].seq + 1);
            prop_assert!(pair[1].at >= pair[0].at);
        }
        if let Some(last) = recs.last() {
            prop_assert_eq!(last.seq, tr.emitted() - 1);
        }

        // The held suffix is exactly the tail of what was emitted.
        let tail = &sorted[sorted.len() - tr.len()..];
        for (rec, &(t, e)) in recs.iter().zip(tail) {
            prop_assert_eq!(rec.at, SimTime::from_secs(t));
            prop_assert_eq!(rec.event, e);
        }
    }

    #[test]
    fn identical_streams_serialize_to_identical_bytes(
        events in proptest::collection::vec((0u64..10_000, arb_event()), 0..100),
    ) {
        let run = || {
            let mut tr = EventTracer::enabled(1 << 16);
            for &(t, e) in &events {
                tr.emit(SimTime::from_secs(t), e);
            }
            tr.to_jsonl()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        // take_records + records_to_jsonl is the same serialization path.
        let mut tr = EventTracer::enabled(1 << 16);
        for &(t, e) in &events {
            tr.emit(SimTime::from_secs(t), e);
        }
        prop_assert_eq!(records_to_jsonl(&tr.take_records()), a);
    }

    #[test]
    fn jsonl_lines_are_parseable_shape(
        events in proptest::collection::vec((0u64..10_000, arb_event()), 1..50),
    ) {
        let mut tr = EventTracer::enabled(1 << 16);
        for &(t, e) in &events {
            tr.emit(SimTime::from_secs(t), e);
        }
        for line in tr.to_jsonl().lines() {
            prop_assert!(line.starts_with("{\"seq\":"), "{}", line);
            prop_assert!(line.ends_with('}'), "{}", line);
            prop_assert!(line.contains("\"t_us\":"), "{}", line);
            prop_assert!(line.contains("\"kind\":\""), "{}", line);
        }
    }

    #[test]
    fn registry_counter_sums_match_event_stream(
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        // Counting through the registry must agree with counting the raw
        // stream — the invariant the scheduler integration relies on.
        let mut reg = MetricsRegistry::new();
        let submitted = reg.register_counter("sched.jobs_submitted");
        let started = reg.register_counter("sched.jobs_started");
        let finished = reg.register_counter("sched.jobs_finished");
        for e in &events {
            match e {
                ObsEvent::JobSubmitted { .. } => reg.inc(submitted),
                ObsEvent::JobStarted { .. } => reg.inc(started),
                ObsEvent::JobFinished { .. } => reg.inc(finished),
                _ => {}
            }
        }
        let count = |pred: fn(&ObsEvent) -> bool| events.iter().filter(|e| pred(e)).count() as u64;
        prop_assert_eq!(
            reg.counter(submitted),
            count(|e| matches!(e, ObsEvent::JobSubmitted { .. }))
        );
        prop_assert_eq!(
            reg.counter(started),
            count(|e| matches!(e, ObsEvent::JobStarted { .. }))
        );
        prop_assert_eq!(
            reg.counter(finished),
            count(|e| matches!(e, ObsEvent::JobFinished { .. }))
        );
    }

    #[test]
    fn registry_export_is_registration_order_independent(
        values in proptest::collection::vec(0u64..1_000, 2..10),
    ) {
        let names: Vec<String> = (0..values.len())
            .map(|i| format!("prop.metric_{i}"))
            .collect();
        let forward = {
            let mut reg = MetricsRegistry::new();
            for (name, &v) in names.iter().zip(&values) {
                let id = reg.register_counter(name);
                reg.add(id, v);
            }
            (reg.to_json(), reg.to_csv())
        };
        let backward = {
            let mut reg = MetricsRegistry::new();
            for (name, &v) in names.iter().zip(&values).rev() {
                let id = reg.register_counter(name);
                reg.add(id, v);
            }
            (reg.to_json(), reg.to_csv())
        };
        prop_assert_eq!(forward, backward);
    }
}
