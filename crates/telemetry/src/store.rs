//! Time-indexed counter storage (the Cassandra/Sonar stand-in).
//!
//! The store has two interchangeable layouts:
//!
//! * **Columnar** — one [`TimeSeries`] per `(node, counter)` pair
//!   ([`MetricStore::new`]). This is the original layout; it scatters every
//!   90-counter sample across 90 heap buffers, which makes the record path
//!   memory-bound at full-machine scale (each sweep touches ~50k cache
//!   lines).
//! * **Row-major** — one block per node ([`MetricStore::new_row_major`]): a
//!   sampling round appends a single timestamp plus one contiguous row of
//!   `counter_count` values, exactly the shape the sampler produces, so a
//!   sweep is a streaming write. Window queries recover per-counter columns
//!   by striding through rows, which stays cheap because retention keeps
//!   blocks short.
//!
//! Both layouts store identical data and answer every query identically —
//! the differential harness holds them to that — so the scheduler picks one
//! purely as a performance tuning. The store knows nothing about counter
//! semantics: it stores whatever vector the sampler hands it, as long as the
//! width never changes.

use rush_cluster::topology::NodeId;
use rush_simkit::series::TimeSeries;
use rush_simkit::snapshot::{Restorable, Snapshot, SnapshotError, Val};
use rush_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a scheduled sample never made it into the store.
///
/// Real monitoring pipelines lose data for distinguishable reasons, and the
/// fault-injection layer reproduces them as *explicit* gap records rather
/// than silence: downstream consumers can then compute coverage and decide
/// whether a window is trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapReason {
    /// Random monitoring-pipeline loss (daemon restart, network hiccup).
    Dropout,
    /// A machine-wide telemetry blackout window was active.
    Blackout,
    /// The sample was drawn but corrupted and had to be discarded.
    Corrupt,
    /// The node was down; nothing to sample.
    NodeDown,
}

/// One missing sample: when it was due and why it is missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gap {
    /// The sampling-round timestamp the sample was due at.
    pub at: SimTime,
    /// Why it is missing.
    pub reason: GapReason,
}

/// One node's samples in the row-major layout: `times[i]` stamps the row
/// `values[i * width .. (i + 1) * width]`.
#[derive(Debug, Clone, Default)]
struct NodeBlock {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl NodeBlock {
    /// Appends a row. Rows must arrive in non-decreasing time order;
    /// out-of-order appends panic in debug builds and are clamped to the
    /// last timestamp otherwise (same contract as [`TimeSeries::push`]).
    fn push_row(&mut self, at: SimTime, row: &[f64]) {
        let at = match self.times.last() {
            Some(&last) => {
                debug_assert!(at >= last, "out-of-order append at {at}, last {last}");
                at.max(last)
            }
            None => at,
        };
        self.times.push(at);
        self.values.extend_from_slice(row);
    }

    /// The row index range covering `[from, to)`.
    fn row_range(&self, from: SimTime, to: SimTime) -> (usize, usize) {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        (lo, hi)
    }
}

/// The two physical layouts behind the same logical store.
#[derive(Debug, Clone)]
enum Repr {
    /// One series per `(node, counter)`, indexed `node * width + counter`.
    Columnar(Vec<TimeSeries>),
    /// One row-major block per node.
    RowMajor(Vec<NodeBlock>),
}

/// Per-node, per-counter sample storage.
#[derive(Debug, Clone)]
pub struct MetricStore {
    node_count: u32,
    counter_count: usize,
    repr: Repr,
    /// Missing-sample records per node, append-only in time order.
    gaps: Vec<Vec<Gap>>,
}

impl MetricStore {
    /// Creates columnar storage for `node_count` nodes × `counter_count`
    /// counters (the original layout).
    pub fn new(node_count: u32, counter_count: usize) -> Self {
        assert!(counter_count > 0, "store needs at least one counter");
        MetricStore {
            node_count,
            counter_count,
            repr: Repr::Columnar(vec![TimeSeries::new(); node_count as usize * counter_count]),
            gaps: vec![Vec::new(); node_count as usize],
        }
    }

    /// Creates row-major storage: one contiguous block per node, appended a
    /// whole sample row at a time.
    pub fn new_row_major(node_count: u32, counter_count: usize) -> Self {
        assert!(counter_count > 0, "store needs at least one counter");
        MetricStore {
            node_count,
            counter_count,
            repr: Repr::RowMajor(vec![NodeBlock::default(); node_count as usize]),
            gaps: vec![Vec::new(); node_count as usize],
        }
    }

    /// True when this store uses the row-major block layout.
    pub fn is_row_major(&self) -> bool {
        matches!(self.repr, Repr::RowMajor(_))
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Counters per node.
    pub fn counter_count(&self) -> usize {
        self.counter_count
    }

    fn index(&self, node: NodeId, counter: usize) -> usize {
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        debug_assert!(
            counter < self.counter_count,
            "counter {counter} out of range"
        );
        node.0 as usize * self.counter_count + counter
    }

    /// Records one full counter vector for `node` at time `at`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the store's counter width.
    pub fn record(&mut self, node: NodeId, at: SimTime, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.counter_count,
            "sample width {} != store width {}",
            values.len(),
            self.counter_count
        );
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        match &mut self.repr {
            Repr::Columnar(series) => {
                let base = node.0 as usize * self.counter_count;
                for (i, &v) in values.iter().enumerate() {
                    series[base + i].push(at, v);
                }
            }
            Repr::RowMajor(blocks) => blocks[node.0 as usize].push_row(at, values),
        }
    }

    /// Records that `node`'s sample due at `at` was lost, and why.
    pub fn record_gap(&mut self, node: NodeId, at: SimTime, reason: GapReason) {
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        self.gaps[node.0 as usize].push(Gap { at, reason });
    }

    /// The missing-sample records for `node`, in time order.
    pub fn gaps(&self, node: NodeId) -> &[Gap] {
        &self.gaps[node.0 as usize]
    }

    /// Total gap records across all nodes.
    pub fn gap_count(&self) -> usize {
        self.gaps.iter().map(Vec::len).sum()
    }

    /// Number of stored sample rows for `node` in `[from, to)`.
    fn rows_in(&self, node: NodeId, from: SimTime, to: SimTime) -> usize {
        match &self.repr {
            Repr::Columnar(series) => series[self.index(node, 0)].window(from, to).len(),
            Repr::RowMajor(blocks) => {
                let (lo, hi) = blocks[node.0 as usize].row_range(from, to);
                hi - lo
            }
        }
    }

    /// Fraction of scheduled samples in `[from, to)` across `nodes` that
    /// actually made it into the store: `kept / (kept + lost)`.
    ///
    /// Returns 1.0 when nothing was scheduled in the window — an empty
    /// window is "fully covered", not suspicious; staleness is the signal
    /// for that case (see [`crate::aggregate::window_quality`]).
    pub fn coverage(&self, nodes: &[NodeId], from: SimTime, to: SimTime) -> f64 {
        let mut kept = 0usize;
        let mut lost = 0usize;
        for &node in nodes {
            kept += self.rows_in(node, from, to);
            lost += self.gaps[node.0 as usize]
                .iter()
                .filter(|g| g.at >= from && g.at < to)
                .count();
        }
        if kept + lost == 0 {
            1.0
        } else {
            kept as f64 / (kept + lost) as f64
        }
    }

    /// Timestamp of the most recent stored sample at or before `t` across
    /// `nodes`; `None` if no node has any sample by then.
    pub fn latest_sample_at(&self, nodes: &[NodeId], t: SimTime) -> Option<SimTime> {
        let mut latest = None;
        for &node in nodes {
            // All counters of a node share timestamps, so the node's
            // timestamp column (counter 0 in the columnar layout) is
            // representative.
            let candidate = match &self.repr {
                Repr::Columnar(series) => {
                    let mut best = None;
                    for (at, _) in series[self.index(node, 0)].iter() {
                        if at > t {
                            break;
                        }
                        best = Some(at);
                    }
                    best
                }
                Repr::RowMajor(blocks) => {
                    let times = &blocks[node.0 as usize].times;
                    let idx = times.partition_point(|&at| at <= t);
                    (idx > 0).then(|| times[idx - 1])
                }
            };
            latest = latest.max(candidate);
        }
        latest
    }

    /// The rows of `node` with timestamps in `[from, to)`: the matching
    /// timestamps plus the row-major value block
    /// (`values[i * counter_count + c]` is counter `c` of the `i`-th
    /// returned row). This is the zero-copy bulk-query path — aggregation
    /// walks rows once instead of binary-searching per counter.
    ///
    /// Only the row-major layout can answer without copying; columnar
    /// stores return `None` and callers fall back to per-counter
    /// [`window`](Self::window) queries.
    pub fn rows(&self, node: NodeId, from: SimTime, to: SimTime) -> Option<(&[SimTime], &[f64])> {
        match &self.repr {
            Repr::Columnar(_) => None,
            Repr::RowMajor(blocks) => {
                let block = &blocks[node.0 as usize];
                let (lo, hi) = block.row_range(from, to);
                Some((
                    &block.times[lo..hi],
                    &block.values[lo * self.counter_count..hi * self.counter_count],
                ))
            }
        }
    }

    /// Samples of `counter` on `node` within `[from, to)`, in time order.
    pub fn window(&self, node: NodeId, counter: usize, from: SimTime, to: SimTime) -> Vec<f64> {
        match &self.repr {
            Repr::Columnar(series) => series[self.index(node, counter)].window(from, to).to_vec(),
            Repr::RowMajor(blocks) => {
                debug_assert!(
                    counter < self.counter_count,
                    "counter {counter} out of range"
                );
                let block = &blocks[node.0 as usize];
                let (lo, hi) = block.row_range(from, to);
                (lo..hi)
                    .map(|row| block.values[row * self.counter_count + counter])
                    .collect()
            }
        }
    }

    /// Total stored points across all series.
    pub fn point_count(&self) -> usize {
        match &self.repr {
            Repr::Columnar(series) => series.iter().map(TimeSeries::len).sum(),
            Repr::RowMajor(blocks) => blocks.iter().map(|b| b.values.len()).sum(),
        }
    }

    /// Drops all samples and gap records before `cutoff` (memory bound for
    /// long campaigns).
    pub fn retain_from(&mut self, cutoff: SimTime) {
        match &mut self.repr {
            Repr::Columnar(series) => {
                for s in series {
                    s.retain_from(cutoff);
                }
            }
            Repr::RowMajor(blocks) => {
                let width = self.counter_count;
                for b in blocks {
                    let lo = b.times.partition_point(|&t| t < cutoff);
                    if lo > 0 {
                        b.times.drain(..lo);
                        b.values.drain(..lo * width);
                    }
                }
            }
        }
        for g in &mut self.gaps {
            let lo = g.partition_point(|gap| gap.at < cutoff);
            if lo > 0 {
                g.drain(..lo);
            }
        }
    }
}

impl Snapshot for MetricStore {
    fn to_val(&self) -> Val {
        let gaps = Val::List(
            self.gaps
                .iter()
                .map(|per_node| {
                    Val::List(
                        per_node
                            .iter()
                            .map(|g| {
                                let reason = match g.reason {
                                    GapReason::Dropout => 0,
                                    GapReason::Blackout => 1,
                                    GapReason::Corrupt => 2,
                                    GapReason::NodeDown => 3,
                                };
                                Val::List(vec![Val::U64(g.at.as_micros()), Val::U64(reason)])
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let base = Val::map()
            .with("node_count", Val::U64(u64::from(self.node_count)))
            .with("counter_count", Val::U64(self.counter_count as u64))
            .with("gaps", gaps);
        match &self.repr {
            Repr::Columnar(series) => base.with(
                "series",
                Val::List(series.iter().map(Snapshot::to_val).collect()),
            ),
            Repr::RowMajor(blocks) => base.with(
                "blocks",
                Val::List(
                    blocks
                        .iter()
                        .map(|b| {
                            Val::map()
                                .with(
                                    "t",
                                    Val::List(
                                        b.times.iter().map(|t| Val::U64(t.as_micros())).collect(),
                                    ),
                                )
                                .with(
                                    "v",
                                    Val::List(b.values.iter().map(|&v| Val::from_f64(v)).collect()),
                                )
                        })
                        .collect(),
                ),
            ),
        }
    }
}

impl Restorable for MetricStore {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let node_count = v.u("node_count")? as u32;
        let counter_count = v.u("counter_count")? as usize;
        // The layout is part of the snapshot: a store restores into the
        // representation it was captured from, so a resumed run keeps the
        // exact memory behavior of the uninterrupted one.
        let repr = if let Ok(series_vals) = v.l("series") {
            if series_vals.len() != node_count as usize * counter_count {
                return Err(SnapshotError::Schema("store series count".to_string()));
            }
            Repr::Columnar(
                series_vals
                    .iter()
                    .map(TimeSeries::from_val)
                    .collect::<Result<_, _>>()?,
            )
        } else {
            let block_vals = v.l("blocks")?;
            if block_vals.len() != node_count as usize {
                return Err(SnapshotError::Schema("store block count".to_string()));
            }
            let mut blocks = Vec::with_capacity(block_vals.len());
            for bv in block_vals {
                let times: Vec<SimTime> = bv
                    .l("t")?
                    .iter()
                    .map(|t| t.as_u64().map(SimTime::from_micros))
                    .collect::<Result<_, _>>()?;
                let values: Vec<f64> = bv
                    .l("v")?
                    .iter()
                    .map(Val::as_f64)
                    .collect::<Result<_, _>>()?;
                if values.len() != times.len() * counter_count {
                    return Err(SnapshotError::Schema("block shape mismatch".to_string()));
                }
                blocks.push(NodeBlock { times, values });
            }
            Repr::RowMajor(blocks)
        };
        let gap_vals = v.l("gaps")?;
        if gap_vals.len() != node_count as usize {
            return Err(SnapshotError::Schema("store gap rows".to_string()));
        }
        let mut gaps = Vec::with_capacity(gap_vals.len());
        for per_node in gap_vals {
            let mut row = Vec::new();
            for g in per_node.as_list()? {
                let pair = g.as_list()?;
                if pair.len() != 2 {
                    return Err(SnapshotError::Schema("gap pair".to_string()));
                }
                let reason = match pair[1].as_u64()? {
                    0 => GapReason::Dropout,
                    1 => GapReason::Blackout,
                    2 => GapReason::Corrupt,
                    3 => GapReason::NodeDown,
                    other => {
                        return Err(SnapshotError::Schema(format!("gap reason {other}")));
                    }
                };
                row.push(Gap {
                    at: SimTime::from_micros(pair[0].as_u64()?),
                    reason,
                });
            }
            gaps.push(row);
        }
        Ok(MetricStore {
            node_count,
            counter_count,
            repr,
            gaps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Runs a test body against both layouts so every behavior contract is
    /// pinned layout-independently.
    fn for_both_layouts(node_count: u32, width: usize, body: impl Fn(MetricStore)) {
        body(MetricStore::new(node_count, width));
        body(MetricStore::new_row_major(node_count, width));
    }

    #[test]
    fn record_and_window_round_trip() {
        for_both_layouts(4, 3, |mut store| {
            store.record(NodeId(1), t(10), &[1.0, 2.0, 3.0]);
            store.record(NodeId(1), t(20), &[4.0, 5.0, 6.0]);
            assert_eq!(store.window(NodeId(1), 0, t(0), t(30)), &[1.0, 4.0]);
            assert_eq!(store.window(NodeId(1), 2, t(15), t(30)), &[6.0]);
            assert_eq!(store.window(NodeId(0), 0, t(0), t(30)), &[] as &[f64]);
            assert_eq!(store.point_count(), 6);
        });
    }

    #[test]
    fn rows_expose_matching_times_and_row_major_values() {
        let mut store = MetricStore::new_row_major(2, 2);
        store.record(NodeId(0), t(10), &[1.0, 2.0]);
        store.record(NodeId(0), t(20), &[3.0, 4.0]);
        store.record(NodeId(0), t(30), &[5.0, 6.0]);
        let (times, values) = store.rows(NodeId(0), t(15), t(35)).unwrap();
        assert_eq!(times, &[t(20), t(30)]);
        assert_eq!(values, &[3.0, 4.0, 5.0, 6.0]);
        let (times, values) = store.rows(NodeId(1), t(0), t(100)).unwrap();
        assert!(times.is_empty());
        assert!(values.is_empty());
        // Columnar stores cannot answer the bulk query without copying.
        assert!(MetricStore::new(2, 2).rows(NodeId(0), t(0), t(1)).is_none());
    }

    #[test]
    fn layouts_answer_queries_identically() {
        let mut columnar = MetricStore::new(3, 2);
        let mut rows = MetricStore::new_row_major(3, 2);
        for s in 0..12u64 {
            let vals = [s as f64, -(s as f64) * 0.5];
            for store in [&mut columnar, &mut rows] {
                store.record(NodeId((s % 3) as u32), t(s * 10), &vals);
            }
        }
        columnar.record_gap(NodeId(1), t(35), GapReason::Dropout);
        rows.record_gap(NodeId(1), t(35), GapReason::Dropout);
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        for counter in 0..2 {
            for &node in &nodes {
                assert_eq!(
                    columnar.window(node, counter, t(20), t(90)),
                    rows.window(node, counter, t(20), t(90)),
                );
            }
        }
        assert_eq!(columnar.point_count(), rows.point_count());
        assert_eq!(
            columnar.coverage(&nodes, t(0), t(120)),
            rows.coverage(&nodes, t(0), t(120)),
        );
        assert_eq!(
            columnar.latest_sample_at(&nodes, t(75)),
            rows.latest_sample_at(&nodes, t(75)),
        );
        columnar.retain_from(t(40));
        rows.retain_from(t(40));
        assert_eq!(columnar.point_count(), rows.point_count());
        assert_eq!(
            columnar.window(NodeId(0), 0, t(0), t(200)),
            rows.window(NodeId(0), 0, t(0), t(200)),
        );
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_rejected() {
        let mut store = MetricStore::new(2, 3);
        store.record(NodeId(0), t(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_rejected_row_major() {
        let mut store = MetricStore::new_row_major(2, 3);
        store.record(NodeId(0), t(1), &[1.0, 2.0]);
    }

    #[test]
    fn retain_from_prunes_all_series() {
        for_both_layouts(2, 2, |mut store| {
            for s in 0..10 {
                store.record(NodeId(0), t(s), &[s as f64, 0.0]);
                store.record(NodeId(1), t(s), &[0.0, s as f64]);
            }
            assert_eq!(store.point_count(), 40);
            store.retain_from(t(8));
            assert_eq!(store.point_count(), 8);
            assert_eq!(store.window(NodeId(0), 0, t(0), t(100)), &[8.0, 9.0]);
            assert_eq!(store.window(NodeId(1), 1, t(0), t(100)), &[8.0, 9.0]);
        });
    }

    #[test]
    fn dimensions_exposed() {
        let store = MetricStore::new(7, 90);
        assert_eq!(store.node_count(), 7);
        assert_eq!(store.counter_count(), 90);
        assert!(!store.is_row_major());
        assert!(MetricStore::new_row_major(7, 90).is_row_major());
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_width_rejected() {
        MetricStore::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_width_rejected_row_major() {
        MetricStore::new_row_major(1, 0);
    }

    #[test]
    fn gaps_recorded_and_counted() {
        for_both_layouts(2, 1, |mut store| {
            store.record(NodeId(0), t(0), &[1.0]);
            store.record_gap(NodeId(0), t(10), GapReason::Dropout);
            store.record_gap(NodeId(1), t(10), GapReason::Blackout);
            assert_eq!(store.gap_count(), 2);
            assert_eq!(store.gaps(NodeId(0)).len(), 1);
            assert_eq!(store.gaps(NodeId(0))[0].reason, GapReason::Dropout);
            assert_eq!(store.gaps(NodeId(1))[0].at, t(10));
        });
    }

    #[test]
    fn coverage_is_kept_over_scheduled() {
        for_both_layouts(2, 1, |mut store| {
            // node 0: 3 kept, 1 lost; node 1: 2 kept, 2 lost
            store.record(NodeId(0), t(0), &[1.0]);
            store.record(NodeId(0), t(10), &[1.0]);
            store.record(NodeId(0), t(20), &[1.0]);
            store.record_gap(NodeId(0), t(30), GapReason::Dropout);
            store.record(NodeId(1), t(0), &[1.0]);
            store.record_gap(NodeId(1), t(10), GapReason::NodeDown);
            store.record_gap(NodeId(1), t(20), GapReason::Corrupt);
            store.record(NodeId(1), t(30), &[1.0]);
            let both = [NodeId(0), NodeId(1)];
            // 5 kept of 8 scheduled over the full window
            assert!((store.coverage(&both, t(0), t(40)) - 5.0 / 8.0).abs() < 1e-12);
            // Window bounds apply: at [10, 30) node 0 keeps 2/2, node 1 0/2.
            assert!((store.coverage(&both, t(10), t(30)) - 0.5).abs() < 1e-12);
            // Only node 0 over the same window is fully covered.
            assert_eq!(store.coverage(&[NodeId(0)], t(10), t(30)), 1.0);
        });
    }

    #[test]
    fn empty_window_coverage_is_full() {
        for_both_layouts(2, 1, |store| {
            assert_eq!(store.coverage(&[NodeId(0)], t(0), t(100)), 1.0);
        });
    }

    #[test]
    fn latest_sample_tracks_staleness_source() {
        for_both_layouts(2, 2, |mut store| {
            assert_eq!(store.latest_sample_at(&[NodeId(0)], t(100)), None);
            store.record(NodeId(0), t(10), &[1.0, 2.0]);
            store.record(NodeId(1), t(25), &[1.0, 2.0]);
            let both = [NodeId(0), NodeId(1)];
            assert_eq!(store.latest_sample_at(&both, t(100)), Some(t(25)));
            assert_eq!(store.latest_sample_at(&both, t(20)), Some(t(10)));
            // inclusive upper bound
            assert_eq!(store.latest_sample_at(&both, t(25)), Some(t(25)));
            assert_eq!(store.latest_sample_at(&both, t(5)), None);
        });
    }

    #[test]
    fn snapshot_round_trip_preserves_points_gaps_and_layout() {
        for_both_layouts(3, 2, |mut store| {
            store.record(NodeId(0), t(0), &[1.0, 2.0]);
            store.record(NodeId(2), t(10), &[3.5, -0.25]);
            store.record_gap(NodeId(1), t(5), GapReason::Blackout);
            store.record_gap(NodeId(1), t(15), GapReason::NodeDown);
            let back = MetricStore::from_val(&store.to_val()).unwrap();
            assert_eq!(back.node_count(), 3);
            assert_eq!(back.counter_count(), 2);
            assert_eq!(back.is_row_major(), store.is_row_major());
            assert_eq!(back.point_count(), store.point_count());
            assert_eq!(back.window(NodeId(2), 1, t(0), t(20)), &[-0.25]);
            assert_eq!(back.gaps(NodeId(1)), store.gaps(NodeId(1)));
            assert_eq!(back.gap_count(), 2);
        });
    }

    #[test]
    fn retain_from_prunes_gaps_too() {
        for_both_layouts(1, 1, |mut store| {
            for s in 0..10 {
                store.record_gap(NodeId(0), t(s), GapReason::Dropout);
            }
            store.retain_from(t(7));
            assert_eq!(store.gap_count(), 3);
            assert_eq!(store.gaps(NodeId(0))[0].at, t(7));
        });
    }
}
