//! Time-indexed counter storage (the Cassandra/Sonar stand-in).
//!
//! One [`rush_simkit::TimeSeries`] per `(node, counter)` pair, laid out as a
//! flat row-major vector so sampling a node is a contiguous write. The store
//! knows nothing about counter semantics — it stores whatever vector the
//! sampler hands it, as long as the width never changes.

use rush_cluster::topology::NodeId;
use rush_simkit::series::TimeSeries;
use rush_simkit::time::SimTime;

/// Per-node, per-counter sample storage.
#[derive(Debug, Clone)]
pub struct MetricStore {
    node_count: u32,
    counter_count: usize,
    series: Vec<TimeSeries>,
}

impl MetricStore {
    /// Creates storage for `node_count` nodes × `counter_count` counters.
    pub fn new(node_count: u32, counter_count: usize) -> Self {
        assert!(counter_count > 0, "store needs at least one counter");
        MetricStore {
            node_count,
            counter_count,
            series: vec![TimeSeries::new(); node_count as usize * counter_count],
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Counters per node.
    pub fn counter_count(&self) -> usize {
        self.counter_count
    }

    fn index(&self, node: NodeId, counter: usize) -> usize {
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        debug_assert!(counter < self.counter_count, "counter {counter} out of range");
        node.0 as usize * self.counter_count + counter
    }

    /// Records one full counter vector for `node` at time `at`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the store's counter width.
    pub fn record(&mut self, node: NodeId, at: SimTime, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.counter_count,
            "sample width {} != store width {}",
            values.len(),
            self.counter_count
        );
        let base = self.index(node, 0);
        for (i, &v) in values.iter().enumerate() {
            self.series[base + i].push(at, v);
        }
    }

    /// The series for one `(node, counter)` pair.
    pub fn series(&self, node: NodeId, counter: usize) -> &TimeSeries {
        &self.series[self.index(node, counter)]
    }

    /// Samples of `counter` on `node` within `[from, to)`.
    pub fn window(&self, node: NodeId, counter: usize, from: SimTime, to: SimTime) -> &[f64] {
        self.series(node, counter).window(from, to)
    }

    /// Total stored points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(TimeSeries::len).sum()
    }

    /// Drops all samples before `cutoff` (memory bound for long campaigns).
    pub fn retain_from(&mut self, cutoff: SimTime) {
        for s in &mut self.series {
            s.retain_from(cutoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_window_round_trip() {
        let mut store = MetricStore::new(4, 3);
        store.record(NodeId(1), t(10), &[1.0, 2.0, 3.0]);
        store.record(NodeId(1), t(20), &[4.0, 5.0, 6.0]);
        assert_eq!(store.window(NodeId(1), 0, t(0), t(30)), &[1.0, 4.0]);
        assert_eq!(store.window(NodeId(1), 2, t(15), t(30)), &[6.0]);
        assert_eq!(store.window(NodeId(0), 0, t(0), t(30)), &[] as &[f64]);
        assert_eq!(store.point_count(), 6);
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_rejected() {
        let mut store = MetricStore::new(2, 3);
        store.record(NodeId(0), t(1), &[1.0, 2.0]);
    }

    #[test]
    fn retain_from_prunes_all_series() {
        let mut store = MetricStore::new(2, 2);
        for s in 0..10 {
            store.record(NodeId(0), t(s), &[s as f64, 0.0]);
            store.record(NodeId(1), t(s), &[0.0, s as f64]);
        }
        assert_eq!(store.point_count(), 40);
        store.retain_from(t(8));
        assert_eq!(store.point_count(), 8);
        assert_eq!(store.window(NodeId(0), 0, t(0), t(100)), &[8.0, 9.0]);
    }

    #[test]
    fn dimensions_exposed() {
        let store = MetricStore::new(7, 90);
        assert_eq!(store.node_count(), 7);
        assert_eq!(store.counter_count(), 90);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_width_rejected() {
        MetricStore::new(1, 0);
    }
}
