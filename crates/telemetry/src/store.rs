//! Time-indexed counter storage (the Cassandra/Sonar stand-in).
//!
//! One [`rush_simkit::TimeSeries`] per `(node, counter)` pair, laid out as a
//! flat row-major vector so sampling a node is a contiguous write. The store
//! knows nothing about counter semantics — it stores whatever vector the
//! sampler hands it, as long as the width never changes.

use rush_cluster::topology::NodeId;
use rush_simkit::series::TimeSeries;
use rush_simkit::snapshot::{Restorable, Snapshot, SnapshotError, Val};
use rush_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a scheduled sample never made it into the store.
///
/// Real monitoring pipelines lose data for distinguishable reasons, and the
/// fault-injection layer reproduces them as *explicit* gap records rather
/// than silence: downstream consumers can then compute coverage and decide
/// whether a window is trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapReason {
    /// Random monitoring-pipeline loss (daemon restart, network hiccup).
    Dropout,
    /// A machine-wide telemetry blackout window was active.
    Blackout,
    /// The sample was drawn but corrupted and had to be discarded.
    Corrupt,
    /// The node was down; nothing to sample.
    NodeDown,
}

/// One missing sample: when it was due and why it is missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gap {
    /// The sampling-round timestamp the sample was due at.
    pub at: SimTime,
    /// Why it is missing.
    pub reason: GapReason,
}

/// Per-node, per-counter sample storage.
#[derive(Debug, Clone)]
pub struct MetricStore {
    node_count: u32,
    counter_count: usize,
    series: Vec<TimeSeries>,
    /// Missing-sample records per node, append-only in time order.
    gaps: Vec<Vec<Gap>>,
}

impl MetricStore {
    /// Creates storage for `node_count` nodes × `counter_count` counters.
    pub fn new(node_count: u32, counter_count: usize) -> Self {
        assert!(counter_count > 0, "store needs at least one counter");
        MetricStore {
            node_count,
            counter_count,
            series: vec![TimeSeries::new(); node_count as usize * counter_count],
            gaps: vec![Vec::new(); node_count as usize],
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Counters per node.
    pub fn counter_count(&self) -> usize {
        self.counter_count
    }

    fn index(&self, node: NodeId, counter: usize) -> usize {
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        debug_assert!(
            counter < self.counter_count,
            "counter {counter} out of range"
        );
        node.0 as usize * self.counter_count + counter
    }

    /// Records one full counter vector for `node` at time `at`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the store's counter width.
    pub fn record(&mut self, node: NodeId, at: SimTime, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.counter_count,
            "sample width {} != store width {}",
            values.len(),
            self.counter_count
        );
        let base = self.index(node, 0);
        for (i, &v) in values.iter().enumerate() {
            self.series[base + i].push(at, v);
        }
    }

    /// Records that `node`'s sample due at `at` was lost, and why.
    pub fn record_gap(&mut self, node: NodeId, at: SimTime, reason: GapReason) {
        debug_assert!(node.0 < self.node_count, "node {node:?} out of range");
        self.gaps[node.0 as usize].push(Gap { at, reason });
    }

    /// The missing-sample records for `node`, in time order.
    pub fn gaps(&self, node: NodeId) -> &[Gap] {
        &self.gaps[node.0 as usize]
    }

    /// Total gap records across all nodes.
    pub fn gap_count(&self) -> usize {
        self.gaps.iter().map(Vec::len).sum()
    }

    /// Fraction of scheduled samples in `[from, to)` across `nodes` that
    /// actually made it into the store: `kept / (kept + lost)`.
    ///
    /// Returns 1.0 when nothing was scheduled in the window — an empty
    /// window is "fully covered", not suspicious; staleness is the signal
    /// for that case (see [`crate::aggregate::window_quality`]).
    pub fn coverage(&self, nodes: &[NodeId], from: SimTime, to: SimTime) -> f64 {
        let mut kept = 0usize;
        let mut lost = 0usize;
        for &node in nodes {
            kept += self.window(node, 0, from, to).len();
            lost += self.gaps[node.0 as usize]
                .iter()
                .filter(|g| g.at >= from && g.at < to)
                .count();
        }
        if kept + lost == 0 {
            1.0
        } else {
            kept as f64 / (kept + lost) as f64
        }
    }

    /// Timestamp of the most recent stored sample at or before `t` across
    /// `nodes`; `None` if no node has any sample by then.
    pub fn latest_sample_at(&self, nodes: &[NodeId], t: SimTime) -> Option<SimTime> {
        let mut latest = None;
        for &node in nodes {
            // All counters of a node share timestamps, so counter 0 is
            // representative.
            for (at, _) in self.series(node, 0).iter() {
                if at > t {
                    break;
                }
                latest = latest.max(Some(at));
            }
        }
        latest
    }

    /// The series for one `(node, counter)` pair.
    pub fn series(&self, node: NodeId, counter: usize) -> &TimeSeries {
        &self.series[self.index(node, counter)]
    }

    /// Samples of `counter` on `node` within `[from, to)`.
    pub fn window(&self, node: NodeId, counter: usize, from: SimTime, to: SimTime) -> &[f64] {
        self.series(node, counter).window(from, to)
    }

    /// Total stored points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(TimeSeries::len).sum()
    }

    /// Drops all samples and gap records before `cutoff` (memory bound for
    /// long campaigns).
    pub fn retain_from(&mut self, cutoff: SimTime) {
        for s in &mut self.series {
            s.retain_from(cutoff);
        }
        for g in &mut self.gaps {
            let lo = g.partition_point(|gap| gap.at < cutoff);
            if lo > 0 {
                g.drain(..lo);
            }
        }
    }
}

impl Snapshot for MetricStore {
    fn to_val(&self) -> Val {
        let gaps = Val::List(
            self.gaps
                .iter()
                .map(|per_node| {
                    Val::List(
                        per_node
                            .iter()
                            .map(|g| {
                                let reason = match g.reason {
                                    GapReason::Dropout => 0,
                                    GapReason::Blackout => 1,
                                    GapReason::Corrupt => 2,
                                    GapReason::NodeDown => 3,
                                };
                                Val::List(vec![Val::U64(g.at.as_micros()), Val::U64(reason)])
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        Val::map()
            .with("node_count", Val::U64(u64::from(self.node_count)))
            .with("counter_count", Val::U64(self.counter_count as u64))
            .with(
                "series",
                Val::List(self.series.iter().map(Snapshot::to_val).collect()),
            )
            .with("gaps", gaps)
    }
}

impl Restorable for MetricStore {
    fn from_val(v: &Val) -> Result<Self, SnapshotError> {
        let node_count = v.u("node_count")? as u32;
        let counter_count = v.u("counter_count")? as usize;
        let series_vals = v.l("series")?;
        if series_vals.len() != node_count as usize * counter_count {
            return Err(SnapshotError::Schema("store series count".to_string()));
        }
        let series: Vec<TimeSeries> = series_vals
            .iter()
            .map(TimeSeries::from_val)
            .collect::<Result<_, _>>()?;
        let gap_vals = v.l("gaps")?;
        if gap_vals.len() != node_count as usize {
            return Err(SnapshotError::Schema("store gap rows".to_string()));
        }
        let mut gaps = Vec::with_capacity(gap_vals.len());
        for per_node in gap_vals {
            let mut row = Vec::new();
            for g in per_node.as_list()? {
                let pair = g.as_list()?;
                if pair.len() != 2 {
                    return Err(SnapshotError::Schema("gap pair".to_string()));
                }
                let reason = match pair[1].as_u64()? {
                    0 => GapReason::Dropout,
                    1 => GapReason::Blackout,
                    2 => GapReason::Corrupt,
                    3 => GapReason::NodeDown,
                    other => {
                        return Err(SnapshotError::Schema(format!("gap reason {other}")));
                    }
                };
                row.push(Gap {
                    at: SimTime::from_micros(pair[0].as_u64()?),
                    reason,
                });
            }
            gaps.push(row);
        }
        Ok(MetricStore {
            node_count,
            counter_count,
            series,
            gaps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_window_round_trip() {
        let mut store = MetricStore::new(4, 3);
        store.record(NodeId(1), t(10), &[1.0, 2.0, 3.0]);
        store.record(NodeId(1), t(20), &[4.0, 5.0, 6.0]);
        assert_eq!(store.window(NodeId(1), 0, t(0), t(30)), &[1.0, 4.0]);
        assert_eq!(store.window(NodeId(1), 2, t(15), t(30)), &[6.0]);
        assert_eq!(store.window(NodeId(0), 0, t(0), t(30)), &[] as &[f64]);
        assert_eq!(store.point_count(), 6);
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_rejected() {
        let mut store = MetricStore::new(2, 3);
        store.record(NodeId(0), t(1), &[1.0, 2.0]);
    }

    #[test]
    fn retain_from_prunes_all_series() {
        let mut store = MetricStore::new(2, 2);
        for s in 0..10 {
            store.record(NodeId(0), t(s), &[s as f64, 0.0]);
            store.record(NodeId(1), t(s), &[0.0, s as f64]);
        }
        assert_eq!(store.point_count(), 40);
        store.retain_from(t(8));
        assert_eq!(store.point_count(), 8);
        assert_eq!(store.window(NodeId(0), 0, t(0), t(100)), &[8.0, 9.0]);
    }

    #[test]
    fn dimensions_exposed() {
        let store = MetricStore::new(7, 90);
        assert_eq!(store.node_count(), 7);
        assert_eq!(store.counter_count(), 90);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_width_rejected() {
        MetricStore::new(1, 0);
    }

    #[test]
    fn gaps_recorded_and_counted() {
        let mut store = MetricStore::new(2, 1);
        store.record(NodeId(0), t(0), &[1.0]);
        store.record_gap(NodeId(0), t(10), GapReason::Dropout);
        store.record_gap(NodeId(1), t(10), GapReason::Blackout);
        assert_eq!(store.gap_count(), 2);
        assert_eq!(store.gaps(NodeId(0)).len(), 1);
        assert_eq!(store.gaps(NodeId(0))[0].reason, GapReason::Dropout);
        assert_eq!(store.gaps(NodeId(1))[0].at, t(10));
    }

    #[test]
    fn coverage_is_kept_over_scheduled() {
        let mut store = MetricStore::new(2, 1);
        // node 0: 3 kept, 1 lost; node 1: 2 kept, 2 lost
        store.record(NodeId(0), t(0), &[1.0]);
        store.record(NodeId(0), t(10), &[1.0]);
        store.record(NodeId(0), t(20), &[1.0]);
        store.record_gap(NodeId(0), t(30), GapReason::Dropout);
        store.record(NodeId(1), t(0), &[1.0]);
        store.record_gap(NodeId(1), t(10), GapReason::NodeDown);
        store.record_gap(NodeId(1), t(20), GapReason::Corrupt);
        store.record(NodeId(1), t(30), &[1.0]);
        let both = [NodeId(0), NodeId(1)];
        // 5 kept of 8 scheduled over the full window
        assert!((store.coverage(&both, t(0), t(40)) - 5.0 / 8.0).abs() < 1e-12);
        // Window bounds apply: at [10, 30) node 0 keeps 2/2, node 1 0/2.
        assert!((store.coverage(&both, t(10), t(30)) - 0.5).abs() < 1e-12);
        // Only node 0 over the same window is fully covered.
        assert_eq!(store.coverage(&[NodeId(0)], t(10), t(30)), 1.0);
    }

    #[test]
    fn empty_window_coverage_is_full() {
        let store = MetricStore::new(2, 1);
        assert_eq!(store.coverage(&[NodeId(0)], t(0), t(100)), 1.0);
    }

    #[test]
    fn latest_sample_tracks_staleness_source() {
        let mut store = MetricStore::new(2, 2);
        assert_eq!(store.latest_sample_at(&[NodeId(0)], t(100)), None);
        store.record(NodeId(0), t(10), &[1.0, 2.0]);
        store.record(NodeId(1), t(25), &[1.0, 2.0]);
        let both = [NodeId(0), NodeId(1)];
        assert_eq!(store.latest_sample_at(&both, t(100)), Some(t(25)));
        assert_eq!(store.latest_sample_at(&both, t(20)), Some(t(10)));
        // inclusive upper bound
        assert_eq!(store.latest_sample_at(&both, t(25)), Some(t(25)));
        assert_eq!(store.latest_sample_at(&both, t(5)), None);
    }

    #[test]
    fn snapshot_round_trip_preserves_points_and_gaps() {
        let mut store = MetricStore::new(3, 2);
        store.record(NodeId(0), t(0), &[1.0, 2.0]);
        store.record(NodeId(2), t(10), &[3.5, -0.25]);
        store.record_gap(NodeId(1), t(5), GapReason::Blackout);
        store.record_gap(NodeId(1), t(15), GapReason::NodeDown);
        let back = MetricStore::from_val(&store.to_val()).unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.counter_count(), 2);
        assert_eq!(back.point_count(), store.point_count());
        assert_eq!(back.window(NodeId(2), 1, t(0), t(20)), &[-0.25]);
        assert_eq!(back.gaps(NodeId(1)), store.gaps(NodeId(1)));
        assert_eq!(back.gap_count(), 2);
    }

    #[test]
    fn retain_from_prunes_gaps_too() {
        let mut store = MetricStore::new(1, 1);
        for s in 0..10 {
            store.record_gap(NodeId(0), t(s), GapReason::Dropout);
        }
        store.retain_from(t(7));
        assert_eq!(store.gap_count(), 3);
        assert_eq!(store.gaps(NodeId(0))[0].at, t(7));
    }
}
