//! # rush-telemetry
//!
//! The LDMS/Sonar stand-in: periodic per-node counter sampling, a
//! time-indexed metric store, and the window/node-set aggregation that turns
//! raw counters into the features of the paper's Table I.
//!
//! The paper's pipeline samples `sysclassib`, `opa_info` and `lustre_client`
//! on every node, stores them indexed by `(hostname, timestamp)` in
//! Cassandra, and — before each job — reduces each counter over the previous
//! five minutes with min/max/mean, both across *all* nodes and across the
//! *job-exclusive* nodes (Section III-A). This crate reproduces exactly that
//! query surface:
//!
//! * [`store::MetricStore`] — per-`(node, counter)` time series with
//!   windowed queries and retention.
//! * [`collector::Sampler`] — samples a [`rush_cluster::Machine`] on a fixed
//!   interval into the store.
//! * [`aggregate`] — pools a counter's samples over `(window × node set)`
//!   and reduces to min/max/mean, producing the 270 counter features.
//! * [`schema::FeatureSchema`] — the full 282-feature layout of Table I
//!   (270 counter aggregates + 9 MPI probe features + 3 intensity one-hots).
//! * [`export`] — a small CSV writer for datasets and result tables.

pub mod aggregate;
pub mod collector;
pub mod export;
pub mod schema;
pub mod store;

pub use aggregate::{aggregate_counters, window_quality, CounterAggregate, WindowQuality};
pub use collector::Sampler;
pub use schema::FeatureSchema;
pub use store::{Gap, GapReason, MetricStore};
