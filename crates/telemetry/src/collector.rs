//! Periodic counter sampling (the LDMS daemon stand-in).
//!
//! A [`Sampler`] walks a node list on a fixed interval, asks the
//! [`Machine`] to synthesize each node's counter tables, and records the
//! vectors into a [`MetricStore`]. Drivers call [`Sampler::advance_to`]
//! whenever simulation time moves; the sampler catches up on every interval
//! boundary it crossed, so sampling cadence is independent of the caller's
//! event granularity.

use crate::store::{GapReason, MetricStore};
use rand::Rng;
use rush_cluster::machine::{Machine, NodeHealth};
use rush_cluster::topology::NodeId;
use rush_obs::profile as obs_profile;
use rush_obs::{MetricsRegistry, ProfileScope};
use rush_simkit::rng::CountedRng;
use rush_simkit::snapshot::{SnapshotError, Val};
use rush_simkit::time::{SimDuration, SimTime};

/// Samples machine counters into a store on a fixed interval.
#[derive(Debug)]
pub struct Sampler {
    nodes: Vec<NodeId>,
    interval: SimDuration,
    next_due: SimTime,
    samples_taken: u64,
    dropped: u64,
    /// Per-node-sample loss probability (real LDMS collections have gaps:
    /// daemon restarts, network hiccups, aggregation stalls).
    dropout: f64,
    /// While set, every scheduled sample is lost as a
    /// [`GapReason::Blackout`] gap (fault injection: collection pipeline
    /// dark machine-wide).
    blackout: bool,
    /// While set, each drawn sample is discarded with `corruption_prob` as
    /// a [`GapReason::Corrupt`] gap (fault injection: garbage counters).
    corruption: bool,
    corruption_prob: f64,
    corrupted: u64,
    /// Per-node samples lost to machine-wide blackout windows.
    gaps_blackout: u64,
    /// Per-node samples lost because the node was down.
    gaps_node_down: u64,
    rng: CountedRng,
    /// Reuse one counter buffer across the whole sweep instead of
    /// allocating a vector per node per round. Scratch space, not state:
    /// excluded from snapshots.
    batched: bool,
    buf: Vec<f64>,
}

impl Sampler {
    /// Samples `nodes` every `interval`, starting at `t = 0`.
    pub fn new(nodes: Vec<NodeId>, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        Sampler {
            nodes,
            interval,
            next_due: SimTime::ZERO,
            samples_taken: 0,
            dropped: 0,
            dropout: 0.0,
            blackout: false,
            corruption: false,
            corruption_prob: 0.5,
            corrupted: 0,
            gaps_blackout: 0,
            gaps_node_down: 0,
            rng: CountedRng::seeded(0),
            batched: false,
            buf: Vec::new(),
        }
    }

    /// Samples through [`Machine::sample_counters_into`] with a reused
    /// buffer instead of a fresh vector per node per round. Identical
    /// values and RNG draws — a pure allocation saving, toggled so the
    /// legacy benchmark side keeps the original allocation profile.
    pub fn with_batched(mut self, enabled: bool) -> Self {
        self.batched = enabled;
        self
    }

    /// Drops each per-node sample independently with probability `prob`,
    /// mimicking monitoring-pipeline gaps. The window aggregation already
    /// pools whatever samples exist, so downstream features degrade
    /// gracefully instead of breaking.
    pub fn with_dropout(mut self, prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&prob), "dropout must be in [0, 1)");
        self.dropout = prob;
        self.rng = CountedRng::seeded(seed);
        self
    }

    /// Sets the per-sample discard probability used while corruption is
    /// active (see [`Sampler::set_corruption`]).
    pub fn with_corruption_prob(mut self, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "corruption prob must be in [0, 1]"
        );
        self.corruption_prob = prob;
        self
    }

    /// Switches the machine-wide telemetry blackout on or off. While on,
    /// every scheduled sample becomes an explicit [`GapReason::Blackout`]
    /// gap in the store.
    pub fn set_blackout(&mut self, active: bool) {
        self.blackout = active;
    }

    /// Switches counter corruption on or off. While on, each drawn sample
    /// is discarded with the configured probability as a
    /// [`GapReason::Corrupt`] gap.
    pub fn set_corruption(&mut self, active: bool) {
        self.corruption = active;
    }

    /// Whether a blackout is currently active.
    pub fn blackout_active(&self) -> bool {
        self.blackout
    }

    /// Per-node samples lost to dropout so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-node samples discarded as corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Per-node samples lost to blackout windows so far.
    pub fn blackout_gaps(&self) -> u64 {
        self.gaps_blackout
    }

    /// Per-node samples lost to down nodes so far.
    pub fn node_down_gaps(&self) -> u64 {
        self.gaps_node_down
    }

    /// Registers (or updates) this sampler's counters in `reg` under the
    /// `telemetry.*` namespace. Idempotent: names already present are
    /// overwritten with current values, so calling at end-of-run exports a
    /// consistent snapshot.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        for (name, value) in [
            ("telemetry.sampling_rounds", self.samples_taken),
            ("telemetry.gaps_dropout", self.dropped),
            ("telemetry.gaps_corrupt", self.corrupted),
            ("telemetry.gaps_blackout", self.gaps_blackout),
            ("telemetry.gaps_node_down", self.gaps_node_down),
        ] {
            match reg.counter_id(name) {
                Some(id) => reg.set_counter(id, value),
                None => {
                    let id = reg.register_counter(name);
                    reg.set_counter(id, value);
                }
            }
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Sampling rounds completed so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Time of the next scheduled sampling round.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Captures the sampler's dynamic state (cursor, counters, fault flags,
    /// RNG position). The node list, interval and probabilities are
    /// configuration and must match at restore time.
    pub fn snapshot_state(&self) -> Val {
        Val::map()
            .with("node_count", Val::U64(self.nodes.len() as u64))
            .with("next_due_us", Val::U64(self.next_due.as_micros()))
            .with("samples_taken", Val::U64(self.samples_taken))
            .with("dropped", Val::U64(self.dropped))
            .with("blackout", Val::U64(u64::from(self.blackout)))
            .with("corruption", Val::U64(u64::from(self.corruption)))
            .with("corrupted", Val::U64(self.corrupted))
            .with("gaps_blackout", Val::U64(self.gaps_blackout))
            .with("gaps_node_down", Val::U64(self.gaps_node_down))
            .with("rng_seed", Val::U64(self.rng.seed()))
            .with("rng_draws", Val::U64(self.rng.draws()))
    }

    /// Restores state captured by [`Sampler::snapshot_state`] into a sampler
    /// built with the same configuration.
    pub fn restore_state(&mut self, v: &Val) -> Result<(), SnapshotError> {
        if v.u("node_count")? != self.nodes.len() as u64 {
            return Err(SnapshotError::ConfigMismatch);
        }
        self.next_due = SimTime::from_micros(v.u("next_due_us")?);
        self.samples_taken = v.u("samples_taken")?;
        self.dropped = v.u("dropped")?;
        self.blackout = v.u("blackout")? != 0;
        self.corruption = v.u("corruption")? != 0;
        self.corrupted = v.u("corrupted")?;
        self.gaps_blackout = v.u("gaps_blackout")?;
        self.gaps_node_down = v.u("gaps_node_down")?;
        self.rng = CountedRng::restore(v.u("rng_seed")?, v.u("rng_draws")?);
        Ok(())
    }

    /// Advances to `t`, taking every sampling round due in `(prev, t]`.
    /// The machine is advanced to each round's timestamp first so counters
    /// reflect the machine state *at* the sample time.
    pub fn advance_to(&mut self, t: SimTime, machine: &mut Machine, store: &mut MetricStore) {
        if self.next_due > t {
            return;
        }
        let _scope = obs_profile::scope(ProfileScope::TelemetrySample);
        while self.next_due <= t {
            let at = self.next_due;
            machine.advance_to(at);
            for &node in &self.nodes {
                // Every lost sample leaves an explicit gap record so
                // downstream coverage queries see *why* data is missing,
                // not just that it is.
                if self.blackout {
                    self.gaps_blackout += 1;
                    store.record_gap(node, at, GapReason::Blackout);
                    continue;
                }
                if machine.node_health(node) == NodeHealth::Down {
                    self.gaps_node_down += 1;
                    store.record_gap(node, at, GapReason::NodeDown);
                    continue;
                }
                if self.dropout > 0.0 && self.rng.gen::<f64>() < self.dropout {
                    self.dropped += 1;
                    store.record_gap(node, at, GapReason::Dropout);
                    continue;
                }
                if self.corruption && self.rng.gen::<f64>() < self.corruption_prob {
                    self.corrupted += 1;
                    store.record_gap(node, at, GapReason::Corrupt);
                    continue;
                }
                if self.batched {
                    let mut buf = std::mem::take(&mut self.buf);
                    machine.sample_counters_into(node, &mut buf);
                    store.record(node, at, &buf);
                    self.buf = buf;
                } else {
                    let values = machine.sample_counters(node);
                    store.record(node, at, &values);
                }
            }
            self.samples_taken += 1;
            self.next_due = at + self.interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_cluster::machine::MachineConfig;
    use rush_simkit::snapshot::{Restorable, Snapshot};

    fn setup() -> (Machine, MetricStore, Sampler) {
        let machine = Machine::new(MachineConfig::tiny(11));
        let node_count = machine.tree().node_count();
        let store = MetricStore::new(node_count, 90);
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let sampler = Sampler::new(nodes, SimDuration::from_secs(30));
        (machine, store, sampler)
    }

    #[test]
    fn samples_on_interval_boundaries() {
        let (mut machine, mut store, mut sampler) = setup();
        sampler.advance_to(SimTime::from_secs(95), &mut machine, &mut store);
        // rounds at t = 0, 30, 60, 90
        assert_eq!(sampler.samples_taken(), 4);
        assert_eq!(
            store
                .window(NodeId(0), 0, SimTime::ZERO, SimTime::from_secs(100))
                .len(),
            4
        );
        assert_eq!(sampler.next_due(), SimTime::from_secs(120));
    }

    #[test]
    fn catch_up_covers_skipped_intervals() {
        let (mut machine, mut store, mut sampler) = setup();
        sampler.advance_to(SimTime::from_secs(10), &mut machine, &mut store);
        assert_eq!(sampler.samples_taken(), 1);
        // jump far ahead in one call
        sampler.advance_to(SimTime::from_mins(5), &mut machine, &mut store);
        assert_eq!(sampler.samples_taken(), 11); // t=0..300 step 30
    }

    #[test]
    fn no_duplicate_samples_on_repeat_calls() {
        let (mut machine, mut store, mut sampler) = setup();
        sampler.advance_to(SimTime::from_secs(60), &mut machine, &mut store);
        let n = store.point_count();
        sampler.advance_to(SimTime::from_secs(60), &mut machine, &mut store);
        assert_eq!(store.point_count(), n);
    }

    #[test]
    fn samples_have_store_width() {
        let (mut machine, mut store, mut sampler) = setup();
        sampler.advance_to(SimTime::ZERO, &mut machine, &mut store);
        assert_eq!(
            store
                .window(NodeId(3), 89, SimTime::ZERO, SimTime::from_secs(1))
                .len(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        Sampler::new(vec![], SimDuration::ZERO);
    }

    #[test]
    fn dropout_loses_samples_but_keeps_working() {
        let (mut machine, mut store, _) = setup();
        let node_count = machine.tree().node_count();
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let mut sampler = Sampler::new(nodes, SimDuration::from_secs(30)).with_dropout(0.3, 7);
        sampler.advance_to(SimTime::from_mins(5), &mut machine, &mut store);
        let expected_full = 11 * node_count as u64; // rounds t=0..300
        assert!(sampler.dropped() > 0, "30% dropout must lose something");
        assert_eq!(
            store.point_count() as u64 / 90 + sampler.dropped(),
            expected_full,
            "kept + dropped = scheduled"
        );
        // Aggregation still answers over the gappy data.
        let aggs = rush_cluster::topology::NodeId(0);
        let window = store.window(aggs, 0, SimTime::ZERO, SimTime::from_mins(5));
        assert!(window.len() < 11, "node 0 should have gaps");
    }

    #[test]
    fn dropout_is_deterministic() {
        let run = |seed| {
            let (mut machine, mut store, _) = setup();
            let nodes: Vec<NodeId> = (0..machine.tree().node_count()).map(NodeId).collect();
            let mut sampler =
                Sampler::new(nodes, SimDuration::from_secs(30)).with_dropout(0.2, seed);
            sampler.advance_to(SimTime::from_mins(3), &mut machine, &mut store);
            (sampler.dropped(), store.point_count())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn full_dropout_rejected() {
        Sampler::new(vec![], SimDuration::from_secs(1)).with_dropout(1.0, 0);
    }

    #[test]
    fn dropout_losses_become_explicit_gaps() {
        let (mut machine, mut store, _) = setup();
        let node_count = machine.tree().node_count();
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let mut sampler =
            Sampler::new(nodes.clone(), SimDuration::from_secs(30)).with_dropout(0.3, 7);
        sampler.advance_to(SimTime::from_mins(5), &mut machine, &mut store);
        assert_eq!(
            store.gap_count() as u64,
            sampler.dropped(),
            "every dropped sample must leave a gap record"
        );
        assert!(store
            .gaps(NodeId(0))
            .iter()
            .all(|g| g.reason == crate::store::GapReason::Dropout));
        let cov = store.coverage(&nodes, SimTime::ZERO, SimTime::from_mins(6));
        assert!(cov < 1.0 && cov > 0.4, "~30% dropout coverage, got {cov}");
    }

    #[test]
    fn blackout_window_leaves_only_gaps() {
        let (mut machine, mut store, mut sampler) = setup();
        let nodes: Vec<NodeId> = (0..machine.tree().node_count()).map(NodeId).collect();
        sampler.advance_to(SimTime::from_secs(30), &mut machine, &mut store);
        let before = store.point_count();
        sampler.set_blackout(true);
        assert!(sampler.blackout_active());
        sampler.advance_to(SimTime::from_secs(90), &mut machine, &mut store);
        assert_eq!(store.point_count(), before, "no data during blackout");
        // Rounds at t=60 and t=90 missed for every node.
        assert_eq!(store.gap_count(), 2 * nodes.len());
        sampler.set_blackout(false);
        sampler.advance_to(SimTime::from_secs(120), &mut machine, &mut store);
        assert!(
            store.point_count() > before,
            "sampling resumes after blackout"
        );
        // Coverage over the blackout stretch is zero.
        let cov = store.coverage(&nodes, SimTime::from_secs(60), SimTime::from_secs(91));
        assert_eq!(cov, 0.0);
    }

    #[test]
    fn corruption_discards_with_configured_probability() {
        let (mut machine, mut store, _) = setup();
        let nodes: Vec<NodeId> = (0..machine.tree().node_count()).map(NodeId).collect();
        let mut sampler = Sampler::new(nodes, SimDuration::from_secs(30))
            .with_dropout(0.0, 3)
            .with_corruption_prob(1.0);
        sampler.set_corruption(true);
        sampler.advance_to(SimTime::from_secs(60), &mut machine, &mut store);
        assert_eq!(store.point_count(), 0, "prob 1.0 corrupts everything");
        assert!(sampler.corrupted() > 0);
        assert!(store
            .gaps(NodeId(0))
            .iter()
            .all(|g| g.reason == crate::store::GapReason::Corrupt));
        sampler.set_corruption(false);
        sampler.advance_to(SimTime::from_secs(120), &mut machine, &mut store);
        assert!(store.point_count() > 0, "clean samples after the window");
    }

    #[test]
    fn per_reason_gap_counters_and_export() {
        let (mut machine, mut store, mut sampler) = setup();
        machine.fail_node(NodeId(2));
        sampler.set_blackout(true);
        sampler.advance_to(SimTime::from_secs(30), &mut machine, &mut store);
        sampler.set_blackout(false);
        sampler.advance_to(SimTime::from_secs(60), &mut machine, &mut store);
        let node_count = machine.tree().node_count() as u64;
        // Blackout covered rounds t=0 and t=30 for every node; at t=60 only
        // the downed node gaps.
        assert_eq!(sampler.blackout_gaps(), 2 * node_count);
        assert_eq!(sampler.node_down_gaps(), 1);
        assert_eq!(
            sampler.blackout_gaps() + sampler.node_down_gaps(),
            store.gap_count() as u64
        );

        let mut reg = MetricsRegistry::new();
        sampler.export_metrics(&mut reg);
        assert_eq!(reg.counter_by_name("telemetry.sampling_rounds"), Some(3));
        assert_eq!(
            reg.counter_by_name("telemetry.gaps_blackout"),
            Some(2 * node_count)
        );
        assert_eq!(reg.counter_by_name("telemetry.gaps_node_down"), Some(1));
        assert_eq!(reg.counter_by_name("telemetry.gaps_dropout"), Some(0));
        // Re-export overwrites rather than double-counting.
        sampler.advance_to(SimTime::from_secs(90), &mut machine, &mut store);
        sampler.export_metrics(&mut reg);
        assert_eq!(reg.counter_by_name("telemetry.sampling_rounds"), Some(4));
    }

    #[test]
    fn sampler_snapshot_restore_resumes_identically() {
        let run_to = |t_secs: u64| {
            let (mut machine, mut store, _) = setup();
            let nodes: Vec<NodeId> = (0..machine.tree().node_count()).map(NodeId).collect();
            let mut sampler = Sampler::new(nodes, SimDuration::from_secs(30)).with_dropout(0.25, 9);
            sampler.advance_to(SimTime::from_secs(t_secs), &mut machine, &mut store);
            (machine, store, sampler)
        };
        // Uninterrupted run to t=600.
        let (_, store_a, sampler_a) = run_to(600);
        // Run to t=240, snapshot everything, restore into fresh objects,
        // continue to t=600.
        let (machine_b, store_b, sampler_b) = run_to(240);
        let m_snap = machine_b.snapshot_state();
        let s_snap = sampler_b.snapshot_state();
        let st_snap = store_b.to_val();
        let mut machine_c = Machine::new(MachineConfig::tiny(11));
        machine_c.restore_state(&m_snap).unwrap();
        let nodes: Vec<NodeId> = (0..machine_c.tree().node_count()).map(NodeId).collect();
        let mut sampler_c = Sampler::new(nodes, SimDuration::from_secs(30)).with_dropout(0.25, 9);
        sampler_c.restore_state(&s_snap).unwrap();
        let mut store_c = MetricStore::from_val(&st_snap).unwrap();
        sampler_c.advance_to(SimTime::from_secs(600), &mut machine_c, &mut store_c);

        assert_eq!(sampler_c.samples_taken(), sampler_a.samples_taken());
        assert_eq!(sampler_c.dropped(), sampler_a.dropped());
        assert_eq!(store_c.point_count(), store_a.point_count());
        assert_eq!(store_c.gap_count(), store_a.gap_count());
        for &node in &[NodeId(0), NodeId(7)] {
            assert_eq!(
                store_c.window(node, 3, SimTime::ZERO, SimTime::from_secs(601)),
                store_a.window(node, 3, SimTime::ZERO, SimTime::from_secs(601)),
                "resumed samples must be bit-identical"
            );
        }
    }

    #[test]
    fn down_node_leaves_node_down_gaps() {
        let (mut machine, mut store, mut sampler) = setup();
        machine.fail_node(NodeId(2));
        sampler.advance_to(SimTime::from_secs(30), &mut machine, &mut store);
        assert_eq!(store.gaps(NodeId(2)).len(), 2, "rounds at t=0 and t=30");
        assert!(store
            .gaps(NodeId(2))
            .iter()
            .all(|g| g.reason == crate::store::GapReason::NodeDown));
        // Healthy nodes unaffected.
        assert!(store.gaps(NodeId(0)).is_empty());
        assert_eq!(
            store
                .window(NodeId(0), 0, SimTime::ZERO, SimTime::from_secs(31))
                .len(),
            2
        );
        // A recovered (Suspect) node is monitored again.
        machine.recover_node(NodeId(2));
        sampler.advance_to(SimTime::from_secs(60), &mut machine, &mut store);
        assert_eq!(
            store
                .window(NodeId(2), 0, SimTime::ZERO, SimTime::from_secs(61))
                .len(),
            1,
            "suspect node samples again"
        );
    }
}
