//! Minimal CSV export.
//!
//! The original pipeline pickles Pandas dataframes; we write plain CSV so
//! datasets and result tables can be inspected with standard tools. This is
//! a tiny writer, not a general CSV library: values are numbers or simple
//! strings, and fields containing commas/quotes/newlines are quoted with
//! doubled quotes per RFC 4180.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A rectangular table of string/number cells with a header row.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Appends a row of pre-rendered cells.
    ///
    /// # Panics
    /// Panics if the width doesn't match the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Appends a row of floats rendered with full precision.
    pub fn push_floats(&mut self, row: &[f64]) {
        self.push_row(row.iter().map(|v| format_float(*v)));
    }

    /// Renders the full CSV document.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write_record(&mut out, &self.header);
        for row in &self.rows {
            write_record(&mut out, row);
        }
        out
    }

    /// Writes the CSV document to `path`.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

fn write_record(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            out.push('"');
            for ch in cell.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Renders a float compactly but round-trippably.
pub fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        let mut s = String::new();
        let _ = write!(s, "{v:.1}");
        s
    } else {
        let mut s = String::new();
        let _ = write!(s, "{v}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table_renders() {
        let mut t = CsvTable::new(["app", "runtime"]);
        t.push_row(["kripke", "41.5"]);
        t.push_row(["amg", "38.2"]);
        assert_eq!(t.to_csv(), "app,runtime\nkripke,41.5\namg,38.2\n");
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
    }

    #[test]
    fn quoting_follows_rfc4180() {
        let mut t = CsvTable::new(["a"]);
        t.push_row(["has,comma"]);
        t.push_row(["has\"quote"]);
        t.push_row(["has\nnewline"]);
        assert_eq!(
            t.to_csv(),
            "a\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n"
        );
    }

    #[test]
    fn float_rows_render() {
        let mut t = CsvTable::new(["x", "y"]);
        t.push_floats(&[1.0, 2.5]);
        assert_eq!(t.to_csv(), "x,y\n1.0,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn write_to_disk_round_trips() {
        let dir = std::env::temp_dir().join("rush_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(["v"]);
        t.push_floats(&[0.125]);
        t.write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "v\n0.125\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn format_float_cases() {
        assert_eq!(format_float(3.0), "3.0");
        assert_eq!(format_float(0.1), "0.1");
        assert_eq!(format_float(-2.0), "-2.0");
    }
}
