//! Window × node-set aggregation.
//!
//! The paper reduces each counter over the five minutes before a job with
//! min/max/mean, pooling samples across either *all* compute nodes or the
//! *job-exclusive* nodes (Section III-A). [`aggregate_counters`] implements
//! that pooled reduction; the choice of node set is the caller's, which is
//! how the all-nodes vs job-nodes comparison of Fig. 3 is expressed.

use crate::store::MetricStore;
use rush_cluster::topology::NodeId;
use rush_simkit::stats::OnlineStats;
use rush_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The `(min, max, mean)` of one counter pooled over a window and node set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterAggregate {
    /// Pooled sample count.
    pub count: usize,
    /// Pooled minimum (0 when no samples).
    pub min: f64,
    /// Pooled maximum (0 when no samples).
    pub max: f64,
    /// Pooled mean (0 when no samples).
    pub mean: f64,
}

impl CounterAggregate {
    /// The aggregate of an empty pool.
    pub const EMPTY: CounterAggregate = CounterAggregate {
        count: 0,
        min: 0.0,
        max: 0.0,
        mean: 0.0,
    };

    /// Flattens to the `[min, max, mean]` feature triple of Table I.
    pub fn features(&self) -> [f64; 3] {
        [self.min, self.max, self.mean]
    }
}

/// Pools every counter's samples over `[from, to)` across `nodes` and
/// reduces each to min/max/mean. Returns one aggregate per counter, in
/// store order.
pub fn aggregate_counters(
    store: &MetricStore,
    nodes: &[NodeId],
    from: SimTime,
    to: SimTime,
) -> Vec<CounterAggregate> {
    let width = store.counter_count();
    // Row-major stores are walked block-at-a-time instead of
    // binary-searching per (node, counter) pair. Each counter still sees
    // its samples in the same order as the per-counter scan below (nodes in
    // caller order, time ascending within a node), so the pooled stats are
    // bit-identical across both paths.
    let mut stats: Vec<OnlineStats> = (0..width).map(|_| OnlineStats::new()).collect();
    for &node in nodes {
        match store.rows(node, from, to) {
            Some((_, rows)) => {
                for row in rows.chunks_exact(width) {
                    for (st, &v) in stats.iter_mut().zip(row) {
                        st.push(v);
                    }
                }
            }
            None => {
                for (counter, st) in stats.iter_mut().enumerate() {
                    for v in store.window(node, counter, from, to) {
                        st.push(v);
                    }
                }
            }
        }
    }
    stats
        .iter()
        .map(|st| {
            if st.count() == 0 {
                CounterAggregate::EMPTY
            } else {
                CounterAggregate {
                    count: st.count() as usize,
                    min: st.min(),
                    max: st.max(),
                    mean: st.mean(),
                }
            }
        })
        .collect()
}

/// How trustworthy an aggregation window is under telemetry faults.
///
/// Coverage is the fraction of scheduled samples that actually arrived;
/// staleness is the age of the freshest sample relative to the window end.
/// A predictor should refuse to predict from a window whose coverage is too
/// low or whose data is too stale — that is the graceful-degradation signal
/// the scheduler keys off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowQuality {
    /// `kept / (kept + lost)` over the window and node set; 1.0 when
    /// nothing was scheduled.
    pub coverage: f64,
    /// Age of the most recent sample at the window end; `None` when the
    /// node set has no samples at all (maximally stale).
    pub staleness: Option<SimDuration>,
}

impl WindowQuality {
    /// True when the window meets a minimum coverage fraction *and* has at
    /// least one sample inside it.
    pub fn is_usable(&self, min_coverage: f64, window: SimDuration) -> bool {
        self.coverage >= min_coverage && self.staleness.is_some_and(|age| age <= window)
    }
}

/// Measures coverage and staleness of `[from, to)` across `nodes`.
pub fn window_quality(
    store: &MetricStore,
    nodes: &[NodeId],
    from: SimTime,
    to: SimTime,
) -> WindowQuality {
    WindowQuality {
        coverage: store.coverage(nodes, from, to),
        staleness: store
            .latest_sample_at(nodes, to)
            .map(|latest| to.since(latest)),
    }
}

/// Flattens per-counter aggregates into the feature layout of Table I:
/// `[min_c0, max_c0, mean_c0, min_c1, ...]`.
pub fn flatten_features(aggregates: &[CounterAggregate]) -> Vec<f64> {
    let mut out = Vec::with_capacity(aggregates.len() * 3);
    for a in aggregates {
        out.extend_from_slice(&a.features());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn store_with_data() -> MetricStore {
        let mut store = MetricStore::new(3, 2);
        // node 0: counter0 = 1, 2, 3 at t=0,10,20 ; counter1 = 10x
        for (i, s) in [0u64, 10, 20].iter().enumerate() {
            let v = (i + 1) as f64;
            store.record(NodeId(0), t(*s), &[v, v * 10.0]);
        }
        // node 1: counter0 = 100 at t=10
        store.record(NodeId(1), t(10), &[100.0, 0.5]);
        store
    }

    #[test]
    fn pools_across_time_and_nodes() {
        let store = store_with_data();
        let aggs = aggregate_counters(&store, &[NodeId(0), NodeId(1)], t(0), t(30));
        assert_eq!(aggs[0].count, 4);
        assert_eq!(aggs[0].min, 1.0);
        assert_eq!(aggs[0].max, 100.0);
        assert!((aggs[0].mean - 26.5).abs() < 1e-12);
        assert_eq!(aggs[1].count, 4);
        assert_eq!(aggs[1].min, 0.5);
        assert_eq!(aggs[1].max, 30.0);
    }

    #[test]
    fn node_subset_changes_the_answer() {
        let store = store_with_data();
        let only0 = aggregate_counters(&store, &[NodeId(0)], t(0), t(30));
        assert_eq!(only0[0].max, 3.0);
        let only1 = aggregate_counters(&store, &[NodeId(1)], t(0), t(30));
        assert_eq!(only1[0].min, 100.0);
        assert_eq!(only1[0].count, 1);
    }

    #[test]
    fn window_bounds_apply() {
        let store = store_with_data();
        let aggs = aggregate_counters(&store, &[NodeId(0)], t(5), t(15));
        assert_eq!(aggs[0].count, 1);
        assert_eq!(aggs[0].mean, 2.0);
    }

    #[test]
    fn empty_pool_is_zeroed() {
        let store = store_with_data();
        let aggs = aggregate_counters(&store, &[NodeId(2)], t(0), t(30));
        assert_eq!(aggs[0], CounterAggregate::EMPTY);
        let none = aggregate_counters(&store, &[], t(0), t(30));
        assert_eq!(none[1], CounterAggregate::EMPTY);
    }

    #[test]
    fn window_quality_reports_coverage_and_staleness() {
        let mut store = MetricStore::new(2, 1);
        store.record(NodeId(0), t(0), &[1.0]);
        store.record(NodeId(0), t(10), &[1.0]);
        store.record_gap(NodeId(0), t(20), crate::store::GapReason::Blackout);
        store.record_gap(NodeId(0), t(30), crate::store::GapReason::Blackout);
        let q = window_quality(&store, &[NodeId(0)], t(0), t(40));
        assert!((q.coverage - 0.5).abs() < 1e-12);
        assert_eq!(q.staleness, Some(SimDuration::from_secs(30)));
        assert!(q.is_usable(0.5, SimDuration::from_secs(40)));
        assert!(
            !q.is_usable(0.75, SimDuration::from_secs(40)),
            "coverage gate"
        );
        assert!(
            !q.is_usable(0.5, SimDuration::from_secs(10)),
            "staleness gate"
        );
    }

    #[test]
    fn window_quality_with_no_samples_is_maximally_stale() {
        let store = MetricStore::new(1, 1);
        let q = window_quality(&store, &[NodeId(0)], t(0), t(300));
        assert_eq!(q.coverage, 1.0, "nothing scheduled, nothing lost");
        assert_eq!(q.staleness, None);
        assert!(!q.is_usable(0.0, SimDuration::from_secs(300)));
    }

    #[test]
    fn flatten_orders_min_max_mean() {
        let aggs = vec![
            CounterAggregate {
                count: 2,
                min: 1.0,
                max: 2.0,
                mean: 1.5,
            },
            CounterAggregate {
                count: 1,
                min: 7.0,
                max: 7.0,
                mean: 7.0,
            },
        ];
        assert_eq!(flatten_features(&aggs), vec![1.0, 2.0, 1.5, 7.0, 7.0, 7.0]);
    }
}
