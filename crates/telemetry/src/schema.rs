//! The 282-feature layout of the paper's Table I.
//!
//! | Input source    | # counters | # features |
//! |-----------------|-----------:|-----------:|
//! | `sysclassib`    |         22 |         66 |
//! | `opa_info`      |         34 |        102 |
//! | `lustre_client` |         34 |        102 |
//! | MPI benchmarks  |          3 |          9 |
//! | intensity one-hots |       — |          3 |
//! | **total**       |            |    **282** |
//!
//! Each counter expands to `min_`, `max_` and `mean_` features (the window
//! reduction of Section III-A); the MPI probe benchmarks contribute the
//! min/max/mean across nodes of the blocking Send, Recv and AllReduce wait
//! times (Section III-C); and the application's workload type contributes a
//! compute/network/I-O one-hot (Section III-B).

use rush_cluster::counters::CounterTable;
use serde::{Deserialize, Serialize};

/// Names of the three MPI probe measurements (Section III-C).
pub const MPI_BENCH_NAMES: [&str; 3] = ["ring_send_wait", "ring_recv_wait", "allreduce_wait"];

/// Names of the three workload-intensity one-hots (Section III-B).
pub const INTENSITY_NAMES: [&str; 3] = ["compute_intensive", "network_intensive", "io_intensive"];

/// The aggregate prefixes, in the order features are laid out.
pub const AGG_PREFIXES: [&str; 3] = ["min", "max", "mean"];

/// Describes the full feature vector layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSchema {
    names: Vec<String>,
    counter_feature_count: usize,
}

impl FeatureSchema {
    /// Builds the Table-I schema.
    pub fn table_one() -> Self {
        let mut names = Vec::with_capacity(282);
        for table in CounterTable::ALL {
            for spec in table.counters() {
                for prefix in AGG_PREFIXES {
                    names.push(format!("{prefix}_{}", spec.name));
                }
            }
        }
        let counter_feature_count = names.len();
        for bench in MPI_BENCH_NAMES {
            for prefix in AGG_PREFIXES {
                names.push(format!("{prefix}_{bench}"));
            }
        }
        names.extend(INTENSITY_NAMES.iter().map(|s| s.to_string()));
        FeatureSchema {
            names,
            counter_feature_count,
        }
    }

    /// Total feature count (282 for Table I).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the schema has no features (never the case for Table I).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All feature names, in vector order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The index of a named feature.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Range of the counter-aggregate features (`0..270`).
    pub fn counter_range(&self) -> std::ops::Range<usize> {
        0..self.counter_feature_count
    }

    /// Range of the MPI benchmark features (`270..279`).
    pub fn bench_range(&self) -> std::ops::Range<usize> {
        self.counter_feature_count..self.counter_feature_count + MPI_BENCH_NAMES.len() * 3
    }

    /// Range of the intensity one-hot features (`279..282`).
    pub fn intensity_range(&self) -> std::ops::Range<usize> {
        let start = self.counter_feature_count + MPI_BENCH_NAMES.len() * 3;
        start..start + INTENSITY_NAMES.len()
    }

    /// Assembles a full feature vector from its three parts.
    ///
    /// # Panics
    /// Panics if part lengths don't match the schema.
    pub fn assemble(
        &self,
        counter_features: &[f64],
        bench_features: &[f64],
        one_hot: &[f64; 3],
    ) -> Vec<f64> {
        assert_eq!(
            counter_features.len(),
            self.counter_feature_count,
            "counter feature width mismatch"
        );
        assert_eq!(
            bench_features.len(),
            MPI_BENCH_NAMES.len() * 3,
            "bench feature width mismatch"
        );
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(counter_features);
        v.extend_from_slice(bench_features);
        v.extend_from_slice(one_hot);
        v
    }
}

impl Default for FeatureSchema {
    fn default() -> Self {
        Self::table_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_has_282_features() {
        let s = FeatureSchema::table_one();
        assert_eq!(s.len(), 282);
        assert!(!s.is_empty());
        assert_eq!(s.counter_range(), 0..270);
        assert_eq!(s.bench_range(), 270..279);
        assert_eq!(s.intensity_range(), 279..282);
    }

    #[test]
    fn names_follow_min_max_mean_order() {
        let s = FeatureSchema::table_one();
        assert_eq!(s.names()[0], "min_port_xmit_data");
        assert_eq!(s.names()[1], "max_port_xmit_data");
        assert_eq!(s.names()[2], "mean_port_xmit_data");
        assert_eq!(s.names()[270], "min_ring_send_wait");
        assert_eq!(s.names()[279], "compute_intensive");
        assert_eq!(s.names()[281], "io_intensive");
    }

    #[test]
    fn names_are_unique() {
        let s = FeatureSchema::table_one();
        let mut names = s.names().to_vec();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn index_of_finds_features() {
        let s = FeatureSchema::table_one();
        assert_eq!(s.index_of("min_port_xmit_data"), Some(0));
        assert_eq!(s.index_of("io_intensive"), Some(281));
        assert_eq!(s.index_of("nonexistent"), None);
        // the xmit_wait congestion signal exists with all three prefixes
        assert!(s.index_of("mean_port_xmit_wait").is_some());
        assert!(s.index_of("max_opa_xmit_wait").is_some());
    }

    #[test]
    fn assemble_concatenates_in_order() {
        let s = FeatureSchema::table_one();
        let counters = vec![1.0; 270];
        let bench = vec![2.0; 9];
        let v = s.assemble(&counters, &bench, &[0.0, 1.0, 0.0]);
        assert_eq!(v.len(), 282);
        assert_eq!(v[269], 1.0);
        assert_eq!(v[270], 2.0);
        assert_eq!(v[280], 1.0);
    }

    #[test]
    #[should_panic(expected = "counter feature width")]
    fn assemble_rejects_bad_widths() {
        let s = FeatureSchema::table_one();
        s.assemble(&[1.0; 10], &[2.0; 9], &[0.0, 0.0, 1.0]);
    }
}
