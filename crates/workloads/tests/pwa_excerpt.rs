//! Golden ingest test over the committed PWA-style excerpt.
//!
//! `data/pwa_excerpt.swf` is shaped like a real Parallel Workloads Archive
//! trace and deliberately carries every edge the ingest path must survive:
//! a negative job number, a processor count below the `-1` sentinel, a
//! truncated tail line, cancelled/failed records, an out-of-order submit,
//! and an oversized job. The expectations here are exact — if ingest
//! accounting drifts, this test names the line that moved.

use rush_workloads::swf::{self, SwfReader};
use std::io::BufReader;

const EXCERPT: &str = include_str!("data/pwa_excerpt.swf");

#[test]
fn lenient_ingest_accounts_for_every_line() {
    let (jobs, summary) = swf::parse_lenient(EXCERPT);

    // 14 job records: 8 usable, 3 malformed, 3 well-formed-but-unusable.
    assert_eq!(summary.kept, 8);
    assert_eq!(summary.dropped_malformed, 3);
    assert_eq!(summary.dropped_unusable, 3);
    assert_eq!(summary.kept + summary.dropped(), 14);
    assert!(!summary.errors_truncated());

    let kept_ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
    assert_eq!(kept_ids, vec![1, 2, 4, 5, 6, 9, 10, 13]);

    // Malformed lines are named precisely, with 1-based line numbers that
    // count the header comments.
    let rendered: Vec<String> = summary.errors.iter().map(|e| e.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "SWF line 10: negative job number '-3'".to_string(),
            "SWF line 15: negative allocated processors '-4'".to_string(),
            "SWF line 19: expected >= 8 fields, found 3".to_string(),
        ]
    );
}

#[test]
fn strict_ingest_stops_at_the_negative_id() {
    let err = swf::parse(EXCERPT).expect_err("the excerpt is dirty");
    assert_eq!(err.line, 10);
    assert!(err.message.contains("negative job number"));
}

#[test]
fn streaming_ingest_matches_in_memory_on_the_excerpt() {
    let (inmem_jobs, inmem_summary) = swf::parse_lenient(EXCERPT);
    // A 7-byte buffer forces every record across buffer boundaries.
    let mut reader = SwfReader::lenient(BufReader::with_capacity(7, EXCERPT.as_bytes()));
    let stream_jobs: Vec<_> = (&mut reader).map(|r| r.expect("lenient")).collect();
    assert_eq!(inmem_jobs, stream_jobs);
    assert_eq!(inmem_summary, reader.into_summary());
}

#[test]
fn excerpt_requests_preserve_estimates_and_clamp_nodes() {
    let (jobs, _) = swf::parse_lenient(EXCERPT);
    let mut stream = swf::request_stream(jobs.into_iter(), 36, 4096);
    let requests: Vec<_> = (&mut stream).collect();
    assert_eq!(stream.dropped_no_runtime(), 0);
    assert_eq!(requests.len(), 8);

    // Dense ids in stream order; submit times carried through, including
    // the out-of-order pair (job 6 submitted before job 5 but recorded
    // after it).
    let order: Vec<(u64, u64)> = requests
        .iter()
        .map(|r| (r.id, r.submit_at.as_secs_f64() as u64))
        .collect();
    assert_eq!(
        order,
        vec![
            (0, 0),
            (1, 120),
            (2, 300),
            (3, 900),
            (4, 840), // out-of-order submit survives conversion untouched
            (5, 1080),
            (6, 1140),
            (7, 1320),
        ]
    );

    // SWF field 9 becomes the per-job user estimate; `-1` stays missing.
    assert_eq!(requests[0].user_est_secs, Some(7200.0));
    assert_eq!(requests[6].user_est_secs, None);

    // 72 procs on 36-core nodes → 2 nodes; the 165 888-proc job clamps to
    // the conversion ceiling (rejection happens later, at submit time, if
    // the target machine is smaller).
    assert_eq!(requests[0].nodes, 2);
    assert_eq!(requests[3].nodes, 4);
    assert_eq!(requests[4].nodes, 1);
    assert_eq!(requests[5].nodes, 4096);
}
