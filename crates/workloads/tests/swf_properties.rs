//! SWF ingest property tests: the incremental [`SwfReader`] over a
//! small-buffer `BufRead` (lines crossing buffer boundaries) must agree
//! with the in-memory `parse`/`parse_lenient` wrappers on arbitrary
//! corpora — clean records, comments, directives, blank lines, and every
//! malformed shape the lenient path counts — job for job, error for error.
//!
//! [`SwfReader`]: rush_workloads::swf::SwfReader

use proptest::prelude::*;
use rush_workloads::swf::{self, SwfJob, SwfReader};
use std::io::BufReader;

/// One syntactically clean 18-field record (values may still make it
/// unusable, e.g. all runtimes missing — that is the interesting part).
fn clean_line() -> impl Strategy<Value = String> {
    (
        (
            0u64..100_000,   // job number
            0u64..1_000_000, // submit
            -1i64..100_000,  // run time
        ),
        (
            -1i64..512,       // allocated procs
            -1i64..512,       // requested procs
            -1i64..100_000,   // requested time
            -1i64..4_000_000, // requested memory
        ),
    )
        .prop_map(|((id, submit, run), (alloc, req, req_time, mem))| {
            format!(
                "{id} {submit} 3 {run} {alloc} -1 -1 {req} {req_time} {mem} 1 1 1 1 -1 -1 -1 -1"
            )
        })
}

/// Lines the parser must tolerate (lenient) or report precisely (strict).
fn dirty_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // negative job number — must be rejected, never wrapped
        Just("-7 100 0 60 4 -1 -1 4 120 -1 1 1 1 1 -1 -1 -1 -1".to_string()),
        // negative allocated-processor count below the -1 sentinel
        Just("9 100 0 60 -4 -1 -1 4 120 -1 1 1 1 1 -1 -1 -1 -1".to_string()),
        // non-numeric field
        Just("5 abc 0 60 4 -1 -1 4 120 -1 1 1 1 1 -1 -1 -1 -1".to_string()),
        // too few fields
        Just("5 100 0".to_string()),
        // comments, directives, and blanks (never errors in either mode)
        Just("; UnixStartTime: 0".to_string()),
        Just(";".to_string()),
        Just(String::new()),
        Just("   ".to_string()),
    ]
}

fn corpus() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![clean_line(), clean_line(), dirty_line()], 0..40)
        .prop_map(|lines| lines.join("\n"))
}

/// Drains a reader built over a deliberately tiny buffered reader, so
/// record boundaries and buffer boundaries interleave.
fn stream_lenient(text: &str) -> (Vec<SwfJob>, swf::IngestSummary) {
    let reader = BufReader::with_capacity(7, text.as_bytes());
    let mut r = SwfReader::lenient(reader);
    let mut jobs = Vec::new();
    for item in &mut r {
        jobs.push(item.expect("lenient mode never yields Err"));
    }
    let summary = r.into_summary();
    (jobs, summary)
}

fn stream_strict(text: &str) -> Result<Vec<SwfJob>, String> {
    let reader = BufReader::with_capacity(7, text.as_bytes());
    SwfReader::strict(reader)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming ≡ in-memory on arbitrary mixed corpora: identical kept
    /// jobs, identical error accounting, regardless of where the reader's
    /// buffer boundaries fall.
    #[test]
    fn streaming_reader_matches_in_memory_parse(text in corpus()) {
        let (inmem_jobs, inmem_summary) = swf::parse_lenient(&text);
        let (stream_jobs, stream_summary) = stream_lenient(&text);
        prop_assert_eq!(&inmem_jobs, &stream_jobs);
        prop_assert_eq!(&inmem_summary, &stream_summary);

        let inmem_strict = swf::parse(&text).map_err(|e| e.to_string());
        let stream_strict = stream_strict(&text);
        prop_assert_eq!(inmem_strict, stream_strict);

        // Conservation: every input record is kept or counted dropped.
        let records = text
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with(';')
            })
            .count() as u64;
        prop_assert_eq!(stream_summary.kept + stream_summary.dropped(), records);
    }

    /// Clean corpora parse identically in both modes and drop nothing as
    /// malformed (unusable records — no runtime anywhere — may drop).
    #[test]
    fn clean_corpora_have_no_malformed_drops(
        lines in proptest::collection::vec(clean_line(), 1..30),
    ) {
        let text = lines.join("\n");
        let (jobs, summary) = swf::parse_lenient(&text);
        prop_assert_eq!(summary.dropped_malformed, 0);
        prop_assert!(summary.errors.is_empty());
        let strict = swf::parse(&text).expect("clean corpus parses strictly");
        prop_assert_eq!(jobs, strict);
    }
}
