//! The MPI probe benchmarks (Section III-C).
//!
//! "Right as each job is scheduled we ran two MPI benchmarks with mpiP to
//! gather information about the network health. The first benchmark is a
//! simple ring routine with send/recv that passes around a 100 MB token for
//! ten iterations. The second calls AllReduce on 100 MB of random data for
//! five iterations. … Using mpiP we record the time spent waiting on the
//! blocking Send, Recv, and AllReduce calls on each node. For the dataset we
//! record the minimum, maximum, and mean of each of these values across used
//! nodes. This becomes nine features in each data point."
//!
//! Our probe computes per-node wait times from the simulated fabric state:
//! the base transfer time of the message volume, inflated by congestion on
//! the nodes' paths, with per-node measurement noise.

use rand::{Rng, RngCore};
use rush_cluster::machine::Machine;
use rush_cluster::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Probe benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Token / buffer size, GB (paper: 100 MB = 0.1 GB).
    pub message_gb: f64,
    /// Ring iterations (paper: 10).
    pub ring_iters: u32,
    /// AllReduce iterations (paper: 5).
    pub allreduce_iters: u32,
    /// How strongly congestion inflates wait times.
    pub congestion_gain: f64,
    /// Log-std of per-node measurement noise.
    pub node_noise: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            message_gb: 0.1,
            ring_iters: 10,
            allreduce_iters: 5,
            congestion_gain: 2.5,
            node_noise: 0.08,
        }
    }
}

/// Per-node wait times measured by one probe run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeMeasurement {
    /// Blocking-Send wait per node, seconds.
    pub send_wait: Vec<f64>,
    /// Blocking-Recv wait per node, seconds.
    pub recv_wait: Vec<f64>,
    /// AllReduce wait per node, seconds.
    pub allreduce_wait: Vec<f64>,
}

impl ProbeMeasurement {
    /// The nine dataset features: min/max/mean of each wait across nodes,
    /// in schema order (`ring_send_wait`, `ring_recv_wait`,
    /// `allreduce_wait`).
    pub fn features(&self) -> [f64; 9] {
        let mut out = [0.0; 9];
        for (i, waits) in [&self.send_wait, &self.recv_wait, &self.allreduce_wait]
            .into_iter()
            .enumerate()
        {
            let (min, max, sum) = waits.iter().fold(
                (f64::INFINITY, f64::NEG_INFINITY, 0.0),
                |(mn, mx, s), &v| (mn.min(v), mx.max(v), s + v),
            );
            let mean = if waits.is_empty() {
                0.0
            } else {
                sum / waits.len() as f64
            };
            let (min, max) = if waits.is_empty() {
                (0.0, 0.0)
            } else {
                (min, max)
            };
            out[i * 3] = min;
            out[i * 3 + 1] = max;
            out[i * 3 + 2] = mean;
        }
        out
    }

    /// Total probe wall time (the overhead charged to the job), seconds.
    pub fn wall_time_secs(&self) -> f64 {
        // The ring and allreduce run back to back; wall time is the worst
        // node's combined wait.
        let worst_ring = self
            .send_wait
            .iter()
            .zip(&self.recv_wait)
            .map(|(s, r)| s + r)
            .fold(0.0f64, f64::max);
        let worst_ar = self.allreduce_wait.iter().fold(0.0f64, |a, &b| a.max(b));
        worst_ring + worst_ar
    }
}

/// Runs both probe benchmarks on `nodes` against the machine's current
/// fabric state.
pub fn run_probes<R: RngCore>(
    machine: &mut Machine,
    nodes: &[NodeId],
    config: &ProbeConfig,
    rng: &mut R,
) -> ProbeMeasurement {
    assert!(!nodes.is_empty(), "probes need at least one node");
    let congestion = machine.congestion(nodes);
    let access_gbps = machine.tree().config().access_gbps;

    // Base per-iteration transfer time of the token at full access
    // bandwidth; congestion multiplies the effective wait.
    let base_xfer = config.message_gb / access_gbps;
    let inflation = 1.0 + config.congestion_gain * congestion.powf(1.5);

    let ring_total = base_xfer * config.ring_iters as f64 * inflation;
    // AllReduce moves ~2x the buffer per iteration (reduce-scatter +
    // allgather) and synchronizes all nodes.
    let ar_total = 2.0 * base_xfer * config.allreduce_iters as f64 * inflation;

    let mut noisy = |base: f64| -> f64 {
        let z: f64 = rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5; // ~N(0, 0.5)
        base * (config.node_noise * z * 2.0).exp()
    };

    let send_wait = nodes.iter().map(|_| noisy(ring_total * 0.5)).collect();
    let recv_wait = nodes.iter().map(|_| noisy(ring_total * 0.5)).collect();
    let allreduce_wait = nodes.iter().map(|_| noisy(ar_total)).collect();

    ProbeMeasurement {
        send_wait,
        recv_wait,
        allreduce_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rush_cluster::machine::{MachineConfig, SourceId, WorkloadIntensity};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn nodes(r: std::ops::Range<u32>) -> Vec<NodeId> {
        r.map(NodeId).collect()
    }

    #[test]
    fn probe_produces_per_node_measurements() {
        let mut m = Machine::new(MachineConfig::tiny(1));
        let ns = nodes(0..8);
        let meas = run_probes(&mut m, &ns, &ProbeConfig::default(), &mut rng());
        assert_eq!(meas.send_wait.len(), 8);
        assert_eq!(meas.recv_wait.len(), 8);
        assert_eq!(meas.allreduce_wait.len(), 8);
        assert!(meas.send_wait.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn congestion_inflates_waits() {
        let mut m = Machine::new(MachineConfig::tiny(2));
        let ns = nodes(0..8);
        let calm = run_probes(&mut m, &ns, &ProbeConfig::default(), &mut rng());
        // Load the fabric heavily with several machine-spanning sources.
        for id in 1..6 {
            m.register_load(
                SourceId(id),
                nodes(0..16),
                WorkloadIntensity::new(0.0, 1.0, 0.0),
            );
        }
        let busy = run_probes(&mut m, &ns, &ProbeConfig::default(), &mut rng());
        let calm_f = calm.features();
        let busy_f = busy.features();
        // mean allreduce wait (index 8) rises under load
        assert!(
            busy_f[8] > calm_f[8] * 1.2,
            "busy {} vs calm {}",
            busy_f[8],
            calm_f[8]
        );
    }

    #[test]
    fn features_are_min_max_mean_triples() {
        let meas = ProbeMeasurement {
            send_wait: vec![1.0, 3.0],
            recv_wait: vec![2.0, 2.0],
            allreduce_wait: vec![5.0, 7.0],
        };
        let f = meas.features();
        assert_eq!(f[0], 1.0); // min send
        assert_eq!(f[1], 3.0); // max send
        assert_eq!(f[2], 2.0); // mean send
        assert_eq!(f[3], 2.0);
        assert_eq!(f[4], 2.0);
        assert_eq!(f[5], 2.0);
        assert_eq!(f[6], 5.0);
        assert_eq!(f[7], 7.0);
        assert_eq!(f[8], 6.0);
    }

    #[test]
    fn wall_time_is_worst_node_path() {
        let meas = ProbeMeasurement {
            send_wait: vec![1.0, 2.0],
            recv_wait: vec![1.0, 3.0],
            allreduce_wait: vec![4.0, 2.0],
        };
        // worst ring pair = 2+3 = 5; worst allreduce = 4
        assert_eq!(meas.wall_time_secs(), 9.0);
    }

    #[test]
    fn probe_wall_time_is_modest() {
        // Section III-C: sizes picked so probes don't cause significant
        // overhead — on a calm machine the probe should cost ~< 1 s.
        let mut m = Machine::new(MachineConfig::tiny(4));
        let meas = run_probes(&mut m, &nodes(0..8), &ProbeConfig::default(), &mut rng());
        assert!(meas.wall_time_secs() < 2.0, "{}", meas.wall_time_secs());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_node_set_rejected() {
        let mut m = Machine::new(MachineConfig::tiny(5));
        run_probes(&mut m, &[], &ProbeConfig::default(), &mut rng());
    }
}
