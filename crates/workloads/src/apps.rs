//! The seven proxy applications and their run-time model.
//!
//! Each application is a descriptor: base run time at the reference scale
//! (16 nodes / 512 processes, as in Section III-B), a workload-intensity mix
//! on the compute/network/I-O axes, sensitivities to fabric congestion and
//! filesystem saturation, and a small intrinsic run-to-run noise.
//!
//! The *slowdown* model is the contract with the scheduler's execution
//! engine: given the machine's current congestion index and filesystem
//! saturation, [`ProxyApp::slowdown`] returns the instantaneous factor by
//! which the application runs slower than nominal. The execution engine
//! integrates `1 / slowdown` over time (re-evaluating whenever machine state
//! changes), which is how contention during a run — not just at its start —
//! determines the observed run time.

use crate::scaling::ScalingMode;
use rush_cluster::machine::WorkloadIntensity;
use rush_simkit::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Congestion below this threshold causes no measurable slowdown.
pub const CONGESTION_KNEE: f64 = 0.45;
/// Filesystem saturation below this threshold causes no measurable slowdown.
pub const FS_KNEE: f64 = 0.75;
/// Curvature of the congestion response.
pub const CONGESTION_EXP: f64 = 1.5;
/// Fraction of a run that is the contention-heavy startup phase.
pub const STARTUP_FRACTION: f64 = 0.3;
/// Penalty multiplier during the startup phase.
pub const STARTUP_WEIGHT: f64 = 2.5;
/// Penalty multiplier after startup, chosen so a constant-congestion run
/// has the same total slowdown as the unweighted model:
/// `STARTUP_FRACTION·STARTUP_WEIGHT + (1−STARTUP_FRACTION)·TAIL_WEIGHT = 1`.
pub const TAIL_WEIGHT: f64 = (1.0 - STARTUP_FRACTION * STARTUP_WEIGHT) / (1.0 - STARTUP_FRACTION);

/// Identifies one of the seven proxy applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppId {
    /// Kripke — deterministic Sn transport; compute-bound sweeps.
    Kripke,
    /// AMG — algebraic multigrid; compute-bound with modest communication.
    Amg,
    /// Laghos — high-order Lagrangian hydrodynamics; communication-heavy.
    Laghos,
    /// SWFFT — 3-D FFT; all-to-all transposes.
    Swfft,
    /// PENNANT — unstructured mesh hydrodynamics; mostly compute.
    Pennant,
    /// sw4lite — seismic wave propagation; halo exchange heavy.
    Sw4lite,
    /// LBANN — distributed neural-network training; network and I/O heavy.
    Lbann,
}

impl AppId {
    /// All seven applications, in the paper's listing order.
    pub const ALL: [AppId; 7] = [
        AppId::Kripke,
        AppId::Amg,
        AppId::Laghos,
        AppId::Swfft,
        AppId::Pennant,
        AppId::Sw4lite,
        AppId::Lbann,
    ];

    /// The applications used by the ADPA/PDPA experiments (Table II).
    pub const PARTIAL_RUN: [AppId; 3] = [AppId::Laghos, AppId::Lbann, AppId::Pennant];

    /// The applications whose data trains the PDPA model (Table II).
    pub const PARTIAL_TRAIN: [AppId; 4] = [AppId::Amg, AppId::Kripke, AppId::Sw4lite, AppId::Swfft];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// This application's descriptor.
    pub fn descriptor(self) -> &'static ProxyApp {
        &APPS[self.index()]
    }

    /// Dense index into [`APPS`].
    pub fn index(self) -> usize {
        match self {
            AppId::Kripke => 0,
            AppId::Amg => 1,
            AppId::Laghos => 2,
            AppId::Swfft => 3,
            AppId::Pennant => 4,
            AppId::Sw4lite => 5,
            AppId::Lbann => 6,
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A proxy application's run-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyApp {
    /// Which app this is.
    pub id: AppId,
    /// Display name.
    pub name: &'static str,
    /// Run time at the 16-node reference scale on an idle machine, seconds.
    pub base_runtime_secs: f64,
    /// Compute intensity on `[0, 1]`.
    pub compute: f64,
    /// Network intensity on `[0, 1]` (drives injected traffic).
    pub network: f64,
    /// I/O intensity on `[0, 1]` (drives filesystem demand).
    pub io: f64,
    /// Multiplier on the congestion penalty.
    pub net_sensitivity: f64,
    /// Multiplier on the filesystem penalty.
    pub io_sensitivity: f64,
    /// Log-std of intrinsic run-to-run noise (input irregularities etc.).
    pub intrinsic_noise: f64,
    /// Parallel efficiency exponent for strong scaling (1 = perfect).
    pub strong_scaling_eff: f64,
    /// Communication overhead growth per doubling under weak scaling.
    pub weak_scaling_overhead: f64,
}

impl ProxyApp {
    /// The workload-intensity triple this app registers on the machine.
    pub fn intensity(&self) -> WorkloadIntensity {
        WorkloadIntensity::new(self.compute, self.network, self.io)
    }

    /// The compute/network/IO one-hot for the dataset (Table I).
    pub fn one_hot(&self) -> [f64; 3] {
        self.intensity().one_hot()
    }

    /// Nominal run time at `nodes` under `scaling`, before any contention.
    pub fn base_runtime(&self, nodes: u32, scaling: ScalingMode) -> SimDuration {
        let secs = scaling.scaled_runtime(
            self.base_runtime_secs,
            nodes,
            self.strong_scaling_eff,
            self.weak_scaling_overhead,
        );
        SimDuration::from_secs_f64(secs)
    }

    /// Instantaneous slowdown factor (≥ 1) under the given machine state,
    /// averaged over the whole run (phase weight 1).
    ///
    /// `congestion` is the fabric congestion index over the job's nodes;
    /// `fs_saturation` is global filesystem demand over capacity.
    pub fn slowdown(&self, congestion: f64, fs_saturation: f64) -> f64 {
        1.0 + self.penalty(congestion, fs_saturation)
    }

    /// Instantaneous slowdown at a given execution `progress` in `[0, 1]`.
    ///
    /// Contention sensitivity is concentrated in the startup phase (MPI
    /// setup, mesh distribution, data loading): the penalty is multiplied
    /// by [`STARTUP_WEIGHT`] while `progress < STARTUP_FRACTION` and scaled
    /// down afterwards such that *constant* congestion yields exactly the
    /// same total run time as [`ProxyApp::slowdown`]. This is why
    /// launch-time machine state is so predictive of a run's variation —
    /// the empirical premise behind the paper's F1 ≈ 0.95 classifier.
    pub fn slowdown_at(&self, progress: f64, congestion: f64, fs_saturation: f64) -> f64 {
        let weight = if progress < STARTUP_FRACTION {
            STARTUP_WEIGHT
        } else {
            TAIL_WEIGHT
        };
        1.0 + weight * self.penalty(congestion, fs_saturation)
    }

    fn penalty(&self, congestion: f64, fs_saturation: f64) -> f64 {
        let net_pen = self.net_sensitivity
            * self.network
            * (congestion - CONGESTION_KNEE).max(0.0).powf(CONGESTION_EXP);
        let io_pen = self.io_sensitivity * self.io * (fs_saturation - FS_KNEE).max(0.0).powi(2);
        net_pen + io_pen
    }
}

/// The seven proxy applications (Section III-B).
///
/// Base run times put a 190-job queue in the paper's 30–50 minute makespan
/// band on a 480-node schedulable pool; sensitivities reproduce the
/// variability ordering of Figs. 1 and 5–6 (Laghos/LBANN/sw4lite most
/// prone, Kripke/AMG least).
pub static APPS: [ProxyApp; 7] = [
    ProxyApp {
        id: AppId::Kripke,
        name: "kripke",
        base_runtime_secs: 210.0,
        compute: 0.95,
        network: 0.45,
        io: 0.05,
        net_sensitivity: 0.8,
        io_sensitivity: 0.2,
        intrinsic_noise: 0.025,
        strong_scaling_eff: 0.92,
        weak_scaling_overhead: 0.04,
    },
    ProxyApp {
        id: AppId::Amg,
        name: "amg",
        base_runtime_secs: 180.0,
        compute: 0.85,
        network: 0.45,
        io: 0.05,
        net_sensitivity: 0.9,
        io_sensitivity: 0.2,
        intrinsic_noise: 0.022,
        strong_scaling_eff: 0.85,
        weak_scaling_overhead: 0.07,
    },
    ProxyApp {
        id: AppId::Laghos,
        name: "laghos",
        base_runtime_secs: 300.0,
        compute: 0.50,
        network: 0.90,
        io: 0.05,
        net_sensitivity: 1.6,
        io_sensitivity: 0.3,
        intrinsic_noise: 0.012,
        strong_scaling_eff: 0.78,
        weak_scaling_overhead: 0.10,
    },
    ProxyApp {
        id: AppId::Swfft,
        name: "swfft",
        base_runtime_secs: 150.0,
        compute: 0.45,
        network: 0.80,
        io: 0.05,
        net_sensitivity: 1.1,
        io_sensitivity: 0.2,
        intrinsic_noise: 0.010,
        strong_scaling_eff: 0.75,
        weak_scaling_overhead: 0.12,
    },
    ProxyApp {
        id: AppId::Pennant,
        name: "pennant",
        base_runtime_secs: 240.0,
        compute: 0.85,
        network: 0.45,
        io: 0.05,
        net_sensitivity: 0.9,
        io_sensitivity: 0.2,
        intrinsic_noise: 0.022,
        strong_scaling_eff: 0.88,
        weak_scaling_overhead: 0.06,
    },
    ProxyApp {
        id: AppId::Sw4lite,
        name: "sw4lite",
        base_runtime_secs: 330.0,
        compute: 0.55,
        network: 0.75,
        io: 0.15,
        net_sensitivity: 1.4,
        io_sensitivity: 0.4,
        intrinsic_noise: 0.012,
        strong_scaling_eff: 0.82,
        weak_scaling_overhead: 0.08,
    },
    ProxyApp {
        id: AppId::Lbann,
        name: "lbann",
        base_runtime_secs: 360.0,
        compute: 0.50,
        network: 0.70,
        io: 0.85,
        net_sensitivity: 1.8,
        io_sensitivity: 0.6,
        intrinsic_noise: 0.014,
        strong_scaling_eff: 0.80,
        weak_scaling_overhead: 0.09,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_apps_with_unique_names() {
        assert_eq!(APPS.len(), 7);
        let mut names: Vec<_> = APPS.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn ids_round_trip_through_descriptors() {
        for id in AppId::ALL {
            assert_eq!(id.descriptor().id, id);
            assert_eq!(APPS[id.index()].id, id);
        }
    }

    #[test]
    fn partial_sets_partition_consistently() {
        // PDPA: train on 4 apps, run the other 3 (Section VI-A).
        for id in AppId::PARTIAL_RUN {
            assert!(!AppId::PARTIAL_TRAIN.contains(&id));
        }
        assert_eq!(AppId::PARTIAL_RUN.len() + AppId::PARTIAL_TRAIN.len(), 7);
    }

    #[test]
    fn idle_machine_means_no_slowdown() {
        for app in &APPS {
            assert_eq!(app.slowdown(0.0, 0.0), 1.0, "{}", app.name);
            assert_eq!(app.slowdown(CONGESTION_KNEE, FS_KNEE), 1.0);
        }
    }

    #[test]
    fn slowdown_monotone_in_congestion() {
        for app in &APPS {
            let lo = app.slowdown(0.6, 0.0);
            let hi = app.slowdown(1.2, 0.0);
            assert!(hi >= lo, "{}", app.name);
        }
    }

    #[test]
    fn variability_ordering_matches_paper() {
        // At a storm-level congestion, Laghos and LBANN should slow the
        // most, Kripke the least (Figs. 1, 5, 6).
        let c = 1.2;
        let slow = |id: AppId| id.descriptor().slowdown(c, 0.0);
        assert!(slow(AppId::Laghos) > slow(AppId::Swfft));
        assert!(slow(AppId::Lbann) > slow(AppId::Pennant));
        assert!(slow(AppId::Sw4lite) > slow(AppId::Amg));
        assert!(slow(AppId::Kripke) < slow(AppId::Amg));
    }

    #[test]
    fn lbann_is_most_io_sensitive() {
        let sat = 1.5;
        let io_slow = |id: AppId| id.descriptor().slowdown(0.0, sat);
        for id in AppId::ALL {
            if id != AppId::Lbann {
                assert!(io_slow(AppId::Lbann) > io_slow(id), "{id}");
            }
        }
    }

    #[test]
    fn one_hots_cover_all_three_classes() {
        let mut seen = [false; 3];
        for app in &APPS {
            let oh = app.one_hot();
            let idx = oh.iter().position(|&v| v == 1.0).unwrap();
            seen[idx] = true;
        }
        assert_eq!(
            seen,
            [true, true, true],
            "need compute, network and io apps"
        );
    }

    #[test]
    fn base_runtime_at_reference_scale() {
        let app = AppId::Kripke.descriptor();
        let d = app.base_runtime(16, ScalingMode::Reference);
        assert!((d.as_secs_f64() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(AppId::Lbann.to_string(), "lbann");
        assert_eq!(AppId::Sw4lite.name(), "sw4lite");
    }
}
