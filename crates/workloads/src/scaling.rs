//! Weak and strong scaling of base run times.
//!
//! The WS and SS experiments (Table II) run each application on 8, 16 and
//! 32 nodes. Under strong scaling the problem size is fixed, so run time
//! shrinks with node count at the application's parallel efficiency; under
//! weak scaling the per-node problem size is fixed, so run time stays
//! roughly flat but communication overhead grows with scale.

use serde::{Deserialize, Serialize};

/// Reference node count all base run times are calibrated at.
pub const REFERENCE_NODES: u32 = 16;

/// How a job's input deck is adjusted for its node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScalingMode {
    /// Run at the reference input regardless of node count (ADAA/ADPA/PDPA
    /// always use 16 nodes, so this is exact for them).
    #[default]
    Reference,
    /// Fixed total problem: more nodes → shorter runs, at imperfect
    /// efficiency.
    Strong,
    /// Fixed per-node problem: run time ~flat, communication overhead grows.
    Weak,
}

impl ScalingMode {
    /// Scales the 16-node base run time (seconds) to `nodes`.
    ///
    /// * `strong_eff` — per-doubling parallel efficiency in `(0, 1]`.
    /// * `weak_overhead` — fractional overhead added per doubling under
    ///   weak scaling.
    pub fn scaled_runtime(
        self,
        base_secs: f64,
        nodes: u32,
        strong_eff: f64,
        weak_overhead: f64,
    ) -> f64 {
        assert!(nodes > 0, "job needs at least one node");
        let doublings = (nodes as f64 / REFERENCE_NODES as f64).log2();
        match self {
            ScalingMode::Reference => base_secs,
            ScalingMode::Strong => {
                // Ideal speedup is 2^doublings; efficiency discounts it when
                // scaling up and (symmetrically) rewards scaling down, where
                // the smaller run communicates less.
                let speedup = (2.0f64).powf(doublings) * strong_eff.powf(doublings);
                base_secs / speedup
            }
            ScalingMode::Weak => base_secs * (1.0 + weak_overhead).powf(doublings),
        }
    }

    /// Short label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            ScalingMode::Reference => "ref",
            ScalingMode::Strong => "strong",
            ScalingMode::Weak => "weak",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ignores_node_count() {
        for nodes in [8, 16, 32] {
            assert_eq!(
                ScalingMode::Reference.scaled_runtime(100.0, nodes, 0.8, 0.1),
                100.0
            );
        }
    }

    #[test]
    fn strong_scaling_shrinks_with_nodes() {
        let at = |n| ScalingMode::Strong.scaled_runtime(100.0, n, 0.85, 0.0);
        assert!(at(32) < at(16));
        assert!(at(16) < at(8));
        // 16 nodes is the calibration point
        assert!((at(16) - 100.0).abs() < 1e-9);
        // doubling with eff 0.85 gives speedup 1.7
        assert!((at(32) - 100.0 / 1.7).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_down_is_slower_than_ideal_halving() {
        // 8 nodes: ideal slowdown 2x; inefficiency makes it a bit less than
        // 2x (the small-node run communicates less).
        let t8 = ScalingMode::Strong.scaled_runtime(100.0, 8, 0.85, 0.0);
        assert!(t8 > 150.0 && t8 < 200.0, "got {t8}");
    }

    #[test]
    fn weak_scaling_grows_gently_with_nodes() {
        let at = |n| ScalingMode::Weak.scaled_runtime(100.0, n, 1.0, 0.1);
        assert!((at(16) - 100.0).abs() < 1e-9);
        assert!((at(32) - 110.0).abs() < 1e-9);
        assert!(at(8) < 100.0);
    }

    #[test]
    fn perfect_efficiency_is_ideal_speedup() {
        let t32 = ScalingMode::Strong.scaled_runtime(100.0, 32, 1.0, 0.0);
        assert!((t32 - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ScalingMode::Strong.scaled_runtime(100.0, 0, 0.8, 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ScalingMode::Weak.label(), "weak");
        assert_eq!(ScalingMode::Strong.label(), "strong");
        assert_eq!(ScalingMode::Reference.label(), "ref");
    }
}
