//! Experiment job-stream generation (Section VI-A).
//!
//! "We setup a queue of jobs that takes between 30 and 50 minutes for all of
//! them to run to completion. Each job runs on 16 nodes with 512 processes.
//! At the beginning of the experiment we submit 20% of the jobs to the Flux
//! queue immediately and submit the rest uniformly over 20 minutes."
//!
//! [`generate_jobs`] reproduces that arrival process for any application
//! mix, job count and node-count list (the WS/SS experiments cycle through
//! 8/16/32 nodes).

use crate::apps::AppId;
use crate::scaling::ScalingMode;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rush_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One job the experiment will submit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Dense id, unique within the experiment.
    pub id: u64,
    /// Which proxy application runs.
    pub app: AppId,
    /// Node count.
    pub nodes: u32,
    /// Submission time.
    pub submit_at: SimTime,
    /// Input-deck scaling for this node count.
    pub scaling: ScalingMode,
    /// The user's own wall-time estimate in seconds (SWF field 9), when
    /// the workload carries one. `None` falls back to the scheduler's
    /// global over-estimation factor; trace replays populate it so backfill
    /// reservations can plan with real (wildly inaccurate, learnable)
    /// user estimates.
    pub user_est_secs: Option<f64>,
}

/// Parameters of a job stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Applications to draw from (cycled, then shuffled).
    pub apps: Vec<AppId>,
    /// Total jobs.
    pub total_jobs: usize,
    /// Node counts to cycle through (single entry for fixed-size runs).
    pub node_counts: Vec<u32>,
    /// Scaling mode applied to non-reference node counts.
    pub scaling: ScalingMode,
    /// Fraction of jobs submitted at `t = 0` (paper: 0.2).
    pub upfront_fraction: f64,
    /// Window over which the remainder arrives uniformly (paper: 20 min).
    pub submit_window: SimDuration,
}

impl WorkloadSpec {
    /// The standard fixed-size experiment stream: every app on 16 nodes.
    pub fn standard(apps: Vec<AppId>, total_jobs: usize) -> Self {
        WorkloadSpec {
            apps,
            total_jobs,
            node_counts: vec![16],
            scaling: ScalingMode::Reference,
            upfront_fraction: 0.2,
            submit_window: SimDuration::from_mins(20),
        }
    }

    /// The WS/SS streams: all apps cycled over 8/16/32 nodes.
    pub fn scaled(apps: Vec<AppId>, total_jobs: usize, scaling: ScalingMode) -> Self {
        WorkloadSpec {
            node_counts: vec![8, 16, 32],
            scaling,
            ..Self::standard(apps, total_jobs)
        }
    }
}

/// Generates the job stream for `spec`.
///
/// Applications and node counts are cycled so counts are balanced, then the
/// whole list is shuffled so arrival order is not periodic. The first
/// `upfront_fraction` of jobs arrive at `t = 0`; the rest arrive at uniform
/// random offsets within `submit_window`. Jobs are returned sorted by
/// submission time.
pub fn generate_jobs(spec: &WorkloadSpec, rng: &mut SmallRng) -> Vec<JobRequest> {
    assert!(!spec.apps.is_empty(), "workload needs at least one app");
    assert!(!spec.node_counts.is_empty(), "workload needs node counts");
    assert!(
        (0.0..=1.0).contains(&spec.upfront_fraction),
        "upfront fraction must be a fraction"
    );

    // Balanced app × node-count assignment.
    let mut combos: Vec<(AppId, u32)> = Vec::with_capacity(spec.total_jobs);
    'outer: loop {
        for &nodes in &spec.node_counts {
            for &app in &spec.apps {
                if combos.len() == spec.total_jobs {
                    break 'outer;
                }
                combos.push((app, nodes));
            }
        }
        if spec.total_jobs == 0 {
            break;
        }
    }
    combos.shuffle(rng);

    let upfront = (spec.total_jobs as f64 * spec.upfront_fraction).round() as usize;
    let mut jobs: Vec<JobRequest> = combos
        .into_iter()
        .enumerate()
        .map(|(i, (app, nodes))| {
            let submit_at = if i < upfront {
                SimTime::ZERO
            } else {
                let off = rng.gen_range(0.0..spec.submit_window.as_secs_f64());
                SimTime::from_secs_f64(off)
            };
            let scaling = if nodes == 16 && spec.scaling == ScalingMode::Reference {
                ScalingMode::Reference
            } else {
                spec.scaling
            };
            JobRequest {
                id: i as u64,
                app,
                nodes,
                submit_at,
                scaling,
                user_est_secs: None,
            }
        })
        .collect();
    jobs.sort_by_key(|j| (j.submit_at, j.id));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn generates_requested_count() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 190);
        let jobs = generate_jobs(&spec, &mut rng());
        assert_eq!(jobs.len(), 190);
    }

    #[test]
    fn twenty_percent_arrive_upfront() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 190);
        let jobs = generate_jobs(&spec, &mut rng());
        let upfront = jobs.iter().filter(|j| j.submit_at == SimTime::ZERO).count();
        assert_eq!(upfront, 38); // 20% of 190
                                 // the rest arrive inside the 20-minute window
        for j in &jobs {
            assert!(j.submit_at <= SimTime::from_mins(20));
        }
    }

    #[test]
    fn apps_are_balanced() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 140);
        let jobs = generate_jobs(&spec, &mut rng());
        let mut counts: HashMap<AppId, usize> = HashMap::new();
        for j in &jobs {
            *counts.entry(j.app).or_insert(0) += 1;
        }
        for (&app, &n) in &counts {
            assert_eq!(n, 20, "{app} should get 140/7 jobs");
        }
    }

    #[test]
    fn node_counts_cycle_for_scaling_experiments() {
        let spec = WorkloadSpec::scaled(AppId::ALL.to_vec(), 190, ScalingMode::Weak);
        let jobs = generate_jobs(&spec, &mut rng());
        let mut by_nodes: HashMap<u32, usize> = HashMap::new();
        for j in &jobs {
            *by_nodes.entry(j.nodes).or_insert(0) += 1;
            assert!(matches!(j.nodes, 8 | 16 | 32));
            assert_eq!(j.scaling, ScalingMode::Weak);
        }
        assert_eq!(by_nodes.len(), 3);
        // roughly balanced: 190/3 ± 7 (one app-cycle)
        for (&n, &c) in &by_nodes {
            assert!((56..=70).contains(&c), "{n} nodes got {c} jobs");
        }
    }

    #[test]
    fn fixed_size_jobs_use_reference_scaling() {
        let spec = WorkloadSpec::standard(vec![AppId::Laghos], 10);
        let jobs = generate_jobs(&spec, &mut rng());
        assert!(jobs.iter().all(|j| j.scaling == ScalingMode::Reference));
        assert!(jobs.iter().all(|j| j.nodes == 16));
    }

    #[test]
    fn jobs_sorted_by_submit_time() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 100);
        let jobs = generate_jobs(&spec, &mut rng());
        for pair in jobs.windows(2) {
            assert!(pair[0].submit_at <= pair[1].submit_at);
        }
    }

    #[test]
    fn ids_are_unique() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 190);
        let jobs = generate_jobs(&spec, &mut rng());
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 190);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 50);
        let a = generate_jobs(&spec, &mut SmallRng::seed_from_u64(5));
        let b = generate_jobs(&spec, &mut SmallRng::seed_from_u64(5));
        let c = generate_jobs(&spec, &mut SmallRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_app_list_rejected() {
        let spec = WorkloadSpec::standard(vec![], 10);
        generate_jobs(&spec, &mut rng());
    }
}
