//! Trace synthesis: tile and scale a seed trace to stress heavy-traffic
//! regimes.
//!
//! Archive excerpts are small; heavy-traffic experiments need millions of
//! jobs. [`synthesize`] stretches a seed [`SwfJob`] set to any target count
//! by tiling it end-to-end — repetition `r` is the whole seed shifted by
//! `r × (span + gap)` — and compressing inter-arrival times by an arrival
//! scale factor, so the replay sees a denser arrival process with the seed's
//! own job-shape mix. The result is an iterator: memory stays O(seed) no
//! matter how many jobs are generated, which is what lets CI replay a
//! million-job stream on a small machine.

use crate::swf::SwfJob;

/// Parameters of a synthesized stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// How many jobs to generate.
    pub target_jobs: u64,
    /// Arrival-rate multiplier: 2.0 compresses inter-arrival times to
    /// half, doubling offered load. 1.0 preserves the seed's process.
    pub arrival_scale: f64,
    /// Idle seconds inserted between repetitions of the seed (before
    /// arrival scaling). Zero butt-joins them.
    pub gap_secs: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            target_jobs: 0,
            arrival_scale: 1.0,
            gap_secs: 60,
        }
    }
}

/// Tiles `seed` into a stream of `spec.target_jobs` jobs (see the module
/// docs). Ids are renumbered densely; submit times are normalized so the
/// stream starts where the seed's earliest submission starts, and are
/// nondecreasing whenever the seed's are.
///
/// # Panics
///
/// When `seed` is empty or `arrival_scale` is not finite and positive —
/// there is nothing to tile and no honest way to continue.
pub fn synthesize(seed: Vec<SwfJob>, spec: SynthSpec) -> SynthStream {
    assert!(!seed.is_empty(), "synthesis needs a non-empty seed trace");
    assert!(
        spec.arrival_scale.is_finite() && spec.arrival_scale > 0.0,
        "arrival scale must be a positive factor"
    );
    let start = seed.iter().map(|j| j.submit_secs).min().expect("non-empty");
    let span = seed.iter().map(|j| j.submit_secs).max().expect("non-empty") - start;
    SynthStream {
        seed,
        spec,
        start,
        period: span + spec.gap_secs,
        emitted: 0,
    }
}

/// Iterator of synthesized [`SwfJob`]s (see [`synthesize`]).
pub struct SynthStream {
    seed: Vec<SwfJob>,
    spec: SynthSpec,
    /// Earliest seed submission (subtracted so the stream starts at 0).
    start: u64,
    /// Unscaled seconds between repetition starts.
    period: u64,
    emitted: u64,
}

impl Iterator for SynthStream {
    type Item = SwfJob;

    fn next(&mut self) -> Option<SwfJob> {
        if self.emitted >= self.spec.target_jobs {
            return None;
        }
        let rep = self.emitted / self.seed.len() as u64;
        let pos = (self.emitted % self.seed.len() as u64) as usize;
        let template = self.seed[pos];
        let raw = rep * self.period + (template.submit_secs - self.start);
        let submit_secs = (raw as f64 / self.spec.arrival_scale).round() as u64;
        let job = SwfJob {
            id: self.emitted,
            submit_secs,
            ..template
        };
        self.emitted += 1;
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.spec.target_jobs - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for SynthStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> Vec<SwfJob> {
        vec![
            SwfJob {
                id: 10,
                submit_secs: 100,
                runtime_secs: Some(180.0),
                processors: 32,
                req_time_secs: Some(600.0),
                req_mem_kb: None,
            },
            SwfJob {
                id: 11,
                submit_secs: 160,
                runtime_secs: Some(350.0),
                processors: 64,
                req_time_secs: None,
                req_mem_kb: Some(1024.0),
            },
        ]
    }

    #[test]
    fn tiles_seed_with_dense_ids_and_normalized_submits() {
        let spec = SynthSpec {
            target_jobs: 5,
            arrival_scale: 1.0,
            gap_secs: 40,
        };
        let jobs: Vec<SwfJob> = synthesize(seed(), spec).collect();
        assert_eq!(jobs.len(), 5);
        assert_eq!(
            jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        // span 60 + gap 40 = 100s period; seed normalized to start at 0
        assert_eq!(
            jobs.iter().map(|j| j.submit_secs).collect::<Vec<_>>(),
            [0, 60, 100, 160, 200]
        );
        // shapes repeat from the seed
        assert_eq!(jobs[2].processors, 32);
        assert_eq!(jobs[3].processors, 64);
        assert_eq!(jobs[2].req_time_secs, Some(600.0));
    }

    #[test]
    fn arrival_scale_compresses_interarrivals() {
        let spec = SynthSpec {
            target_jobs: 4,
            arrival_scale: 2.0,
            gap_secs: 40,
        };
        let jobs: Vec<SwfJob> = synthesize(seed(), spec).collect();
        assert_eq!(
            jobs.iter().map(|j| j.submit_secs).collect::<Vec<_>>(),
            [0, 30, 50, 80]
        );
    }

    #[test]
    fn submits_are_nondecreasing_at_scale() {
        let spec = SynthSpec {
            target_jobs: 10_000,
            arrival_scale: 3.0,
            gap_secs: 0,
        };
        let mut last = 0;
        let mut count = 0u64;
        for job in synthesize(seed(), spec) {
            assert!(job.submit_secs >= last);
            last = job.submit_secs;
            count += 1;
        }
        assert_eq!(count, 10_000);
    }

    #[test]
    #[should_panic(expected = "non-empty seed")]
    fn empty_seed_rejected() {
        synthesize(vec![], SynthSpec::default());
    }

    #[test]
    #[should_panic(expected = "arrival scale")]
    fn bad_scale_rejected() {
        synthesize(
            seed(),
            SynthSpec {
                target_jobs: 1,
                arrival_scale: 0.0,
                gap_secs: 0,
            },
        );
    }
}
