//! # rush-workloads
//!
//! Models of the paper's seven proxy applications, the MPI probe benchmarks,
//! and the job-stream generator behind the Table-II experiments.
//!
//! The proxy applications (Kripke, AMG, Laghos, SWFFT, PENNANT, sw4lite,
//! LBANN — Section III-B) are represented by analytic run-time models: a
//! base run time per node count plus sensitivity to the two shared resources
//! the cluster model exposes (fabric congestion and filesystem saturation).
//! The sensitivities are chosen so the *relative* variability ordering the
//! paper reports emerges naturally: Laghos, LBANN and sw4lite are the most
//! variation-prone, Kripke and AMG the least.
//!
//! * [`apps`] — the seven application descriptors and their slowdown model.
//! * [`probes`] — the 100 MB ring and AllReduce probe benchmarks whose wait
//!   times become nine dataset features (Section III-C).
//! * [`jobgen`] — experiment job streams: 20% submitted at t=0, the rest
//!   uniformly over 20 minutes (Section VI-A).
//! * [`scaling`] — weak/strong scaling of base run times for the WS and SS
//!   experiments.
//! * [`swf`] — Standard Workload Format trace import, so archived
//!   production traces can drive the scheduler comparison.
//! * [`synth`] — trace synthesis: tile/scale a seed trace to millions of
//!   jobs for heavy-traffic replay without materializing them.

pub mod apps;
pub mod jobgen;
pub mod probes;
pub mod scaling;
pub mod swf;
pub mod synth;

pub use apps::{AppId, ProxyApp, APPS};
pub use jobgen::{generate_jobs, JobRequest, WorkloadSpec};
pub use probes::{run_probes, ProbeConfig};
pub use scaling::ScalingMode;
