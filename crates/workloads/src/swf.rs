//! Standard Workload Format (SWF) trace import.
//!
//! SWF is the lingua franca of batch-scheduler research (the Parallel
//! Workloads Archive): one line per job, 18 whitespace-separated fields,
//! `;` comment lines. This module parses the fields the simulator needs
//! and maps trace jobs onto the proxy-application models so archived
//! production traces can drive the RUSH-vs-FCFS comparison instead of the
//! synthetic Table-II streams.
//!
//! Field mapping (1-based SWF columns):
//!
//! | field | meaning              | use                                  |
//! |------:|----------------------|--------------------------------------|
//! | 1     | job number           | id                                   |
//! | 2     | submit time (s)      | `submit_at`                          |
//! | 4     | run time (s)         | app-matching heuristic               |
//! | 5     | allocated processors | node count (`ceil(procs / cores)`)   |
//! | 8     | requested processors | fallback when field 5 is `-1`        |
//!
//! Each job is assigned the proxy application whose nominal run time is
//! closest to the trace job's recorded run time — the trace supplies the
//! arrival process and shape; the app model supplies contention behaviour.

use crate::apps::AppId;
use crate::jobgen::JobRequest;
use crate::scaling::ScalingMode;
use rush_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// One parsed SWF job record (the fields we consume).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfJob {
    /// SWF job number.
    pub id: u64,
    /// Submission time, seconds since trace start.
    pub submit_secs: u64,
    /// Recorded run time, seconds (`-1` in the trace becomes `None`).
    pub runtime_secs: Option<f64>,
    /// Processors used (falls back to requested processors).
    pub processors: u32,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses one non-comment, non-blank SWF line. `Ok(None)` is a record that
/// is well-formed but unusable (failed/cancelled jobs, no processor count —
/// dropped per SWF conventions); `Err` is a malformed line.
fn parse_line(line_no: usize, trimmed: &str) -> Result<Option<SwfJob>, SwfError> {
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 8 {
        return Err(SwfError {
            line: line_no,
            message: format!("expected >= 8 fields, found {}", fields.len()),
        });
    }
    let int = |i: usize, what: &str| -> Result<i64, SwfError> {
        fields[i].parse().map_err(|_| SwfError {
            line: line_no,
            message: format!("bad {what} '{}'", fields[i]),
        })
    };
    let id = int(0, "job number")? as u64;
    let submit = int(1, "submit time")?;
    let runtime = fields[3].parse::<f64>().map_err(|_| SwfError {
        line: line_no,
        message: format!("bad run time '{}'", fields[3]),
    })?;
    let alloc = int(4, "allocated processors")?;
    let requested = int(7, "requested processors")?;

    let processors = if alloc > 0 {
        alloc
    } else if requested > 0 {
        requested
    } else {
        return Ok(None); // unusable record
    } as u32;
    if runtime <= 0.0 || submit < 0 {
        return Ok(None); // failed/cancelled jobs carry -1
    }
    Ok(Some(SwfJob {
        id,
        submit_secs: submit as u64,
        runtime_secs: Some(runtime),
        processors,
    }))
}

/// Parses SWF text strictly: the first malformed line aborts the parse.
/// Comment (`;`) and blank lines are skipped; jobs with no usable processor
/// count or non-positive run time are dropped (failed and cancelled jobs,
/// per SWF conventions). Real archive traces are often slightly dirty —
/// [`parse_lenient`] skips bad lines instead of failing.
pub fn parse(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(job) = parse_line(idx + 1, trimmed)? {
            jobs.push(job);
        }
    }
    Ok(jobs)
}

/// Parses SWF text leniently: malformed lines are skipped and returned as
/// line-numbered [`SwfError`]s alongside the jobs that did parse, with a
/// one-line summary count on stderr when anything was dropped. Use this for
/// real archive traces with stray headers or truncated tails; [`parse`]
/// stays the strict default.
pub fn parse_lenient(text: &str) -> (Vec<SwfJob>, Vec<SwfError>) {
    let mut jobs = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        match parse_line(idx + 1, trimmed) {
            Ok(Some(job)) => jobs.push(job),
            Ok(None) => {}
            Err(e) => {
                eprintln!("swf: skipping {e}");
                errors.push(e);
            }
        }
    }
    if !errors.is_empty() {
        eprintln!(
            "swf: skipped {} malformed line(s), kept {} job(s)",
            errors.len(),
            jobs.len()
        );
    }
    (jobs, errors)
}

/// The proxy application whose nominal 16-node run time is closest to
/// `runtime_secs`.
pub fn closest_app(runtime_secs: f64) -> AppId {
    AppId::ALL
        .into_iter()
        .min_by(|a, b| {
            let da = (a.descriptor().base_runtime_secs - runtime_secs).abs();
            let db = (b.descriptor().base_runtime_secs - runtime_secs).abs();
            da.partial_cmp(&db).expect("finite base runtimes")
        })
        .expect("apps exist")
}

/// Converts parsed SWF jobs into scheduler requests.
///
/// * node count = `ceil(processors / cores_per_node)`, clamped to
///   `[1, max_nodes]`;
/// * application = [`closest_app`] on the recorded run time (the mean app
///   run time when the record lacks one);
/// * ids are renumbered densely so they can seed the engine directly.
pub fn to_requests(jobs: &[SwfJob], cores_per_node: u32, max_nodes: u32) -> Vec<JobRequest> {
    assert!(cores_per_node > 0, "cores_per_node must be positive");
    assert!(max_nodes > 0, "max_nodes must be positive");
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            let nodes = job.processors.div_ceil(cores_per_node).clamp(1, max_nodes);
            let runtime = job.runtime_secs.unwrap_or(250.0);
            JobRequest {
                id: i as u64,
                app: closest_app(runtime),
                nodes,
                submit_at: SimTime::from_secs(job.submit_secs),
                scaling: ScalingMode::Reference,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SWF sample - comment lines start with semicolons
; Computer: test
1 0 5 180 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
2 60 0 350 64 -1 -1 64 3600 -1 1 1 1 1 -1 -1 -1 -1

3 120 0 -1 32 -1 -1 32 3600 -1 0 1 1 1 -1 -1 -1 -1
4 180 0 150 -1 -1 -1 128 3600 -1 1 1 1 1 -1 -1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_comments_and_failures() {
        let jobs = parse(SAMPLE).unwrap();
        // job 3 has runtime -1 (failed) and is dropped
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].submit_secs, 0);
        assert_eq!(jobs[0].runtime_secs, Some(180.0));
        assert_eq!(jobs[0].processors, 32);
        // job 4 falls back to requested processors
        assert_eq!(jobs[2].processors, 128);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
        let err = parse("x 0 0 100 4 -1 -1 4\n").unwrap_err();
        assert!(err.message.contains("job number"));
        assert!(err.to_string().contains("SWF line 1"));
    }

    /// A dirty corpus: good records interleaved with a truncated line, a
    /// non-numeric field, and a stray header — the shapes real archive
    /// traces actually contain.
    const DIRTY: &str = "\
; Computer: test
1 0 5 180 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
UserID JobID Procs
2 60 0 350 64 -1 -1 64 3600 -1 1 1 1 1 -1 -1 -1 -1
3 90 5
4 120 0 abc 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
5 180 0 150 -1 -1 -1 128 3600 -1 1 1 1 1 -1 -1 -1 -1
";

    #[test]
    fn lenient_parse_skips_malformed_lines_and_reports_them() {
        let (jobs, errors) = parse_lenient(DIRTY);
        assert_eq!(
            jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![1, 2, 5],
            "the three clean records survive"
        );
        assert_eq!(errors.len(), 3);
        // Errors carry the 1-based position of each bad line.
        assert_eq!(
            errors.iter().map(|e| e.line).collect::<Vec<_>>(),
            vec![3, 5, 6]
        );
        assert!(errors[0].message.contains("fields"), "{}", errors[0]);
        assert!(errors[2].message.contains("run time"), "{}", errors[2]);
        // The strict parser refuses the same corpus at the first bad line.
        assert_eq!(parse(DIRTY).unwrap_err().line, 3);
    }

    #[test]
    fn lenient_parse_agrees_with_strict_on_clean_input() {
        let (jobs, errors) = parse_lenient(SAMPLE);
        assert!(errors.is_empty());
        assert_eq!(jobs, parse(SAMPLE).unwrap());
    }

    #[test]
    fn lenient_parse_on_garbage_keeps_nothing() {
        let (jobs, errors) = parse_lenient("not swf at all\nstill not\n");
        assert!(jobs.is_empty());
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn closest_app_matches_runtime() {
        // amg is 180s, lbann 360s
        assert_eq!(closest_app(175.0), AppId::Amg);
        assert_eq!(closest_app(1000.0), AppId::Lbann);
        assert_eq!(closest_app(145.0), AppId::Swfft);
    }

    #[test]
    fn requests_map_processors_to_nodes() {
        let jobs = parse(SAMPLE).unwrap();
        let requests = to_requests(&jobs, 32, 16);
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].nodes, 1); // 32 procs / 32 cores
        assert_eq!(requests[1].nodes, 2); // 64 procs
        assert_eq!(requests[2].nodes, 4); // 128 procs
        assert_eq!(requests[0].app, AppId::Amg); // 180s
        assert_eq!(requests[1].app, AppId::Lbann); // 350s -> closest 360
                                                   // dense renumbering
        let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // submits preserved
        assert_eq!(requests[1].submit_at, SimTime::from_secs(60));
    }

    #[test]
    fn node_counts_clamp_to_machine() {
        let jobs = vec![SwfJob {
            id: 1,
            submit_secs: 0,
            runtime_secs: Some(200.0),
            processors: 100_000,
        }];
        let requests = to_requests(&jobs, 32, 16);
        assert_eq!(requests[0].nodes, 16);
    }

    #[test]
    #[should_panic(expected = "cores_per_node")]
    fn zero_cores_rejected() {
        to_requests(&[], 0, 16);
    }
}
