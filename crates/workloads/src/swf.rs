//! Standard Workload Format (SWF) trace import.
//!
//! SWF is the lingua franca of batch-scheduler research (the Parallel
//! Workloads Archive): one line per job, 18 whitespace-separated fields,
//! `;` comment lines. This module parses the fields the simulator needs
//! and maps trace jobs onto the proxy-application models so archived
//! production traces can drive the RUSH-vs-FCFS comparison instead of the
//! synthetic Table-II streams.
//!
//! Field mapping (1-based SWF columns):
//!
//! | field | meaning              | use                                  |
//! |------:|----------------------|--------------------------------------|
//! | 1     | job number           | id                                   |
//! | 2     | submit time (s)      | `submit_at`                          |
//! | 4     | run time (s)         | app-matching heuristic               |
//! | 5     | allocated processors | node count (`ceil(procs / cores)`)   |
//! | 8     | requested processors | fallback when field 5 is `-1`        |
//! | 9     | requested time (s)   | user runtime estimate                |
//! | 10    | requested memory     | per-processor KB (kept for features) |
//!
//! Each job is assigned the proxy application whose nominal run time is
//! closest to the trace job's recorded run time — the trace supplies the
//! arrival process and shape; the app model supplies contention behaviour.
//!
//! Million-job archive traces should not be materialized: [`SwfReader`]
//! parses incrementally from any [`BufRead`], and [`request_stream`] turns
//! any `SwfJob` iterator into arrival-ordered [`JobRequest`]s, so a whole
//! replay holds O(live jobs) in memory. The in-memory [`parse`] and
//! [`parse_lenient`] are thin wrappers over the same reader.

use crate::apps::AppId;
use crate::jobgen::JobRequest;
use crate::scaling::ScalingMode;
use rush_simkit::time::SimTime;
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// One parsed SWF job record (the fields we consume).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfJob {
    /// SWF job number.
    pub id: u64,
    /// Submission time, seconds since trace start.
    pub submit_secs: u64,
    /// Recorded run time, seconds (`-1` in the trace becomes `None`).
    pub runtime_secs: Option<f64>,
    /// Processors used (falls back to requested processors).
    pub processors: u32,
    /// Requested wall time, seconds (SWF field 9; the user's estimate).
    pub req_time_secs: Option<f64>,
    /// Requested memory, KB per processor (SWF field 10).
    pub req_mem_kb: Option<f64>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// How the reader treats malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseMode {
    /// The first malformed line aborts the parse with its field name.
    Strict,
    /// Malformed lines are dropped and counted; parsing continues. Real
    /// archive traces are often slightly dirty (stray headers, truncated
    /// tails), so replay pipelines default to this.
    Lenient,
}

/// How many dropped-line errors the summary retains verbatim. Counts are
/// always exact; keeping only a sample bounds memory on a million-line
/// trace where every line is bad.
pub const ERROR_SAMPLE_CAP: usize = 64;

/// What an ingest pass kept and dropped. Returned instead of printing —
/// library code stays silent and the CLI decides what to surface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestSummary {
    /// Records that parsed into usable jobs.
    pub kept: u64,
    /// Malformed lines dropped (lenient mode only).
    pub dropped_malformed: u64,
    /// Well-formed but unusable records dropped per SWF conventions
    /// (failed/cancelled jobs, no processor count, negative submit).
    pub dropped_unusable: u64,
    /// The first [`ERROR_SAMPLE_CAP`] dropped-line errors, in order.
    pub errors: Vec<SwfError>,
}

impl IngestSummary {
    /// Total records dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_malformed + self.dropped_unusable
    }

    /// Whether `errors` is a sample rather than the full list.
    pub fn errors_truncated(&self) -> bool {
        (self.errors.len() as u64) < self.dropped_malformed
    }
}

/// Parses one non-comment, non-blank SWF line. `Ok(None)` is a record that
/// is well-formed but unusable (failed/cancelled jobs, no processor count —
/// dropped per SWF conventions); `Err` is a malformed line. Negative job
/// numbers and processor counts below the `-1` missing sentinel are
/// malformed — rejected by name instead of wrapping through integer casts.
fn parse_line(line_no: usize, trimmed: &str) -> Result<Option<SwfJob>, SwfError> {
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 8 {
        return Err(SwfError {
            line: line_no,
            message: format!("expected >= 8 fields, found {}", fields.len()),
        });
    }
    let int = |i: usize, what: &str| -> Result<i64, SwfError> {
        fields[i].parse().map_err(|_| SwfError {
            line: line_no,
            message: format!("bad {what} '{}'", fields[i]),
        })
    };
    let id = int(0, "job number")?;
    if id < 0 {
        return Err(SwfError {
            line: line_no,
            message: format!("negative job number '{id}'"),
        });
    }
    let submit = int(1, "submit time")?;
    let runtime = fields[3].parse::<f64>().map_err(|_| SwfError {
        line: line_no,
        message: format!("bad run time '{}'", fields[3]),
    })?;
    let alloc = int(4, "allocated processors")?;
    let requested = int(7, "requested processors")?;
    // `-1` is the SWF missing-value sentinel; anything below it is a
    // malformed count, not a missing one.
    if alloc < -1 {
        return Err(SwfError {
            line: line_no,
            message: format!("negative allocated processors '{alloc}'"),
        });
    }
    if requested < -1 {
        return Err(SwfError {
            line: line_no,
            message: format!("negative requested processors '{requested}'"),
        });
    }
    // Optional estimate fields: absent columns and `-1` both mean missing.
    let opt_f64 = |i: usize, what: &str| -> Result<Option<f64>, SwfError> {
        match fields.get(i) {
            None => Ok(None),
            Some(s) => {
                let v: f64 = s.parse().map_err(|_| SwfError {
                    line: line_no,
                    message: format!("bad {what} '{s}'"),
                })?;
                Ok(if v > 0.0 { Some(v) } else { None })
            }
        }
    };
    let req_time_secs = opt_f64(8, "requested time")?;
    let req_mem_kb = opt_f64(9, "requested memory")?;

    let processors = if alloc > 0 {
        alloc
    } else if requested > 0 {
        requested
    } else {
        return Ok(None); // unusable record
    } as u32;
    if runtime <= 0.0 || submit < 0 {
        return Ok(None); // failed/cancelled jobs carry -1
    }
    Ok(Some(SwfJob {
        id: id as u64,
        submit_secs: submit as u64,
        runtime_secs: Some(runtime),
        processors,
        req_time_secs,
        req_mem_kb,
    }))
}

/// Incremental SWF reader over any [`BufRead`]: one line is held in memory
/// at a time, so a multi-gigabyte archive trace streams in O(1) space.
///
/// Iterates `Result<SwfJob, SwfError>`. In [`ParseMode::Strict`] the first
/// malformed line is yielded as `Err` and iteration stops; in
/// [`ParseMode::Lenient`] malformed lines are dropped and counted (never
/// yielded), so the iterator only produces `Ok` items. Either way,
/// [`SwfReader::summary`] reports exact kept/dropped counts afterwards.
pub struct SwfReader<R: BufRead> {
    input: R,
    mode: ParseMode,
    line_no: usize,
    buf: String,
    summary: IngestSummary,
    fused: bool,
}

impl<R: BufRead> SwfReader<R> {
    /// A reader in the given mode.
    pub fn new(input: R, mode: ParseMode) -> Self {
        SwfReader {
            input,
            mode,
            line_no: 0,
            buf: String::new(),
            summary: IngestSummary::default(),
            fused: false,
        }
    }

    /// Strict reader: first malformed line aborts.
    pub fn strict(input: R) -> Self {
        Self::new(input, ParseMode::Strict)
    }

    /// Lenient reader: malformed lines are dropped and counted.
    pub fn lenient(input: R) -> Self {
        Self::new(input, ParseMode::Lenient)
    }

    /// Kept/dropped accounting so far (complete once iteration ends).
    pub fn summary(&self) -> &IngestSummary {
        &self.summary
    }

    /// Consumes the reader, returning its accounting.
    pub fn into_summary(self) -> IngestSummary {
        self.summary
    }

    fn record_error(&mut self, e: SwfError) {
        self.summary.dropped_malformed += 1;
        if self.summary.errors.len() < ERROR_SAMPLE_CAP {
            self.summary.errors.push(e);
        }
    }
}

impl<R: BufRead> Iterator for SwfReader<R> {
    type Item = Result<SwfJob, SwfError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    // An IO failure mid-trace is not recoverable by
                    // skipping lines; both modes stop.
                    self.fused = true;
                    let err = SwfError {
                        line: self.line_no + 1,
                        message: format!("read error: {e}"),
                    };
                    if self.mode == ParseMode::Lenient {
                        self.record_error(err);
                        return None;
                    }
                    return Some(Err(err));
                }
            }
            self.line_no += 1;
            let trimmed = self.buf.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue;
            }
            match parse_line(self.line_no, trimmed) {
                Ok(Some(job)) => {
                    self.summary.kept += 1;
                    return Some(Ok(job));
                }
                Ok(None) => {
                    self.summary.dropped_unusable += 1;
                }
                Err(e) => {
                    if self.mode == ParseMode::Strict {
                        self.fused = true;
                        return Some(Err(e));
                    }
                    self.record_error(e);
                }
            }
        }
    }
}

/// Parses SWF text strictly: the first malformed line aborts the parse.
/// Comment (`;`) and blank lines are skipped; jobs with no usable processor
/// count or non-positive run time are dropped (failed and cancelled jobs,
/// per SWF conventions). Real archive traces are often slightly dirty —
/// [`parse_lenient`] skips bad lines instead of failing. Thin wrapper over
/// [`SwfReader`], which streams without materializing.
pub fn parse(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    SwfReader::strict(text.as_bytes()).collect()
}

/// Parses SWF text leniently: malformed lines are skipped and counted in
/// the returned [`IngestSummary`] (its `errors` holds the first
/// [`ERROR_SAMPLE_CAP`] line-numbered failures) alongside the jobs that
/// did parse. Nothing is printed — callers that want diagnostics surface
/// the summary themselves. Thin wrapper over [`SwfReader`].
pub fn parse_lenient(text: &str) -> (Vec<SwfJob>, IngestSummary) {
    let mut reader = SwfReader::lenient(text.as_bytes());
    let jobs: Vec<SwfJob> = reader.by_ref().filter_map(Result::ok).collect();
    (jobs, reader.into_summary())
}

/// The proxy application whose nominal 16-node run time is closest to
/// `runtime_secs`.
pub fn closest_app(runtime_secs: f64) -> AppId {
    AppId::ALL
        .into_iter()
        .min_by(|a, b| {
            let da = (a.descriptor().base_runtime_secs - runtime_secs).abs();
            let db = (b.descriptor().base_runtime_secs - runtime_secs).abs();
            da.partial_cmp(&db).expect("finite base runtimes")
        })
        .expect("apps exist")
}

/// Converts one SWF record into a scheduler request under a dense new id.
///
/// * node count = `ceil(processors / cores_per_node)`, clamped to
///   `[1, max_nodes]`;
/// * application = [`closest_app`] on the recorded run time, falling back
///   to the requested time (field 9) when the record lacks one;
/// * the requested time carries over as the per-job user estimate.
///
/// Returns `None` when the record has neither a recorded nor a requested
/// run time — there is nothing honest to match an application against, so
/// the record is dropped rather than papered over with a constant.
pub fn to_request(
    job: &SwfJob,
    id: u64,
    cores_per_node: u32,
    max_nodes: u32,
) -> Option<JobRequest> {
    let runtime = job.runtime_secs.or(job.req_time_secs)?;
    let nodes = job.processors.div_ceil(cores_per_node).clamp(1, max_nodes);
    Some(JobRequest {
        id,
        app: closest_app(runtime),
        nodes,
        submit_at: SimTime::from_secs(job.submit_secs),
        scaling: ScalingMode::Reference,
        user_est_secs: job.req_time_secs,
    })
}

/// Converts parsed SWF jobs into scheduler requests (see [`to_request`]).
/// Ids are renumbered densely so they can seed the engine directly;
/// records lacking any run-time signal are dropped.
pub fn to_requests(jobs: &[SwfJob], cores_per_node: u32, max_nodes: u32) -> Vec<JobRequest> {
    assert!(cores_per_node > 0, "cores_per_node must be positive");
    assert!(max_nodes > 0, "max_nodes must be positive");
    request_stream(jobs.iter().copied(), cores_per_node, max_nodes).collect()
}

/// Lifts any `SwfJob` iterator into a [`JobRequest`] iterator with dense
/// ids — the streaming counterpart of [`to_requests`], used to feed a
/// million-job trace into the engine without materializing it.
pub fn request_stream<I: Iterator<Item = SwfJob>>(
    jobs: I,
    cores_per_node: u32,
    max_nodes: u32,
) -> RequestStream<I> {
    assert!(cores_per_node > 0, "cores_per_node must be positive");
    assert!(max_nodes > 0, "max_nodes must be positive");
    RequestStream {
        inner: jobs,
        next_id: 0,
        cores_per_node,
        max_nodes,
        dropped_no_runtime: 0,
    }
}

/// Iterator adapter mapping [`SwfJob`]s to dense-id [`JobRequest`]s.
pub struct RequestStream<I> {
    inner: I,
    next_id: u64,
    cores_per_node: u32,
    max_nodes: u32,
    dropped_no_runtime: u64,
}

impl<I> RequestStream<I> {
    /// Records dropped because they carried neither a recorded nor a
    /// requested run time.
    pub fn dropped_no_runtime(&self) -> u64 {
        self.dropped_no_runtime
    }
}

impl<I: Iterator<Item = SwfJob>> Iterator for RequestStream<I> {
    type Item = JobRequest;

    fn next(&mut self) -> Option<JobRequest> {
        loop {
            let job = self.inner.next()?;
            match to_request(&job, self.next_id, self.cores_per_node, self.max_nodes) {
                Some(req) => {
                    self.next_id += 1;
                    return Some(req);
                }
                None => self.dropped_no_runtime += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SWF sample - comment lines start with semicolons
; Computer: test
1 0 5 180 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
2 60 0 350 64 -1 -1 64 3600 -1 1 1 1 1 -1 -1 -1 -1

3 120 0 -1 32 -1 -1 32 3600 -1 0 1 1 1 -1 -1 -1 -1
4 180 0 150 -1 -1 -1 128 3600 -1 1 1 1 1 -1 -1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_comments_and_failures() {
        let jobs = parse(SAMPLE).unwrap();
        // job 3 has runtime -1 (failed) and is dropped
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].submit_secs, 0);
        assert_eq!(jobs[0].runtime_secs, Some(180.0));
        assert_eq!(jobs[0].processors, 32);
        // job 4 falls back to requested processors
        assert_eq!(jobs[2].processors, 128);
    }

    #[test]
    fn parses_requested_time_and_memory() {
        let jobs = parse(SAMPLE).unwrap();
        // field 9 = 3600 on every sample line, field 10 = -1 (missing)
        assert_eq!(jobs[0].req_time_secs, Some(3600.0));
        assert_eq!(jobs[0].req_mem_kb, None);
        // a record with an explicit memory request
        let jobs = parse("9 5 0 100 8 -1 -1 8 1800 2048 1 1 1 1 -1 -1 -1 -1\n").unwrap();
        assert_eq!(jobs[0].req_time_secs, Some(1800.0));
        assert_eq!(jobs[0].req_mem_kb, Some(2048.0));
        // truncated 8-field lines simply lack the optional columns
        let jobs = parse("9 5 0 100 8 -1 -1 8\n").unwrap();
        assert_eq!(jobs[0].req_time_secs, None);
        assert_eq!(jobs[0].req_mem_kb, None);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
        let err = parse("x 0 0 100 4 -1 -1 4\n").unwrap_err();
        assert!(err.message.contains("job number"));
        assert!(err.to_string().contains("SWF line 1"));
    }

    #[test]
    fn negative_ids_and_counts_are_rejected_not_wrapped() {
        // A negative job number must not wrap through `as u64` into a
        // 18-quintillion id.
        let err = parse("-7 0 0 100 4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n").unwrap_err();
        assert!(
            err.message.contains("negative job number"),
            "{}",
            err.message
        );
        // Processor counts below the -1 sentinel name their field.
        let err = parse("7 0 0 100 -4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n").unwrap_err();
        assert!(
            err.message.contains("negative allocated processors"),
            "{}",
            err.message
        );
        let err = parse("7 0 0 100 -1 -1 -1 -4 -1 -1 1 1 1 1 -1 -1 -1 -1\n").unwrap_err();
        assert!(
            err.message.contains("negative requested processors"),
            "{}",
            err.message
        );
        // Lenient mode drops them as counted errors instead.
        let (jobs, summary) = parse_lenient("-7 0 0 100 4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n");
        assert!(jobs.is_empty());
        assert_eq!(summary.dropped_malformed, 1);
        // The -1 missing sentinel itself still parses (falls back).
        let jobs = parse("7 0 0 100 -1 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n").unwrap();
        assert_eq!(jobs[0].processors, 4);
    }

    /// A dirty corpus: good records interleaved with a truncated line, a
    /// non-numeric field, and a stray header — the shapes real archive
    /// traces actually contain.
    const DIRTY: &str = "\
; Computer: test
1 0 5 180 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
UserID JobID Procs
2 60 0 350 64 -1 -1 64 3600 -1 1 1 1 1 -1 -1 -1 -1
3 90 5
4 120 0 abc 32 -1 -1 32 3600 -1 1 1 1 1 -1 -1 -1 -1
5 180 0 150 -1 -1 -1 128 3600 -1 1 1 1 1 -1 -1 -1 -1
";

    #[test]
    fn lenient_parse_skips_malformed_lines_and_reports_them() {
        let (jobs, summary) = parse_lenient(DIRTY);
        assert_eq!(
            jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![1, 2, 5],
            "the three clean records survive"
        );
        assert_eq!(summary.kept, 3);
        assert_eq!(summary.dropped_malformed, 3);
        assert_eq!(summary.dropped_unusable, 0);
        assert!(!summary.errors_truncated());
        // Errors carry the 1-based position of each bad line.
        assert_eq!(
            summary.errors.iter().map(|e| e.line).collect::<Vec<_>>(),
            vec![3, 5, 6]
        );
        assert!(
            summary.errors[0].message.contains("fields"),
            "{}",
            summary.errors[0]
        );
        assert!(
            summary.errors[2].message.contains("run time"),
            "{}",
            summary.errors[2]
        );
        // The strict parser refuses the same corpus at the first bad line.
        assert_eq!(parse(DIRTY).unwrap_err().line, 3);
    }

    #[test]
    fn lenient_parse_counts_unusable_records() {
        let (jobs, summary) = parse_lenient(SAMPLE);
        assert!(summary.errors.is_empty());
        assert_eq!(summary.kept, 3);
        // job 3 (runtime -1) is well-formed but unusable
        assert_eq!(summary.dropped_unusable, 1);
        assert_eq!(summary.dropped(), 1);
        assert_eq!(jobs, parse(SAMPLE).unwrap());
    }

    #[test]
    fn lenient_parse_emits_no_stderr_diagnostics() {
        // Library code must not print: orchestrator output and CLI snapshot
        // tests depend on a silent parse. Guard the source itself — any
        // reintroduced print shows up here before it shows up in a
        // polluted pipeline.
        let source = include_str!("swf.rs");
        let println_count = source.matches("println!").count();
        assert_eq!(
            println_count, 1,
            "swf.rs must not print; diagnostics belong to the summary \
             (the only allowed match is this assertion's own needle)"
        );
    }

    #[test]
    fn lenient_parse_on_garbage_keeps_nothing() {
        let (jobs, summary) = parse_lenient("not swf at all\nstill not\n");
        assert!(jobs.is_empty());
        assert_eq!(summary.dropped_malformed, 2);
        assert_eq!(summary.errors.len(), 2);
    }

    #[test]
    fn error_sample_is_capped_but_counts_are_exact() {
        let text: String = (0..(ERROR_SAMPLE_CAP + 40))
            .map(|i| format!("bad line {i}\n"))
            .collect();
        let (jobs, summary) = parse_lenient(&text);
        assert!(jobs.is_empty());
        assert_eq!(summary.dropped_malformed, (ERROR_SAMPLE_CAP + 40) as u64);
        assert_eq!(summary.errors.len(), ERROR_SAMPLE_CAP);
        assert!(summary.errors_truncated());
    }

    #[test]
    fn streaming_reader_matches_in_memory_parse() {
        let streamed: Vec<SwfJob> = SwfReader::strict(SAMPLE.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, parse(SAMPLE).unwrap());

        let mut reader = SwfReader::lenient(DIRTY.as_bytes());
        let streamed: Vec<SwfJob> = reader.by_ref().filter_map(Result::ok).collect();
        let (jobs, summary) = parse_lenient(DIRTY);
        assert_eq!(streamed, jobs);
        assert_eq!(*reader.summary(), summary);
    }

    #[test]
    fn closest_app_matches_runtime() {
        // amg is 180s, lbann 360s
        assert_eq!(closest_app(175.0), AppId::Amg);
        assert_eq!(closest_app(1000.0), AppId::Lbann);
        assert_eq!(closest_app(145.0), AppId::Swfft);
    }

    #[test]
    fn requests_map_processors_to_nodes() {
        let jobs = parse(SAMPLE).unwrap();
        let requests = to_requests(&jobs, 32, 16);
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].nodes, 1); // 32 procs / 32 cores
        assert_eq!(requests[1].nodes, 2); // 64 procs
        assert_eq!(requests[2].nodes, 4); // 128 procs
        assert_eq!(requests[0].app, AppId::Amg); // 180s
        assert_eq!(requests[1].app, AppId::Lbann); // 350s -> closest 360
                                                   // dense renumbering
        let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // submits preserved
        assert_eq!(requests[1].submit_at, SimTime::from_secs(60));
        // the requested time rides along as the per-job user estimate
        assert_eq!(requests[0].user_est_secs, Some(3600.0));
    }

    #[test]
    fn records_without_any_runtime_are_dropped_not_defaulted() {
        let no_runtime = SwfJob {
            id: 1,
            submit_secs: 0,
            runtime_secs: None,
            processors: 32,
            req_time_secs: None,
            req_mem_kb: None,
        };
        let with_estimate = SwfJob {
            req_time_secs: Some(400.0),
            ..no_runtime
        };
        // Nothing to match an app against: dropped, not defaulted to a
        // magic constant.
        assert!(to_request(&no_runtime, 0, 32, 16).is_none());
        assert_eq!(to_requests(&[no_runtime], 32, 16), vec![]);
        // The requested time is an honest fallback signal.
        let req = to_request(&with_estimate, 0, 32, 16).unwrap();
        assert_eq!(req.app, closest_app(400.0));
        // And the stream adapter counts the drop.
        let mut stream = request_stream([no_runtime, with_estimate].into_iter(), 32, 16);
        let kept: Vec<JobRequest> = stream.by_ref().collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0, "ids stay dense across drops");
        assert_eq!(stream.dropped_no_runtime(), 1);
    }

    #[test]
    fn node_counts_clamp_to_machine() {
        let jobs = vec![SwfJob {
            id: 1,
            submit_secs: 0,
            runtime_secs: Some(200.0),
            processors: 100_000,
            req_time_secs: None,
            req_mem_kb: None,
        }];
        let requests = to_requests(&jobs, 32, 16);
        assert_eq!(requests[0].nodes, 16);
    }

    #[test]
    #[should_panic(expected = "cores_per_node")]
    fn zero_cores_rejected() {
        to_requests(&[], 0, 16);
    }
}
