//! The headline behaviour as a regression test: with an oracle predictor
//! (upper bound on the ML model) on the experiment pod, RUSH produces
//! fewer variation runs than FCFS+EASY on the same machine trajectory.
//!
//! Seeds are pinned; the assertion is on the *paired sum* over three
//! seeds, which is stable where single trials are noisy.

use rand::SeedableRng;
use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::metrics::{RuntimeReference, ScheduleMetrics};
use rush_repro::sched::predictor::{CongestionOracle, NeverVaries, VariabilityPredictor};
use rush_repro::simkit::time::{SimDuration, SimTime};
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::{generate_jobs, WorkloadSpec};

fn run(seed: u64, rush: bool) -> ScheduleMetrics {
    let machine = Machine::new(MachineConfig::experiment_pod(seed));
    let noise: Vec<NodeId> = (480..512).map(NodeId).collect();
    let predictor: Box<dyn VariabilityPredictor> = if rush {
        Box::new(CongestionOracle {
            variation_threshold: 0.6,
            little_threshold: 0.45,
        })
    } else {
        Box::new(NeverVaries)
    };
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig {
            // Sampling is effectively off (the oracle reads the machine, not
            // counters); widen the quality gate's window and the store
            // retention to match or the engine would fall back to plain
            // EASY on staleness.
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            ..SchedulerConfig::default()
        },
        predictor,
        seed,
    )
    .with_noise_job(noise, 22.0);

    let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 90);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let requests = generate_jobs(&spec, &mut rng);
    let result = engine.run(&requests);
    // Nominal-based reference with the typical campaign-scale spread.
    let reference = RuntimeReference::from_nominal(0.08);
    ScheduleMetrics::compute(&result.completed, &reference, SimTime::ZERO)
}

#[test]
fn oracle_rush_reduces_variation_over_paired_seeds() {
    let seeds = [11u64, 12, 13];
    let fcfs: usize = seeds
        .iter()
        .map(|&s| run(s, false).total_variation_runs)
        .sum();
    let rush: usize = seeds
        .iter()
        .map(|&s| run(s, true).total_variation_runs)
        .sum();
    assert!(
        rush < fcfs,
        "oracle RUSH must reduce variation: fcfs {fcfs}, rush {rush}"
    );
    // And not degenerately: most of the workload still completes on time.
    assert!(
        fcfs > 0,
        "baseline should see some variation with the noise job"
    );
}

#[test]
fn oracle_rush_keeps_makespan_comparable() {
    let seeds = [11u64, 12, 13];
    let fcfs: f64 = seeds.iter().map(|&s| run(s, false).makespan_secs).sum();
    let rush: f64 = seeds.iter().map(|&s| run(s, true).makespan_secs).sum();
    assert!(
        rush < fcfs * 1.15,
        "RUSH makespan {rush} should stay within 15% of baseline {fcfs}"
    );
}
