//! Golden-trace regression tests: a fixed 64-node, 200-job, fault-injected
//! schedule must serialize to the byte-exact JSONL committed under
//! `tests/golden/`. Any change to event content, ordering, or encoding
//! shows up as a diff against the reference.
//!
//! To regenerate the reference after an *intentional* schema or semantics
//! change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! and commit the rewritten file together with the change that motivated it.

use rand::SeedableRng;
use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::{FatTreeConfig, NodeId};
use rush_repro::obs::tracer::records_to_jsonl;
use rush_repro::sched::engine::{ScheduleResult, SchedulerConfig, SchedulerEngine};
use rush_repro::sched::predictor::CongestionOracle;
use rush_repro::simkit::fault::FaultConfig;
use rush_repro::simkit::time::SimDuration;
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::{generate_jobs, WorkloadSpec};
use std::path::PathBuf;

/// The pinned golden scenario: 64 nodes (1 pod × 4 edge × 16), 200 jobs,
/// node crashes from fault seed 42, a noise job on the top four nodes, and
/// the deterministic congestion oracle as the predictor — every knob is a
/// constant, so the trace is a pure function of this file.
fn golden_run(jobs: usize) -> ScheduleResult {
    let machine = Machine::new(MachineConfig {
        tree: FatTreeConfig {
            pods: 1,
            edge_per_pod: 4,
            nodes_per_edge: 16,
            ..FatTreeConfig::tiny()
        },
        ..MachineConfig::tiny(64)
    });
    let noise: Vec<NodeId> = (60..64).map(NodeId).collect();
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig {
            // The oracle reads machine state directly; counter sampling is
            // effectively off so the telemetry-quality gate never trips.
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            faults: FaultConfig {
                seed: 42,
                node_mtbf: Some(SimDuration::from_mins(240)),
                ..FaultConfig::none()
            },
            ..SchedulerConfig::default()
        },
        Box::new(CongestionOracle::default()),
        0xA5,
    )
    .with_noise_job(noise, 8.0)
    .with_tracing(1 << 20);

    let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), jobs);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2026);
    let requests = generate_jobs(&spec, &mut rng);
    engine.run(&requests)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/schedule_64n_200j_fault42.jsonl")
}

#[test]
fn golden_trace_matches_committed_reference() {
    let actual = records_to_jsonl(&golden_run(200).events);

    // The scenario must stay rich enough to pin every event family the
    // tracer serializes — a reference full of submissions alone would let
    // encoding regressions in the rarer records slip through.
    for kind in [
        "job_submitted",
        "job_started",
        "job_finished",
        "job_skipped",
        "predictor_verdict",
        "node_down",
        "node_up",
    ] {
        assert!(
            actual.contains(&format!("\"kind\":\"{kind}\"")),
            "golden scenario no longer produces any {kind} event"
        );
    }

    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden reference");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden reference {}: {e}\n\
             regenerate with: GOLDEN_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "trace diverged from {} ({} expected lines, {} actual)\n\
         if the change is intentional, re-bless with:\n\
         GOLDEN_BLESS=1 cargo test --test golden_trace",
        path.display(),
        expected.lines().count(),
        actual.lines().count()
    );
}

/// Slower determinism soak for CI's `--include-ignored` lane: the same
/// seeded scenario executed twice in-process must serialize to identical
/// bytes, independent of the committed reference.
#[test]
#[ignore = "slow determinism soak; run via cargo test -- --include-ignored"]
fn golden_scenario_replays_byte_exactly() {
    let a = golden_run(200);
    let b = golden_run(200);
    assert_eq!(records_to_jsonl(&a.events), records_to_jsonl(&b.events));
    // The registry snapshot replays too.
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.metrics.to_csv(), b.metrics.to_csv());
}
