//! Crash-safe resume equivalence, exercised across real process boundaries.
//!
//! The contract under test: a run that is checkpointed mid-flight, killed,
//! and resumed **in a fresh process** must produce a trace byte-identical
//! to the uninterrupted run's. In-process round-trips (covered by the
//! engine's unit tests) cannot catch state that accidentally survives in
//! globals, thread-locals, or allocator layout — so the orchestrator here
//! spawns the test binary itself three times:
//!
//! 1. `helper_full_run` — the golden 64-node / 200-job fault scenario to
//!    completion; writes the full JSONL trace.
//! 2. `helper_checkpoint_half` — the same scenario stopped at 50% of the
//!    baseline makespan; writes the engine snapshot.
//! 3. `helper_resume_finish` — a brand-new engine that resumes from that
//!    snapshot and runs to the end; writes the full JSONL trace.
//!
//! The helpers are `#[ignore]`d tests that no-op unless their environment
//! variable is set, so CI's `--include-ignored` lane runs them harmlessly.
//!
//! A second test covers the recovery path: a bit-flipped newest checkpoint
//! must be detected and skipped, falling back to the previous good one.

use rand::SeedableRng;
use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::{FatTreeConfig, NodeId};
use rush_repro::core::checkpoint::CheckpointManager;
use rush_repro::obs::tracer::records_to_jsonl;
use rush_repro::sched::difftest::diff_results;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::predictor::{CongestionOracle, VariabilityPredictor};
use rush_repro::sched::shard::{shard_seed, ShardExecution, ShardSpec, ShardedCampaign};
use rush_repro::simkit::fault::FaultConfig;
use rush_repro::simkit::snapshot::SnapshotError;
use rush_repro::simkit::time::{SimDuration, SimTime};
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::{generate_jobs, JobRequest, WorkloadSpec};
use std::path::PathBuf;
use std::process::Command;

/// The same pinned scenario as `tests/golden_trace.rs`: 64 nodes, 200 jobs,
/// node crashes from fault seed 42, a noise job, the deterministic
/// congestion oracle. Every knob is a constant, so both processes build
/// identical engines.
fn build_engine() -> SchedulerEngine {
    let machine = Machine::new(MachineConfig {
        tree: FatTreeConfig {
            pods: 1,
            edge_per_pod: 4,
            nodes_per_edge: 16,
            ..FatTreeConfig::tiny()
        },
        ..MachineConfig::tiny(64)
    });
    let noise: Vec<NodeId> = (60..64).map(NodeId).collect();
    SchedulerEngine::new(
        machine,
        SchedulerConfig {
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            faults: FaultConfig {
                seed: 42,
                node_mtbf: Some(SimDuration::from_mins(240)),
                ..FaultConfig::none()
            },
            ..SchedulerConfig::default()
        },
        Box::new(CongestionOracle::default()),
        0xA5,
    )
    .with_noise_job(noise, 8.0)
    .with_tracing(1 << 20)
}

fn requests() -> Vec<JobRequest> {
    let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 200);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2026);
    generate_jobs(&spec, &mut rng)
}

/// Simulated midpoint of the uninterrupted run, computed by running a
/// throwaway engine to completion — a pure function of the constants above.
fn midpoint() -> SimTime {
    let mut eng = build_engine();
    let result = eng.run(&requests());
    SimTime::from_micros((result.first_submit.as_micros() + result.last_end.as_micros()) / 2)
}

// ----- helper processes -------------------------------------------------

#[test]
#[ignore = "helper: spawned by resumed_process_trace_is_byte_identical"]
fn helper_full_run() {
    let Some(out) = std::env::var_os("RESUME_EQ_FULL_OUT") else {
        return;
    };
    let mut eng = build_engine();
    let result = eng.run(&requests());
    std::fs::write(out, records_to_jsonl(&result.events)).unwrap();
}

#[test]
#[ignore = "helper: spawned by resumed_process_trace_is_byte_identical"]
fn helper_checkpoint_half() {
    let Some(out) = std::env::var_os("RESUME_EQ_SNAPSHOT_OUT") else {
        return;
    };
    let cut = midpoint();
    let mut eng = build_engine();
    eng.prepare(&requests());
    while eng.now() < cut && eng.step().is_some() {}
    assert!(!eng.is_done(), "the midpoint must land mid-run");
    std::fs::write(out, eng.snapshot()).unwrap();
}

#[test]
#[ignore = "helper: spawned by resumed_process_trace_is_byte_identical"]
fn helper_resume_finish() {
    let Some(snap) = std::env::var_os("RESUME_EQ_SNAPSHOT_IN") else {
        return;
    };
    let out = std::env::var_os("RESUME_EQ_RESUMED_OUT").expect("output path");
    let bytes = std::fs::read(snap).unwrap();
    let mut eng = build_engine();
    eng.prepare(&requests());
    eng.resume(&bytes).expect("snapshot must restore");
    while eng.step().is_some() {}
    let result = eng.finalize();
    std::fs::write(out, records_to_jsonl(&result.events)).unwrap();
}

// ----- orchestrators ----------------------------------------------------

fn spawn_helper(name: &str, env: &[(&str, &PathBuf)]) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", name, "--ignored", "--nocapture"]);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let status = cmd.status().expect("spawn helper process");
    assert!(status.success(), "{name} failed with {status}");
}

#[test]
fn resumed_process_trace_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("rush-resume-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let full = dir.join("full.jsonl");
    let snap = dir.join("half.rushsnap");
    let resumed = dir.join("resumed.jsonl");

    spawn_helper("helper_full_run", &[("RESUME_EQ_FULL_OUT", &full)]);
    spawn_helper(
        "helper_checkpoint_half",
        &[("RESUME_EQ_SNAPSHOT_OUT", &snap)],
    );
    spawn_helper(
        "helper_resume_finish",
        &[
            ("RESUME_EQ_SNAPSHOT_IN", &snap),
            ("RESUME_EQ_RESUMED_OUT", &resumed),
        ],
    );

    let expected = std::fs::read(&full).unwrap();
    let actual = std::fs::read(&resumed).unwrap();
    assert!(!expected.is_empty(), "baseline trace must not be empty");
    assert!(
        expected == actual,
        "resumed-process trace diverged from the uninterrupted run \
         ({} vs {} bytes); inspect {}",
        expected.len(),
        actual.len(),
        dir.display()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----- sharded full-Quartz scale ----------------------------------------

fn oracle() -> Box<dyn VariabilityPredictor> {
    Box::new(CongestionOracle::default())
}

/// The full-Quartz campaign as six pod shards of 498 nodes (6 × 498 =
/// 2988, the machine's compute partition), each with its own seeded fault
/// timeline and job stream. Sampling is pinned coarse, as in
/// [`build_engine`], so the trace comparison dominates the runtime instead
/// of counter synthesis.
fn quartz_shards() -> Vec<ShardSpec> {
    (0..6)
        .map(|i| {
            let seed = shard_seed(0x2988, i);
            let spec = WorkloadSpec {
                node_counts: vec![8, 16, 32],
                submit_window: SimDuration::from_mins(10),
                ..WorkloadSpec::standard(AppId::ALL.to_vec(), 24)
            };
            let requests = generate_jobs(
                &spec,
                &mut rand::rngs::SmallRng::seed_from_u64(seed ^ 0x10B5),
            );
            ShardSpec {
                name: format!("pod{i}"),
                seed,
                machine: MachineConfig {
                    tree: FatTreeConfig {
                        pods: 1,
                        edge_per_pod: 83,
                        nodes_per_edge: 6,
                        ..FatTreeConfig::tiny()
                    },
                    ..MachineConfig::tiny(seed ^ 0xC1A5)
                },
                sched: SchedulerConfig {
                    sampling_interval: SimDuration::from_days(365),
                    predictor_window: SimDuration::from_days(365),
                    retention: SimDuration::from_days(400),
                    faults: FaultConfig {
                        seed: seed ^ 0xFA17,
                        node_mtbf: Some(SimDuration::from_mins(240)),
                        ..FaultConfig::none()
                    },
                    ..SchedulerConfig::default()
                },
                requests,
                predictor: oracle,
            }
        })
        .collect()
}

/// Checkpoint/resume at full-Quartz scale: every shard of the 2988-node
/// campaign, snapshotted at its own midpoint and resumed into a fresh
/// engine, must produce a result byte-identical (encoded trace, outcome
/// key, scalars) to its uninterrupted baseline from the parallel campaign
/// run.
#[test]
fn sharded_full_quartz_checkpoint_resumes_byte_identical() {
    let campaign = ShardedCampaign::new(quartz_shards());
    let baseline = campaign.run(ShardExecution::Parallel);
    assert_eq!(
        baseline.summary.completed + baseline.summary.failed,
        6 * 24,
        "every shard's jobs must be accounted for"
    );

    for (spec, base) in campaign.specs().iter().zip(&baseline.shards) {
        let cut =
            SimTime::from_micros((base.first_submit.as_micros() + base.last_end.as_micros()) / 2);

        let mut eng = spec.build_engine();
        eng.prepare(&spec.requests);
        while eng.now() < cut && eng.step().is_some() {}
        assert!(
            !eng.is_done(),
            "{}: the midpoint must land mid-run",
            spec.name
        );
        let snapshot = eng.snapshot();
        drop(eng);

        let mut resumed = spec.build_engine();
        resumed.prepare(&spec.requests);
        resumed.resume(&snapshot).expect("snapshot must restore");
        while resumed.step().is_some() {}
        let result = resumed.finalize();

        let diff = diff_results(base, &result);
        assert!(
            diff.is_identical(),
            "{}: resumed run diverged from baseline: {:?}",
            spec.name,
            diff
        );
    }
}

/// A bit-flipped newest checkpoint is detected (CRC) and recovery falls
/// back to the previous good one; the engine itself also refuses the
/// corrupted bytes outright.
#[test]
fn corrupted_checkpoint_falls_back_to_previous_good() {
    let dir = std::env::temp_dir().join(format!("rush-resume-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Take two genuine checkpoints from one run, a quarter apart.
    let cut = midpoint();
    let early = SimTime::from_micros(cut.as_micros() / 2);
    let mut eng = build_engine();
    eng.prepare(&requests());
    while eng.now() < early && eng.step().is_some() {}
    let good = eng.snapshot();
    let good_clock = eng.now().as_micros();
    while eng.now() < cut && eng.step().is_some() {}
    let later = eng.snapshot();
    let later_clock = eng.now().as_micros();
    assert!(later_clock > good_clock);

    // The newest one lands on disk with a flipped bit mid-body.
    let mut flipped = later.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x08;
    let mgr = CheckpointManager::new(&dir, 4).unwrap();
    mgr.write(good_clock, &good).unwrap();
    mgr.write(later_clock, &flipped).unwrap();

    // The engine refuses the corrupted blob…
    let mut direct = build_engine();
    direct.prepare(&requests());
    assert!(matches!(
        direct.resume(&flipped),
        Err(SnapshotError::CrcMismatch)
    ));

    // …and recovery degrades to the previous good checkpoint, which
    // restores and runs to completion.
    let (found, bytes) = mgr
        .load_latest_valid()
        .unwrap()
        .expect("good checkpoint must survive");
    assert!(
        found
            .to_str()
            .unwrap()
            .contains(&format!("{good_clock:020}")),
        "fallback must pick the earlier checkpoint, got {}",
        found.display()
    );
    let mut recovered = build_engine();
    recovered.prepare(&requests());
    recovered.resume(&bytes).expect("good checkpoint restores");
    while recovered.step().is_some() {}
    let result = recovered.finalize();
    assert_eq!(result.completed.len() + result.failed.len(), 200);
    std::fs::remove_dir_all(&dir).unwrap();
}
