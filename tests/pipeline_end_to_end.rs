//! End-to-end integration: campaign → dataset → model selection → export →
//! ML-gated scheduling, across every crate in the workspace.

use rush_repro::core::collect::{run_campaign, CampaignData};
use rush_repro::core::config::CampaignConfig;
use rush_repro::core::experiments::{run_comparison, Experiment, ExperimentSettings, PolicyKind};
use rush_repro::core::labels::{build_dataset, LabelScheme, NodeScope};
use rush_repro::core::pipeline::{build_reference, Pipeline};
use rush_repro::ml::model::{Classifier, ModelKind};
use std::sync::OnceLock;

/// One shared small campaign for the whole test binary (collection is the
/// slow step in debug builds).
fn campaign() -> &'static CampaignData {
    static CAMPAIGN: OnceLock<CampaignData> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run_campaign(&CampaignConfig::test_sized()))
}

#[test]
fn campaign_feeds_a_valid_table_one_dataset() {
    let campaign = campaign();
    let ds = build_dataset(campaign, NodeScope::JobNodes, LabelScheme::ThreeClass);
    assert_eq!(ds.n_features(), 282);
    assert_eq!(ds.len(), campaign.runs.len());
    ds.validate().expect("dataset is internally consistent");
    // all three one-hot groups appear
    assert!(ds.group_ids().len() >= 2);
}

#[test]
fn pipeline_exports_a_usable_model() {
    let out = Pipeline {
        campaign: CampaignConfig::test_sized(),
        feature_selection: None,
        seed: 3,
    }
    .run_on(campaign().clone());

    // The export is parseable and predicts identically.
    let decoded = rush_repro::ml::codec::decode(&out.exported).expect("export decodes");
    let ds = build_dataset(&out.campaign, NodeScope::JobNodes, LabelScheme::ThreeClass);
    for row in ds.features.iter().take(20) {
        assert_eq!(decoded.predict(row), out.final_model.predict(row));
    }
    // Fig.-3 scores exist for all four families under both scopes.
    assert_eq!(out.scores_all_nodes.len(), 4);
    assert_eq!(out.scores_job_nodes.len(), 4);
    for score in out.scores_all_nodes.iter().chain(&out.scores_job_nodes) {
        assert!((0.0..=1.0).contains(&score.mean_f1()));
    }
}

#[test]
fn reference_covers_every_campaign_app_and_scale() {
    let reference = build_reference(campaign());
    for app in &campaign().config.apps {
        for nodes in [8, 16, 32] {
            for scaling in [
                rush_repro::workloads::scaling::ScalingMode::Reference,
                rush_repro::workloads::scaling::ScalingMode::Weak,
                rush_repro::workloads::scaling::ScalingMode::Strong,
            ] {
                let (mean, std) = reference
                    .get(*app, nodes, scaling)
                    .unwrap_or_else(|| panic!("missing reference for {app}/{nodes}/{scaling:?}"));
                assert!(mean > 0.0 && std >= 0.0);
            }
        }
    }
}

#[test]
fn experiment_comparison_completes_all_jobs_under_both_policies() {
    let settings = ExperimentSettings {
        trials: 1,
        base_seed: 11,
        job_count_override: Some(10),
        model_kind: ModelKind::DecisionForest,
        ..ExperimentSettings::default()
    };
    // ADPA uses only 3 apps; the test campaign covers them partially, and
    // unknown reference classes count as variation rather than crashing.
    let comparison = run_comparison(Experiment::Adpa, campaign(), &settings);
    for outcome in comparison.fcfs.iter().chain(&comparison.rush) {
        let total: usize = outcome.metrics.per_app.iter().map(|a| a.count).sum();
        assert_eq!(total, 10, "every job must complete");
        assert!(outcome.metrics.makespan_secs > 0.0);
        assert!(outcome.metrics.mean_wait_secs >= 0.0);
    }
    assert_eq!(comparison.fcfs[0].total_skips, 0, "baseline never delays");
    assert_eq!(comparison.experiment, Experiment::Adpa);
    let _ = PolicyKind::Rush.label();
}

#[test]
fn scheme_thresholds_match_the_paper() {
    // Binary: 1.5 sigma; three-class: 1.2 / 1.5 (Section IV-A).
    assert_eq!(LabelScheme::Binary.label(1.49), 0);
    assert_eq!(LabelScheme::Binary.label(1.51), 1);
    assert_eq!(LabelScheme::ThreeClass.label(1.3), 1);
    assert_eq!(LabelScheme::ThreeClass.label(1.6), 2);
}
