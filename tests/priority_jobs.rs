//! The paper's per-job extension: "This parameter could be extended to be
//! per-job and used to enforce priorities or even ignore the scheduling
//! delay entirely for certain jobs" (Section IV-B). Jobs carry their own
//! `skip_threshold`; a zero threshold means RUSH never delays them.

use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::job::Job;
use rush_repro::sched::predictor::{
    PredictError, PredictorCtx, VariabilityClass, VariabilityPredictor,
};
use rush_repro::simkit::time::SimTime;
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::JobRequest;
use rush_repro::workloads::scaling::ScalingMode;

struct AlwaysVaries;
impl VariabilityPredictor for AlwaysVaries {
    fn predict(
        &mut self,
        _job: &Job,
        _nodes: &[NodeId],
        _ctx: &mut PredictorCtx<'_>,
    ) -> Result<VariabilityClass, PredictError> {
        Ok(VariabilityClass::Variation)
    }
    fn name(&self) -> &str {
        "always-varies"
    }
}

fn requests(n: u64) -> Vec<JobRequest> {
    (0..n)
        .map(|i| JobRequest {
            id: i,
            app: AppId::Amg,
            nodes: 4,
            submit_at: SimTime::from_secs(i),
            scaling: ScalingMode::Reference,
            user_est_secs: None,
        })
        .collect()
}

#[test]
fn zero_threshold_jobs_are_never_delayed() {
    // Engine-wide threshold 0: Algorithm 2's `SkipTable[j] <
    // j.skip_threshold` is false immediately, so even an always-varies
    // predictor cannot delay anything — RUSH degrades to the baseline.
    let machine = Machine::new(MachineConfig::tiny(3));
    let config = SchedulerConfig {
        skip_threshold: 0,
        ..SchedulerConfig::default()
    };
    let mut engine = SchedulerEngine::new(machine, config, Box::new(AlwaysVaries), 1);
    let result = engine.run(&requests(4));
    assert_eq!(result.total_skips, 0);
    assert!(result.completed.iter().all(|c| c.skips == 0));
}

#[test]
fn priority_jobs_overtake_delayed_ones() {
    // With a positive threshold and an always-varies predictor, every job
    // gets delayed up to its threshold — and high-threshold jobs wait
    // longer than they would under the baseline.
    let run_with_threshold = |threshold: u32| {
        let machine = Machine::new(MachineConfig::tiny(3));
        let config = SchedulerConfig {
            skip_threshold: threshold,
            ..SchedulerConfig::default()
        };
        let mut engine = SchedulerEngine::new(machine, config, Box::new(AlwaysVaries), 1);
        engine.run(&requests(4))
    };
    let eager = run_with_threshold(0);
    let delayed = run_with_threshold(6);
    let first_start = |r: &rush_repro::sched::engine::ScheduleResult| {
        r.completed.iter().map(|c| c.start_at).min().unwrap()
    };
    assert!(first_start(&delayed) > first_start(&eager));
    assert!(delayed.completed.iter().all(|c| c.skips == 6));
}
