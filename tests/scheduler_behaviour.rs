//! Cross-crate scheduler behaviour: RUSH with an oracle predictor against
//! the FCFS+EASY baseline on identical machines — the Algorithm-1/2
//! semantics without ML noise in the loop.

use rand::SeedableRng;
use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::metrics::{RuntimeReference, ScheduleMetrics};
use rush_repro::sched::predictor::{CongestionOracle, NeverVaries, VariabilityPredictor};
use rush_repro::simkit::time::{SimDuration, SimTime};
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::{generate_jobs, WorkloadSpec};

fn experiment_run(
    predictor: Box<dyn VariabilityPredictor>,
    machine_seed: u64,
    jobs: usize,
) -> rush_repro::sched::engine::ScheduleResult {
    let machine = Machine::new(MachineConfig::experiment_pod(machine_seed));
    let noise: Vec<NodeId> = (480..512).map(NodeId).collect();
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig {
            // Sampling is effectively off for these oracle tests (they need
            // no counter features); widen the quality gate's window and the
            // store retention to match or the engine would fall back to
            // plain EASY on staleness.
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            ..SchedulerConfig::default()
        },
        predictor,
        77,
    )
    .with_noise_job(noise, 22.0);

    let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), jobs);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(machine_seed);
    let requests = generate_jobs(&spec, &mut rng);
    engine.run(&requests)
}

#[test]
fn both_policies_complete_the_same_workload() {
    let baseline = experiment_run(Box::new(NeverVaries), 5, 40);
    let rush = experiment_run(Box::new(CongestionOracle::default()), 5, 40);
    assert_eq!(baseline.completed.len(), 40);
    assert_eq!(rush.completed.len(), 40);
    assert_eq!(baseline.total_skips, 0);
    // The same job ids complete under both.
    let ids = |r: &rush_repro::sched::engine::ScheduleResult| {
        let mut v: Vec<u64> = r.completed.iter().map(|c| c.job.id.0).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&baseline), ids(&rush));
}

#[test]
fn oracle_rush_does_not_explode_wait_or_makespan() {
    let baseline = experiment_run(Box::new(NeverVaries), 9, 40);
    let rush = experiment_run(Box::new(CongestionOracle::default()), 9, 40);
    let b = baseline.makespan().as_secs_f64();
    let r = rush.makespan().as_secs_f64();
    assert!(
        r < b * 1.25,
        "RUSH makespan {r} should stay near baseline {b}"
    );
    assert!(
        rush.mean_wait_secs() < baseline.mean_wait_secs() + 300.0,
        "mean wait should shift by far less than the paper's minute bound at this scale"
    );
}

#[test]
fn variation_accounting_is_consistent_between_policies() {
    let reference = RuntimeReference::from_nominal(0.05);
    let baseline = experiment_run(Box::new(NeverVaries), 13, 30);
    let rush = experiment_run(Box::new(CongestionOracle::default()), 13, 30);
    let mb = ScheduleMetrics::compute(&baseline.completed, &reference, SimTime::ZERO);
    let mr = ScheduleMetrics::compute(&rush.completed, &reference, SimTime::ZERO);
    // Same apps appear in both reports.
    let apps = |m: &ScheduleMetrics| {
        let mut v: Vec<&str> = m.per_app.iter().map(|a| a.app.name()).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(apps(&mb), apps(&mr));
    // Counts are bounded by the number of runs.
    for m in [&mb, &mr] {
        for app in &m.per_app {
            assert!(app.variation_runs <= app.count);
        }
    }
}

#[test]
fn skips_recorded_on_completed_jobs_respect_threshold() {
    struct AlwaysVaries;
    impl VariabilityPredictor for AlwaysVaries {
        fn predict(
            &mut self,
            _job: &rush_repro::sched::job::Job,
            _nodes: &[NodeId],
            _ctx: &mut rush_repro::sched::predictor::PredictorCtx<'_>,
        ) -> Result<
            rush_repro::sched::predictor::VariabilityClass,
            rush_repro::sched::predictor::PredictError,
        > {
            Ok(rush_repro::sched::predictor::VariabilityClass::Variation)
        }
        fn name(&self) -> &str {
            "always"
        }
    }
    let result = experiment_run(Box::new(AlwaysVaries), 21, 12);
    assert_eq!(result.completed.len(), 12, "starvation bound must hold");
    for job in &result.completed {
        assert!(job.skips <= 10, "job skipped {} > threshold", job.skips);
        assert!(job.skips > 0, "the always-varies predictor skips everyone");
    }
}
