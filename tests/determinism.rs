//! Reproducibility across the whole stack: every layer is a pure function
//! of its seed.

use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::core::collect::run_campaign;
use rush_repro::core::config::CampaignConfig;
use rush_repro::simkit::time::SimTime;

#[test]
fn machine_trajectories_replay_bit_exactly() {
    let trace = |seed: u64| {
        let mut m = Machine::new(MachineConfig::experiment_pod(seed));
        m.enable_noise_job((480..512).map(NodeId).collect(), 22.0);
        let mut out = Vec::new();
        let job: Vec<NodeId> = (0..16).map(NodeId).collect();
        for minute in 1..45 {
            m.advance_to(SimTime::from_mins(minute));
            out.push((
                m.congestion(&job).to_bits(),
                m.fs_saturation().to_bits(),
                m.noise_level_gbps().to_bits(),
            ));
        }
        out
    };
    assert_eq!(trace(7), trace(7));
    assert_ne!(trace(7), trace(8));
}

#[test]
fn campaigns_replay_bit_exactly() {
    let config = CampaignConfig {
        days: 2,
        apps: vec![
            rush_repro::workloads::apps::AppId::Laghos,
            rush_repro::workloads::apps::AppId::Amg,
        ],
        monitor_nodes: 8,
        storm_days: None,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&config);
    let b = run_campaign(&config);
    assert_eq!(a, b);
    // And runtime floats are bit-identical, not merely close.
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.runtime_secs.to_bits(), rb.runtime_secs.to_bits());
    }
}

#[test]
fn different_seeds_change_the_campaign() {
    let base = CampaignConfig {
        days: 2,
        apps: vec![rush_repro::workloads::apps::AppId::Laghos],
        monitor_nodes: 8,
        storm_days: None,
        ..CampaignConfig::default()
    };
    let mut reseeded = base.clone();
    reseeded.seed ^= 0xDEAD;
    let a = run_campaign(&base);
    let b = run_campaign(&reseeded);
    assert_ne!(
        a.runs.first().map(|r| r.runtime_secs.to_bits()),
        b.runs.first().map(|r| r.runtime_secs.to_bits())
    );
}
