//! End-to-end replay of the committed PWA-style excerpt: dirty-trace
//! ingest → request conversion → reorder window → streaming engine, with
//! the oversized job rejected at submit time instead of panicking the
//! seed, and the streaming trajectory byte-identical to a materialized
//! run over the same requests.

use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::sched::engine::{ScheduleResult, SchedulerConfig, SchedulerEngine};
use rush_repro::sched::job::EstimateSource;
use rush_repro::sched::predictor::NeverVaries;
use rush_repro::sched::source::{IterSource, JobSource, ReorderWindow};
use rush_repro::simkit::time::SimDuration;
use rush_repro::workloads::jobgen::JobRequest;
use rush_repro::workloads::swf;

const EXCERPT: &str = include_str!("../crates/workloads/tests/data/pwa_excerpt.swf");

fn excerpt_requests() -> Vec<JobRequest> {
    let (jobs, summary) = swf::parse_lenient(EXCERPT);
    assert_eq!(summary.kept, 8, "fixture accounting changed");
    // Restore arrival order: the excerpt records job 6 (submitted at 840 s)
    // after job 5 (900 s), mimicking archive traces logged by end time.
    let mut window = ReorderWindow::new(
        swf::request_stream(jobs.into_iter(), 36, 4096),
        SimDuration::from_secs(120),
    );
    let mut ordered: Vec<JobRequest> = Vec::new();
    while let Some(req) = window.next_request() {
        ordered.push(req);
    }
    assert_eq!(window.clamped(), 0, "120 s window covers the excerpt");
    let submits: Vec<f64> = ordered.iter().map(|r| r.submit_at.as_secs_f64()).collect();
    assert!(
        submits.windows(2).all(|w| w[0] <= w[1]),
        "reorder window must emit non-decreasing submits: {submits:?}"
    );
    ordered
}

fn engine(estimates: EstimateSource) -> SchedulerEngine {
    let machine = Machine::new(MachineConfig::experiment_pod(7));
    SchedulerEngine::new(
        machine,
        SchedulerConfig {
            sampling_interval: SimDuration::from_days(365),
            predictor_window: SimDuration::from_days(365),
            retention: SimDuration::from_days(400),
            estimates,
            ..SchedulerConfig::default()
        },
        Box::new(NeverVaries),
        7,
    )
}

fn assert_same_outcome(a: &ScheduleResult, b: &ScheduleResult) {
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.replay, b.replay);
}

#[test]
fn excerpt_replays_end_to_end_with_oversized_rejection() {
    let requests = excerpt_requests();
    let result = engine(EstimateSource::Factor)
        .run_streaming(Box::new(IterSource::new(requests.into_iter())));

    // 8 usable jobs: the 4096-node monster is rejected at submit time on
    // the 512-node pod; the other 7 run to completion.
    assert_eq!(result.replay.rejected, 1);
    assert_eq!(result.completed.len(), 7);
    assert!(result.failed.is_empty());
    assert_eq!(result.replay.settled(), 8);
    assert!(result.replay.mean_bounded_slowdown() >= 1.0);

    let mut done: Vec<u64> = result.completed.iter().map(|c| c.job.id.0).collect();
    done.sort_unstable();
    assert_eq!(done, vec![0, 1, 2, 3, 4, 6, 7]); // dense id 5 was rejected
}

#[test]
fn streaming_replay_matches_materialized_on_the_excerpt() {
    let requests = excerpt_requests();
    let materialized = engine(EstimateSource::Factor).run(&requests);
    let streamed = engine(EstimateSource::Factor)
        .run_streaming(Box::new(IterSource::new(requests.into_iter())));
    assert_same_outcome(&materialized, &streamed);
}

#[test]
fn user_estimates_from_the_trace_drive_reservations() {
    let requests = excerpt_requests();
    let result = engine(EstimateSource::Request).run(&requests);
    let est_of = |id: u64| -> f64 {
        result
            .completed
            .iter()
            .find(|c| c.job.id.0 == id)
            .expect("completed")
            .job
            .est_runtime
            .as_secs_f64()
    };
    // Job 0 carried SWF field 9 = 7200 s: planned with verbatim.
    assert!((est_of(0) - 7200.0).abs() < 1e-9);
    // Job 6 carried no estimate (`-1`): falls back to the global factor,
    // matching what Factor mode would have planned.
    let factor_run = engine(EstimateSource::Factor).run(&excerpt_requests());
    let factor_est = factor_run
        .completed
        .iter()
        .find(|c| c.job.id.0 == 6)
        .expect("completed")
        .job
        .est_runtime;
    assert_eq!(est_of(6), factor_est.as_secs_f64());
}
