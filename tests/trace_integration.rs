//! Trace recording across a real engine run: the event log must be
//! consistent with the completed-job records.

use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::predictor::{NeverVaries, Scripted, VariabilityClass};
use rush_repro::sched::trace::{gantt, TraceEvent};
use rush_repro::simkit::time::SimTime;
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::JobRequest;
use rush_repro::workloads::scaling::ScalingMode;

fn requests(n: u64) -> Vec<JobRequest> {
    (0..n)
        .map(|i| JobRequest {
            id: i,
            app: AppId::ALL[(i % 7) as usize],
            nodes: 4,
            submit_at: SimTime::from_secs(i * 5),
            scaling: ScalingMode::Reference,
            user_est_secs: None,
        })
        .collect()
}

#[test]
fn trace_is_consistent_with_completions() {
    let machine = Machine::new(MachineConfig::tiny(19));
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig::default(),
        Box::new(NeverVaries),
        4,
    );
    let result = engine.run(&requests(8));

    // Every job has exactly one submit, one start, one finish, in order.
    for c in &result.completed {
        let events = result.trace.events_of(c.job.id);
        let labels: Vec<&str> = events.iter().map(|(_, e)| e.label()).collect();
        assert_eq!(labels, vec!["submit", "start", "finish"], "{}", c.job.id);
        assert_eq!(events[0].0, c.job.submit_at);
        assert_eq!(events[1].0, c.start_at);
        assert_eq!(events[2].0, c.end_at);
    }
    assert_eq!(result.trace.delay_count(), 0);

    // The busy-node series peaks at the expected concurrency.
    let peak = result
        .trace
        .busy_nodes_series()
        .aggregate(SimTime::ZERO, result.last_end)
        .max;
    assert!(peak > 0.0 && peak <= 16.0, "peak busy {peak}");

    // The gantt renders a row per job plus a header.
    let chart = gantt(&result.completed, 60, 100);
    assert_eq!(chart.lines().count(), 9);
}

#[test]
fn delays_appear_in_the_trace() {
    let machine = Machine::new(MachineConfig::tiny(23));
    let script = Scripted::new(vec![
        VariabilityClass::Variation,
        VariabilityClass::Variation,
    ]);
    let mut engine = SchedulerEngine::new(machine, SchedulerConfig::default(), Box::new(script), 4);
    let result = engine.run(&requests(3));
    assert_eq!(result.trace.delay_count() as u64, result.total_skips);
    assert!(result.total_skips >= 1);
    // Skip counts in delay events increase per job.
    let delayed_job = result
        .trace
        .events()
        .iter()
        .find_map(|(_, e)| match e {
            TraceEvent::Delayed(j, 1) => Some(*j),
            _ => None,
        })
        .expect("a first delay exists");
    let of_job = result.trace.events_of(delayed_job);
    assert!(of_job.iter().any(|(_, e)| e.label() == "start"));
}
