#!/bin/bash
# Regenerates every table and figure at paper scale into results/.
# All orchestration lives in the run_all binary (DAG-parallel, resumable;
# see DESIGN.md §12). Pass --quick for smoke scale, --only a,b for a subset.
cd "$(dirname "$0")" && exec ./target/release/run_all "$@"
