#!/bin/bash
# Regenerates every table and figure at paper scale into results/.
set -x
cd "$(dirname "$0")"
ARGS="--days 60 --trials 5"
./target/release/table1_dataset $ARGS > results/table1.txt 2>results/table1.log
./target/release/table2_experiments > results/table2.txt
./target/release/fig02_pipeline > results/fig02.txt
./target/release/fig01_variability_timeline $ARGS > results/fig01.txt
./target/release/fig03_model_f1 $ARGS > results/fig03.txt
./target/release/fig05_adaa_variation $ARGS > results/fig05.txt
./target/release/fig04_adpa_pdpa $ARGS > results/fig04.txt
./target/release/fig06_adaa_runtimes $ARGS > results/fig06.txt
./target/release/fig07_pdpa_runtimes $ARGS > results/fig07.txt
./target/release/fig08_weak_scaling $ARGS > results/fig08.txt
./target/release/fig09_strong_scaling $ARGS > results/fig09.txt
./target/release/fig10_makespan $ARGS > results/fig10.txt
./target/release/fig11_wait_times $ARGS > results/fig11.txt
./target/release/pipeline_rfe $ARGS > results/rfe.txt
./target/release/ablation_skip_threshold $ARGS > results/ablation_skip.txt
./target/release/ablation_window $ARGS > results/ablation_window.txt
./target/release/ablation_policy $ARGS > results/ablation_policy.txt
./target/release/ablation_labels $ARGS > results/ablation_labels.txt
./target/release/ablation_placement $ARGS > results/ablation_placement.txt
./target/release/ablation_backfill $ARGS > results/ablation_backfill.txt
./target/release/online_accuracy $ARGS > results/online_accuracy.txt
echo ALL_DONE
