//! Within-family hyperparameter tuning on campaign data: the step between
//! the paper's family selection (Fig. 3) and its deployed AdaBoost model.
//!
//! Run with `cargo run --release --example hyperparameter_tuning`.

use rush_repro::core::collect::run_campaign;
use rush_repro::core::config::CampaignConfig;
use rush_repro::core::labels::{build_dataset, LabelScheme, NodeScope};
use rush_repro::ml::tune::{adaboost_grid, grid_search, knn_grid};

fn main() {
    let config = CampaignConfig {
        days: 15,
        storm_days: Some((9, 11)),
        ..CampaignConfig::default()
    };
    println!("collecting a {}-day campaign...", config.days);
    let campaign = run_campaign(&config);
    let data = build_dataset(&campaign, NodeScope::JobNodes, LabelScheme::Binary);
    println!(
        "dataset: {} samples, {} with variation\n",
        data.len(),
        data.class_counts().get(1).copied().unwrap_or(0)
    );

    println!("AdaBoost grid (stratified 4-fold CV F1):");
    let result = grid_search(&adaboost_grid(), &data, 4, 7);
    for (label, f1) in &result.scores {
        let marker = if *label == result.best_label {
            "  <-- best"
        } else {
            ""
        };
        println!("  {label:36} {f1:.3}{marker}");
    }

    println!("\nKNN grid:");
    let result = grid_search(&knn_grid(), &data, 4, 7);
    for (label, f1) in &result.scores {
        let marker = if *label == result.best_label {
            "  <-- best"
        } else {
            ""
        };
        println!("  {label:36} {f1:.3}{marker}");
    }
}
