//! Schedule forensics: run a queue under RUSH with an oracle predictor and
//! inspect the recorded trace — event timeline, delays, queue/busy series,
//! and a text Gantt chart.
//!
//! Run with `cargo run --release --example schedule_trace`.

use rand::SeedableRng;
use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::predictor::CongestionOracle;
use rush_repro::sched::trace::{gantt, TraceEvent};
use rush_repro::simkit::time::{SimDuration, SimTime};
use rush_repro::workloads::apps::AppId;
use rush_repro::workloads::jobgen::{generate_jobs, WorkloadSpec};

fn main() {
    let machine = Machine::new(MachineConfig::experiment_pod(11));
    let noise: Vec<NodeId> = (480..512).map(NodeId).collect();
    let mut engine = SchedulerEngine::new(
        machine,
        SchedulerConfig {
            sampling_interval: SimDuration::from_days(365),
            ..SchedulerConfig::default()
        },
        Box::new(CongestionOracle::default()),
        42,
    )
    .with_noise_job(noise, 22.0);

    let spec = WorkloadSpec::standard(AppId::ALL.to_vec(), 30);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let requests = generate_jobs(&spec, &mut rng);
    let result = engine.run(&requests);

    println!("{}", gantt(&result.completed, 72, 30));

    println!("RUSH delays recorded: {}", result.trace.delay_count());
    let delayed: Vec<_> = result
        .trace
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Delayed(_, _)))
        .take(8)
        .collect();
    for (at, event) in delayed {
        if let TraceEvent::Delayed(job, skips) = event {
            println!("  {at}: {job} delayed (skip #{skips})");
        }
    }

    let horizon = result.last_end;
    println!(
        "\nmean busy nodes over the run: {:.0} / 480 schedulable",
        result.trace.mean_busy_nodes(SimTime::ZERO, horizon)
    );
    println!(
        "peak queue length: {:.0}",
        result
            .trace
            .queue_len_series()
            .aggregate(SimTime::ZERO, horizon)
            .max
    );
}
