//! The generalization experiment (PDPA vs ADPA): does RUSH still help when
//! its model has never seen the running applications' data?
//!
//! Trains one model on {AMG, Kripke, sw4lite, SWFFT} and schedules a queue
//! of {Laghos, LBANN, PENNANT} with it (PDPA), against a control model
//! trained on everything (ADPA) — Section VI-A's test of whether per-app
//! historical data is a prerequisite.
//!
//! Run with `cargo run --release --example scheduler_generalization`.

use rush_repro::core::collect::run_campaign;
use rush_repro::core::config::CampaignConfig;
use rush_repro::core::experiments::{run_comparison, Experiment, ExperimentSettings};

fn main() {
    let config = CampaignConfig {
        days: 15,
        storm_days: Some((9, 11)),
        ..CampaignConfig::default()
    };
    println!("collecting a {}-day campaign...", config.days);
    let campaign = run_campaign(&config);

    let settings = ExperimentSettings {
        trials: 2,
        job_count_override: Some(60),
        ..ExperimentSettings::default()
    };

    println!("\nexperiment  policy     variation  makespan_s");
    for exp in [Experiment::Adpa, Experiment::Pdpa] {
        let comparison = run_comparison(exp, &campaign, &settings);
        let (fcfs_var, rush_var) = comparison.mean_variation_runs();
        let (fcfs_mk, rush_mk) = comparison.mean_makespan();
        println!(
            "{:10}  FCFS+EASY  {fcfs_var:9.1}  {fcfs_mk:10.0}",
            exp.code()
        );
        println!(
            "{:10}  RUSH       {rush_var:9.1}  {rush_mk:10.0}",
            exp.code()
        );
    }
    println!(
        "\nIf PDPA's RUSH row resembles ADPA's, the model generalizes to\n\
         applications absent from its training data — the paper's claim."
    );
}
