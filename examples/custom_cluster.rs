//! Driving the cluster simulator directly: build a custom fat tree, load
//! it with traffic, and watch congestion and the synthesized monitoring
//! counters respond — the substrate a scheduler developer would integrate
//! against.
//!
//! Run with `cargo run --release --example custom_cluster`.

use rush_repro::cluster::machine::{Machine, MachineConfig, SourceId, WorkloadIntensity};
use rush_repro::cluster::topology::{FatTreeConfig, NodeId};
use rush_repro::simkit::time::SimTime;

fn main() {
    // A custom 2-pod machine: 2 pods x 8 edge switches x 8 nodes = 128.
    let tree = FatTreeConfig {
        pods: 2,
        edge_per_pod: 8,
        nodes_per_edge: 8,
        cores_per_node: 32,
        access_gbps: 12.5,
        edge_uplink_gbps: 50.0,
        pod_fabric_gbps: 200.0,
        pod_uplink_gbps: 400.0,
    };
    let config = MachineConfig {
        tree,
        ..MachineConfig::experiment_pod(42)
    };
    let mut machine = Machine::new(config);
    println!(
        "machine: {} nodes, {} edge switches",
        machine.tree().node_count(),
        machine.tree().edge_switch_count()
    );

    let job_a: Vec<NodeId> = (0..16).map(NodeId).collect(); // pod 0
    let job_b: Vec<NodeId> = (64..96).map(NodeId).collect(); // pod 1

    println!("\n-- idle machine --");
    report(&mut machine, &job_a);

    // A communication-heavy neighbour in pod 0.
    machine.register_load(
        SourceId(1),
        (16..48).map(NodeId).collect(),
        WorkloadIntensity::new(0.3, 1.0, 0.0),
    );
    println!("\n-- 32-node all-to-all neighbour in pod 0 --");
    report(&mut machine, &job_a);
    println!("   (pod 1 is unaffected)");
    report(&mut machine, &job_b);

    // An I/O-heavy job saturating the shared filesystem.
    machine.register_load(
        SourceId(2),
        (96..128).map(NodeId).collect(),
        WorkloadIntensity::new(0.2, 0.1, 1.0),
    );
    machine.advance_to(SimTime::from_mins(30));
    println!("\n-- plus a 32-node I/O job, 30 minutes in --");
    println!("   fs saturation: {:.2}", machine.fs_saturation());
    report(&mut machine, &job_a);

    // Counters a monitoring daemon would scrape from one node.
    let counters = machine.sample_counters(NodeId(0));
    println!("\nnode 0 counters (first of each table):");
    println!("   sysclassib/port_xmit_data  = {:.3e}", counters[0]);
    println!("   sysclassib/port_xmit_wait  = {:.3e}", counters[8]);
    println!("   opa_info/opa_xmit_wait     = {:.3e}", counters[28]);
    println!("   lustre_client/read_bytes   = {:.3e}", counters[56]);
}

fn report(machine: &mut Machine, nodes: &[NodeId]) {
    let congestion = machine.congestion(nodes);
    println!(
        "   congestion over nodes {:3}..{:3}: {congestion:.3}",
        nodes[0].0,
        nodes[nodes.len() - 1].0
    );
}
