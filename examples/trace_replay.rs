//! Replaying a Standard Workload Format (SWF) trace through the scheduler:
//! the route for driving RUSH with archived production workloads instead of
//! the synthetic Table-II streams.
//!
//! Run with `cargo run --release --example trace_replay`.

use rush_repro::cluster::machine::{Machine, MachineConfig};
use rush_repro::cluster::topology::NodeId;
use rush_repro::sched::engine::{SchedulerConfig, SchedulerEngine};
use rush_repro::sched::predictor::{CongestionOracle, NeverVaries};
use rush_repro::simkit::time::SimDuration;
use rush_repro::workloads::swf;

/// A hand-written SWF snippet (in practice: a file from the Parallel
/// Workloads Archive).
const TRACE: &str = "\
; Sample trace: 12 jobs, 36-core nodes
1  0    0 180 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
2  30   0 350 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
3  65   0 200 288  -1 -1 288  3600 -1 1 1 1 1 -1 -1 -1 -1
4  90   0 320 1152 -1 -1 1152 3600 -1 1 1 1 1 -1 -1 -1 -1
5  140  0 150 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
6  220  0 240 288  -1 -1 288  3600 -1 1 1 1 1 -1 -1 -1 -1
7  300  0 400 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
8  360  0 -1  576  -1 -1 576  3600 -1 0 1 1 1 -1 -1 -1 -1
9  420  0 210 1152 -1 -1 1152 3600 -1 1 1 1 1 -1 -1 -1 -1
10 480  0 180 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
11 540  0 300 288  -1 -1 288  3600 -1 1 1 1 1 -1 -1 -1 -1
12 600  0 360 576  -1 -1 576  3600 -1 1 1 1 1 -1 -1 -1 -1
";

fn main() {
    let jobs = swf::parse(TRACE).expect("valid trace");
    println!("parsed {} usable jobs from the trace", jobs.len());
    let requests = swf::to_requests(&jobs, 36, 480);
    for r in requests.iter().take(4) {
        println!(
            "  job{}: {} on {} nodes at {}",
            r.id, r.app, r.nodes, r.submit_at
        );
    }

    for (label, rush) in [("FCFS+EASY", false), ("RUSH(oracle)", true)] {
        let machine = Machine::new(MachineConfig::experiment_pod(5));
        let noise: Vec<NodeId> = (480..512).map(NodeId).collect();
        let config = SchedulerConfig {
            sampling_interval: SimDuration::from_days(365),
            ..SchedulerConfig::default()
        };
        let mut engine = if rush {
            SchedulerEngine::new(machine, config, Box::new(CongestionOracle::default()), 9)
        } else {
            SchedulerEngine::new(machine, config, Box::new(NeverVaries), 9)
        }
        .with_noise_job(noise, 22.0);
        let result = engine.run(&requests);
        println!(
            "{label:13} makespan {:6.0}s  mean wait {:5.1}s  delays {}",
            result.makespan().as_secs_f64(),
            result.mean_wait_secs(),
            result.total_skips
        );
    }
}
