//! Quickstart: the whole RUSH loop in one file.
//!
//! 1. Collect a small control-job campaign on a simulated cluster.
//! 2. Train the variability classifier on it.
//! 3. Run the same job queue under FCFS+EASY and under RUSH.
//! 4. Compare variation counts and makespan.
//!
//! Run with `cargo run --release --example quickstart`. This uses a short
//! campaign and queue so it finishes in seconds; the bench binaries run
//! the paper-scale versions.

use rush_repro::core::collect::run_campaign;
use rush_repro::core::config::CampaignConfig;
use rush_repro::core::experiments::{run_comparison, Experiment, ExperimentSettings};
use rush_repro::ml::model::ModelKind;

fn main() {
    // 1. A 10-day campaign (the paper ran ~6 months; see `--days`).
    let campaign_config = CampaignConfig {
        days: 10,
        storm_days: Some((6, 8)),
        ..CampaignConfig::default()
    };
    println!("collecting a {}-day campaign...", campaign_config.days);
    let campaign = run_campaign(&campaign_config);
    println!("  {} control runs collected", campaign.runs.len());

    for (app, (mean, std)) in campaign.runtime_stats() {
        println!("  {app:8}  mean {mean:6.1}s  std {std:5.1}s");
    }

    // 2 + 3. Train AdaBoost and run the ADAA comparison (3 trials per
    // policy here; the paper uses 5 with 190 jobs).
    let settings = ExperimentSettings {
        trials: 3,
        base_seed: 0xE4,
        job_count_override: Some(120),
        model_kind: ModelKind::AdaBoost,
        ..ExperimentSettings::default()
    };
    println!("\nrunning ADAA: 120 jobs x 3 trials, FCFS+EASY vs RUSH...");
    let comparison = run_comparison(Experiment::Adaa, &campaign, &settings);

    // 4. Report.
    let (fcfs_var, rush_var) = comparison.mean_variation_runs();
    let (fcfs_mk, rush_mk) = comparison.mean_makespan();
    println!("\n              FCFS+EASY    RUSH");
    println!("variation     {fcfs_var:9.1}    {rush_var:4.1}");
    println!("makespan (s)  {fcfs_mk:9.0}    {rush_mk:4.0}");
    let delays: u64 = comparison.rush.iter().map(|t| t.total_skips).sum();
    println!("RUSH delays issued: {delays}");
}
