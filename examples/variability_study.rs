//! A variability study: the data-analyst half of the paper.
//!
//! Collects a campaign, labels it, compares the four classifier families
//! under leave-one-application-out cross-validation (Fig. 3), runs
//! recursive feature elimination, and prints which counters carry the
//! signal.
//!
//! Run with `cargo run --release --example variability_study`.

use rush_repro::core::collect::run_campaign;
use rush_repro::core::config::CampaignConfig;
use rush_repro::core::labels::{build_dataset, LabelScheme, NodeScope};
use rush_repro::ml::rfe::{rfe, RfeConfig};
use rush_repro::ml::select::{compare_models, select_best};

fn main() {
    let config = CampaignConfig {
        days: 20,
        storm_days: Some((12, 15)),
        ..CampaignConfig::default()
    };
    println!("collecting a {}-day campaign...", config.days);
    let campaign = run_campaign(&config);

    // Label and assemble the Table-I dataset under both aggregation scopes.
    let all_scope = build_dataset(&campaign, NodeScope::AllNodes, LabelScheme::Binary);
    let job_scope = build_dataset(&campaign, NodeScope::JobNodes, LabelScheme::Binary);
    let positives = job_scope.class_counts()[1];
    println!(
        "dataset: {} samples x {} features, {:.1}% variation",
        job_scope.len(),
        job_scope.n_features(),
        100.0 * positives as f64 / job_scope.len() as f64
    );

    // Fig. 3: model comparison on both scopes.
    println!("\nmodel                 F1(all-nodes)  F1(job-nodes)");
    let scores_all = compare_models(&all_scope, 7);
    let scores_job = compare_models(&job_scope, 7);
    for (a, j) in scores_all.iter().zip(&scores_job) {
        println!(
            "{:20}  {:13.3}  {:13.3}",
            a.kind.name(),
            a.mean_f1(),
            j.mean_f1()
        );
    }
    let best = select_best(&scores_job);
    println!("selected family: {best}");

    // Feature selection: which of the 282 features carry the signal?
    println!("\nrunning recursive feature elimination...");
    let result = rfe(
        best,
        &job_scope,
        &RfeConfig {
            min_features: 8,
            ..RfeConfig::default()
        },
    );
    println!(
        "best F1 {:.3} with {} of {} features",
        result.best_f1,
        result.kept.len(),
        job_scope.n_features()
    );
    println!("top surviving features:");
    for &idx in result.kept.iter().take(12) {
        println!("  {}", job_scope.feature_names[idx]);
    }
}
